"""Data-parallel gradient engine: serial equivalence and lifecycle.

The contract under test (see ``core/parallel.py``): with a deterministic
model (dropout 0), training with ``workers=K`` must reproduce the serial
loss curves to within float64 summation reordering — we assert 1e-9,
orders of magnitude tighter than any training-relevant difference — and
the pool must degrade to the serial loop when fork is unavailable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.model import STGNNDJD
from repro.core.parallel import GradientWorkerPool, fork_available
from repro.core.trainer import Trainer, TrainingConfig

PARITY_ATOL = 1e-9

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def make_trainer(
    dataset, workers: int, epochs: int = 2, transport: str = "auto"
) -> Trainer:
    model = STGNNDJD.from_dataset(
        dataset, seed=3, fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0
    )
    config = TrainingConfig(
        epochs=epochs, batch_size=8, seed=5, patience=10, workers=workers,
        transport=transport,
    )
    return Trainer(model, dataset, config)


def serial_reference(trainer: Trainer, batch, scale: float):
    """The serial loop's (loss, grads) for one batch, on a fresh trainer."""
    trainer.optimizer.zero_grad()
    loss_sum = 0.0
    for t in batch:
        loss = trainer._sample_loss(int(t))
        loss.backward(np.asarray(scale))
        loss_sum += loss.item()
    return loss_sum, [np.array(p.grad) for p in trainer.optimizer.parameters]


class TestConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TrainingConfig(workers=-1)

    def test_serial_default(self):
        assert TrainingConfig().workers == 0

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            TrainingConfig(transport="carrier-pigeon")


@needs_fork
class TestSerialParallelParity:
    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_loss_curves_match_serial(self, mini_dataset, transport):
        serial = make_trainer(mini_dataset, workers=0).fit()
        parallel = make_trainer(mini_dataset, workers=2, transport=transport).fit()
        assert len(serial.train_loss) == len(parallel.train_loss)
        np.testing.assert_allclose(
            parallel.train_loss, serial.train_loss, rtol=0, atol=PARITY_ATOL
        )
        np.testing.assert_allclose(
            parallel.val_loss, serial.val_loss, rtol=0, atol=PARITY_ATOL
        )

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_single_batch_gradients_match_serial(self, mini_dataset, transport):
        batch = mini_dataset.split_indices()[0][:6]
        scale = 1.0 / len(batch)
        serial_loss, serial_grads = serial_reference(
            make_trainer(mini_dataset, workers=0), batch, scale
        )

        parallel = make_trainer(mini_dataset, workers=2)
        parallel.optimizer.zero_grad()
        with GradientWorkerPool(parallel, 2, transport=transport) as pool:
            assert pool.transport == transport
            parallel_loss = pool.accumulate_gradients(batch, scale)

        assert parallel_loss == pytest.approx(serial_loss, abs=PARITY_ATOL)
        for grad_serial, p_parallel in zip(
            serial_grads, parallel.optimizer.parameters
        ):
            np.testing.assert_allclose(
                p_parallel.grad, grad_serial, rtol=0, atol=PARITY_ATOL
            )

    def test_shm_matches_pipe_bitwise(self, mini_dataset):
        # The arenas change where the bytes live, not the arithmetic:
        # the two transports must agree exactly, not just to tolerance.
        batch = mini_dataset.split_indices()[0][:6]
        scale = 1.0 / len(batch)
        results = {}
        for transport in ("shm", "pipe"):
            trainer = make_trainer(mini_dataset, workers=2)
            trainer.optimizer.zero_grad()
            with GradientWorkerPool(trainer, 2, transport=transport) as pool:
                loss = pool.accumulate_gradients(batch, scale)
            results[transport] = (
                loss, [np.array(p.grad) for p in trainer.optimizer.parameters]
            )
        assert results["shm"][0] == results["pipe"][0]
        for grad_shm, grad_pipe in zip(results["shm"][1], results["pipe"][1]):
            np.testing.assert_array_equal(grad_shm, grad_pipe)

    def test_epoch_schedule_matches_serial(self, mini_dataset):
        # The epoch-granularity "go" path (workers walking a broadcast
        # schedule) must produce the same gradients as schedule-free
        # calls — which themselves match serial.
        train_idx = mini_dataset.split_indices()[0]
        batches = [train_idx[:6], train_idx[6:12]]
        scale = 1.0 / 6

        trainer = make_trainer(mini_dataset, workers=2)
        with GradientWorkerPool(trainer, 2) as pool:
            assert pool.transport == "shm"
            pool.begin_epoch(batches)
            for batch in batches:
                reference = make_trainer(mini_dataset, workers=0)
                # Match parameters mid-epoch (no optimizer steps here,
                # so the fresh reference model is identical by seed).
                serial_loss, serial_grads = serial_reference(
                    reference, batch, scale
                )
                trainer.optimizer.zero_grad()
                loss = pool.accumulate_gradients(batch, scale)
                assert loss == pytest.approx(serial_loss, abs=PARITY_ATOL)
                for grad_serial, param in zip(
                    serial_grads, trainer.optimizer.parameters
                ):
                    np.testing.assert_allclose(
                        param.grad, grad_serial, rtol=0, atol=PARITY_ATOL
                    )
            pool.end_epoch()


class TestFallback:
    def test_zero_workers_returns_none(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=0)
        assert GradientWorkerPool.create(trainer, 0) is None

    def test_no_fork_falls_back_to_serial(self, mini_dataset, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "fork_available", lambda: False)
        trainer = make_trainer(mini_dataset, workers=2, epochs=1)
        assert GradientWorkerPool.create(trainer, 2) is None
        # fit() must still train (serially) rather than fail.
        history = trainer.fit()
        assert len(history.train_loss) == 1

    def test_direct_construction_requires_fork(self, mini_dataset, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "fork_available", lambda: False)
        trainer = make_trainer(mini_dataset, workers=2)
        with pytest.raises(RuntimeError, match="fork"):
            GradientWorkerPool(trainer, 2)

    @needs_fork
    def test_shm_unavailable_falls_back_to_pipe(self, mini_dataset, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "shm_available", lambda: False)
        trainer = make_trainer(mini_dataset, workers=2)
        batch = mini_dataset.split_indices()[0][:4]
        trainer.optimizer.zero_grad()
        with GradientWorkerPool(trainer, 2, transport="shm") as pool:
            assert pool.transport == "pipe"
            assert pool.shm_segment_names == []
            loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
        assert np.isfinite(loss)

    @needs_fork
    def test_arena_creation_failure_falls_back_to_pipe(
        self, mini_dataset, monkeypatch
    ):
        import repro.core.parallel as parallel_module

        def no_room(nbytes):
            raise OSError("No space left on device")

        monkeypatch.setattr(parallel_module, "SharedArena", no_room)
        trainer = make_trainer(mini_dataset, workers=2)
        batch = mini_dataset.split_indices()[0][:4]
        trainer.optimizer.zero_grad()
        with GradientWorkerPool(trainer, 2) as pool:
            assert pool.transport == "pipe"
            loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
        assert np.isfinite(loss)

    def test_invalid_transport_rejected(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=1)
        with pytest.raises(ValueError, match="transport"):
            GradientWorkerPool(trainer, 1, transport="carrier-pigeon")


@needs_fork
class TestLifecycle:
    def test_close_is_idempotent(self, mini_dataset):
        pool = GradientWorkerPool(make_trainer(mini_dataset, workers=1), 1)
        pool.close()
        pool.close()

    def test_closed_pool_rejects_batches(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=1)
        pool = GradientWorkerPool(trainer, 1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.accumulate_gradients([trainer.dataset.min_history], 1.0)

    def test_worker_error_is_surfaced(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=1)
        # Sabotage the per-sample loss; the forked worker inherits the
        # broken trainer and must report the failure, not hang. The
        # parent then recovers the shard serially — and because the bug
        # is deterministic, the recovery reproduces the *original*
        # exception instead of swallowing it.
        def boom(t):
            raise ValueError("sabotaged sample")

        trainer._sample_loss = boom
        with GradientWorkerPool(trainer, 1) as pool:
            with pytest.raises(ValueError, match="sabotaged sample"):
                pool.accumulate_gradients([trainer.dataset.min_history], 1.0)

    def test_invalid_worker_count(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=0)
        with pytest.raises(ValueError, match="num_workers"):
            GradientWorkerPool(trainer, 0)

    def test_no_shm_segments_leak_after_close(self, mini_dataset):
        pool = GradientWorkerPool(make_trainer(mini_dataset, workers=2), 2)
        names = list(pool.shm_segment_names)
        assert len(names) == 3  # one param arena + one grad arena per worker
        assert all(os.path.exists(f"/dev/shm/{name}") for name in names)
        pool.close()
        assert pool.shm_segment_names == []
        leaked = [name for name in names if os.path.exists(f"/dev/shm/{name}")]
        assert leaked == []

    def test_no_shm_segments_leak_after_fit(self, mini_dataset):
        before = set(os.listdir("/dev/shm"))
        make_trainer(mini_dataset, workers=2, epochs=1).fit()
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert leaked == set()

"""Data-parallel gradient engine: serial equivalence and lifecycle.

The contract under test (see ``core/parallel.py``): with a deterministic
model (dropout 0), training with ``workers=K`` must reproduce the serial
loss curves to within float64 summation reordering — we assert 1e-9,
orders of magnitude tighter than any training-relevant difference — and
the pool must degrade to the serial loop when fork is unavailable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import STGNNDJD
from repro.core.parallel import GradientWorkerPool, fork_available
from repro.core.trainer import Trainer, TrainingConfig

PARITY_ATOL = 1e-9

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def make_trainer(dataset, workers: int, epochs: int = 2) -> Trainer:
    model = STGNNDJD.from_dataset(
        dataset, seed=3, fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0
    )
    config = TrainingConfig(
        epochs=epochs, batch_size=8, seed=5, patience=10, workers=workers
    )
    return Trainer(model, dataset, config)


class TestConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TrainingConfig(workers=-1)

    def test_serial_default(self):
        assert TrainingConfig().workers == 0


@needs_fork
class TestSerialParallelParity:
    def test_loss_curves_match_serial(self, mini_dataset):
        serial = make_trainer(mini_dataset, workers=0).fit()
        parallel = make_trainer(mini_dataset, workers=2).fit()
        assert len(serial.train_loss) == len(parallel.train_loss)
        np.testing.assert_allclose(
            parallel.train_loss, serial.train_loss, rtol=0, atol=PARITY_ATOL
        )
        np.testing.assert_allclose(
            parallel.val_loss, serial.val_loss, rtol=0, atol=PARITY_ATOL
        )

    def test_single_batch_gradients_match_serial(self, mini_dataset):
        batch = mini_dataset.split_indices()[0][:6]
        scale = 1.0 / len(batch)

        serial = make_trainer(mini_dataset, workers=0)
        serial.optimizer.zero_grad()
        serial_loss = 0.0
        for t in batch:
            loss = serial._sample_loss(int(t))
            loss.backward(np.asarray(scale))
            serial_loss += loss.item()

        parallel = make_trainer(mini_dataset, workers=2)
        parallel.optimizer.zero_grad()
        with GradientWorkerPool(parallel, 2) as pool:
            parallel_loss = pool.accumulate_gradients(batch, scale)

        assert parallel_loss == pytest.approx(serial_loss, abs=PARITY_ATOL)
        for p_serial, p_parallel in zip(
            serial.optimizer.parameters, parallel.optimizer.parameters
        ):
            np.testing.assert_allclose(
                p_parallel.grad, p_serial.grad, rtol=0, atol=PARITY_ATOL
            )


class TestFallback:
    def test_zero_workers_returns_none(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=0)
        assert GradientWorkerPool.create(trainer, 0) is None

    def test_no_fork_falls_back_to_serial(self, mini_dataset, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "fork_available", lambda: False)
        trainer = make_trainer(mini_dataset, workers=2, epochs=1)
        assert GradientWorkerPool.create(trainer, 2) is None
        # fit() must still train (serially) rather than fail.
        history = trainer.fit()
        assert len(history.train_loss) == 1

    def test_direct_construction_requires_fork(self, mini_dataset, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "fork_available", lambda: False)
        trainer = make_trainer(mini_dataset, workers=2)
        with pytest.raises(RuntimeError, match="fork"):
            GradientWorkerPool(trainer, 2)


@needs_fork
class TestLifecycle:
    def test_close_is_idempotent(self, mini_dataset):
        pool = GradientWorkerPool(make_trainer(mini_dataset, workers=1), 1)
        pool.close()
        pool.close()

    def test_closed_pool_rejects_batches(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=1)
        pool = GradientWorkerPool(trainer, 1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.accumulate_gradients([trainer.dataset.min_history], 1.0)

    def test_worker_error_is_surfaced(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=1)
        # Sabotage the per-sample loss; the forked worker inherits the
        # broken trainer and must report the failure, not hang. The
        # parent then recovers the shard serially — and because the bug
        # is deterministic, the recovery reproduces the *original*
        # exception instead of swallowing it.
        def boom(t):
            raise ValueError("sabotaged sample")

        trainer._sample_loss = boom
        with GradientWorkerPool(trainer, 1) as pool:
            with pytest.raises(ValueError, match="sabotaged sample"):
                pool.accumulate_gradients([trainer.dataset.min_history], 1.0)

    def test_invalid_worker_count(self, mini_dataset):
        trainer = make_trainer(mini_dataset, workers=0)
        with pytest.raises(ValueError, match="num_workers"):
            GradientWorkerPool(trainer, 0)

"""Trainer: protocol, loss descent, early stopping, prediction scaling."""

import numpy as np
import pytest

from repro.core import STGNNDJD, Trainer, TrainingConfig


@pytest.fixture(scope="module")
def trained(mini_dataset):
    model = STGNNDJD.from_dataset(mini_dataset, seed=0, dropout=0.0)
    trainer = Trainer(
        model, mini_dataset,
        TrainingConfig(epochs=4, max_batches_per_epoch=4, seed=0, patience=10),
    )
    history = trainer.fit()
    return trainer, history


class TestTrainingConfig:
    def test_paper_defaults(self):
        config = TrainingConfig()
        assert config.learning_rate == 0.01
        assert config.batch_size == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)


class TestFit:
    def test_loss_decreases(self, trained):
        _, history = trained
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_lengths_match(self, trained):
        _, history = trained
        assert len(history.train_loss) == len(history.val_loss)

    def test_best_epoch_recorded(self, trained):
        _, history = trained
        assert 0 <= history.best_epoch < len(history.val_loss)

    def test_best_state_restored(self, trained, mini_dataset):
        trainer, history = trained
        best_val = min(history.val_loss)
        _, val_idx, _ = mini_dataset.split_indices()
        current_val = trainer.validation_loss(val_idx)
        assert current_val == pytest.approx(best_val, rel=0.15)

    def test_early_stopping(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=1, dropout=0.0)
        trainer = Trainer(
            model, mini_dataset,
            TrainingConfig(epochs=50, max_batches_per_epoch=1, patience=1,
                           learning_rate=0.2, seed=1),
        )
        history = trainer.fit()
        assert len(history.train_loss) < 50
        assert history.stopped_early


class TestPredict:
    def test_output_in_original_units(self, trained, mini_dataset):
        trainer, _ = trained
        _, _, test_idx = mini_dataset.split_indices()
        demand, supply = trainer.predict(int(test_idx[0]))
        assert demand.shape == (mini_dataset.num_stations,)
        # Denormalised scale: same order as the observed counts.
        assert demand.max() < mini_dataset.demand.max() * 5 + 10

    def test_deterministic_in_eval(self, trained, mini_dataset):
        trainer, _ = trained
        _, _, test_idx = mini_dataset.split_indices()
        t = int(test_idx[0])
        d1, s1 = trainer.predict(t)
        d2, s2 = trainer.predict(t)
        np.testing.assert_allclose(d1, d2)
        np.testing.assert_allclose(s1, s2)

    def test_better_than_untrained(self, trained, mini_dataset):
        """Training must beat the untrained model on validation loss."""
        trainer, history = trained
        fresh = STGNNDJD.from_dataset(mini_dataset, seed=5, dropout=0.0)
        _, val_idx, _ = mini_dataset.split_indices()
        fresh_loss = Trainer(fresh, mini_dataset).validation_loss(val_idx)
        trained_loss = trainer.validation_loss(val_idx)
        assert trained_loss < fresh_loss


class TestSeedReproducibility:
    def test_same_seed_same_history(self, mini_dataset):
        losses = []
        for _ in range(2):
            model = STGNNDJD.from_dataset(mini_dataset, seed=3)
            trainer = Trainer(
                model, mini_dataset,
                TrainingConfig(epochs=1, max_batches_per_epoch=2, seed=3),
            )
            losses.append(trainer.fit().train_loss[0])
        assert losses[0] == pytest.approx(losses[1], rel=1e-9)

"""Checkpoint save/load round-trips, corruption handling, atomic writes."""

import glob
import struct
import zipfile

import numpy as np
import pytest

from repro.core import (
    SCHEMA_VERSION,
    SNAPSHOT_VERSION,
    STGNNDJD,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointSchemaError,
    TrainingSnapshot,
    checkpoint_schema_version,
    load_config,
    load_state,
    load_stgnn,
    load_training_snapshot,
    save_checkpoint,
    save_training_snapshot,
    training_fingerprint,
)
from repro.core import persistence
from repro.nn import Linear
from repro.tensor import no_grad


class TestCheckpoint:
    def test_roundtrip_preserves_predictions(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = load_stgnn(path)

        model.eval()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        with no_grad():
            d1, s1 = model(sample)
            d2, s2 = restored(sample)
        np.testing.assert_allclose(d1.data, d2.data)
        np.testing.assert_allclose(s1.data, s2.data)

    def test_config_restored(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0, num_heads=2,
                                      fcg_layers=1)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        config = load_config(path)
        assert config.num_heads == 2
        assert config.fcg_layers == 1
        assert config.num_stations == tiny_dataset.num_stations

    def test_loaded_model_in_eval_mode(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert not load_stgnn(path).training

    def test_state_only_for_plain_module(self, tmp_path, rng):
        layer = Linear(3, 2, rng=rng)
        path = tmp_path / "layer.npz"
        save_checkpoint(layer, path)
        state = load_state(path)
        np.testing.assert_allclose(state["weight"], layer.weight.data)
        with pytest.raises(KeyError):
            load_config(path)  # no config stored for a bare module

    def test_state_is_a_copy(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        before = model.predictor.weight.data.copy()
        model.predictor.weight.data[:] = 123.0
        restored = load_stgnn(path)
        np.testing.assert_allclose(restored.predictor.weight.data, before)


class TestSchemaVersion:
    def _legacy_checkpoint(self, model, path):
        """Re-save a checkpoint without the schema field (pre-version files)."""
        with np.load(path) as bundle:
            arrays = {
                name: bundle[name]
                for name in bundle.files
                if name != "__schema_version__"
            }
        np.savez(path, **arrays)

    def test_new_checkpoints_carry_current_version(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        assert checkpoint_schema_version(path) == SCHEMA_VERSION

    def test_schema_key_not_leaked_into_state(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        save_checkpoint(model, path)
        assert set(load_state(path)) == set(model.state_dict())

    def test_legacy_versionless_checkpoint_still_loads(
        self, tiny_dataset, tmp_path
    ):
        path = tmp_path / "model.npz"
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        save_checkpoint(model, path)
        self._legacy_checkpoint(model, path)
        assert checkpoint_schema_version(path) is None
        restored = load_stgnn(path)
        np.testing.assert_allclose(
            restored.predictor.weight.data, model.predictor.weight.data
        )

    def test_version_mismatch_fails_loudly(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        with np.load(path) as bundle:
            arrays = {name: bundle[name] for name in bundle.files}
        arrays["__schema_version__"] = np.asarray(SCHEMA_VERSION + 7,
                                                  dtype=np.int64)
        np.savez(path, **arrays)
        with pytest.raises(CheckpointSchemaError, match="schema version"):
            load_stgnn(path)
        with pytest.raises(CheckpointSchemaError):
            load_state(path)
        with pytest.raises(CheckpointSchemaError):
            load_config(path)


class TestCorruptCheckpoints:
    """Damaged files raise a clean error — never load garbage weights."""

    @pytest.fixture
    def checkpoint(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        return path

    def _assert_unreadable(self, path):
        for reader in (load_stgnn, load_state, load_config):
            with pytest.raises(CheckpointCorruptError):
                reader(path)

    def test_truncated_file(self, checkpoint):
        data = checkpoint.read_bytes()
        checkpoint.write_bytes(data[: len(data) // 2])
        self._assert_unreadable(checkpoint)

    def test_severely_truncated_file(self, checkpoint):
        checkpoint.write_bytes(checkpoint.read_bytes()[:10])
        self._assert_unreadable(checkpoint)

    def test_bit_flip_in_an_array_member(self, checkpoint):
        # Flip one byte inside the CRC-protected payload of a weight
        # member and of the config member (so every reader, including
        # config-only loads, touches damage). The zip central directory
        # still parses, so np.load only fails lazily at member read —
        # the normalisation must catch that path too.
        data = bytearray(checkpoint.read_bytes())
        with zipfile.ZipFile(checkpoint) as archive:
            headers = {
                info.filename: info.header_offset
                for info in archive.infolist()
            }
        for member in ("predictor.weight.npy", "__config_json__.npy"):
            header = headers[member]
            name_len, extra_len = struct.unpack(
                "<HH", data[header + 26:header + 30]
            )
            payload = header + 30 + name_len + extra_len
            data[payload + 80] ^= 0xFF  # past the npy magic, inside data
        checkpoint.write_bytes(bytes(data))
        self._assert_unreadable(checkpoint)

    def test_not_an_archive_at_all(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"definitely not a zip file")
        self._assert_unreadable(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"")
        self._assert_unreadable(path)

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_stgnn(tmp_path / "never-written.npz")

    def test_corruption_error_is_a_checkpoint_error(self):
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointSchemaError, CheckpointError)


class TestAtomicWrites:
    def test_no_temp_files_survive_a_save(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        assert glob.glob(str(tmp_path / ".model.npz.tmp.*")) == []

    def test_failed_write_leaves_previous_checkpoint_intact(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        path = tmp_path / "model.npz"
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        save_checkpoint(model, path)
        good = path.read_bytes()

        def exploding_savez(fh, **arrays):
            fh.write(b"partial garbage")  # simulate dying mid-serialise
            raise OSError("disk full")

        monkeypatch.setattr(persistence.np, "savez", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(model, path)
        assert path.read_bytes() == good  # old file untouched
        assert glob.glob(str(tmp_path / ".model.npz.tmp.*")) == []


class TestTrainingSnapshots:
    def _snapshot(self, model) -> TrainingSnapshot:
        return TrainingSnapshot(
            epoch=4,
            model_state=model.state_dict(),
            adam_step_count=37,
            adam_m={"0000": np.arange(3.0)},
            adam_v={"0000": np.arange(3.0) ** 2},
            rng_state=np.random.default_rng(9).bit_generator.state,
            train_loss=[0.5, 0.25],
            val_loss=[0.6, 0.3],
            best_epoch=1,
            best_val=0.3,
            bad_epochs=0,
            best_state=model.state_dict(),
            fingerprint=training_fingerprint(model),
        )

    def test_roundtrip_is_exact(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        snapshot = self._snapshot(model)
        path = tmp_path / "snap.npz"
        save_training_snapshot(path, snapshot)
        loaded = load_training_snapshot(path)
        assert loaded.epoch == snapshot.epoch
        assert loaded.adam_step_count == snapshot.adam_step_count
        assert loaded.rng_state == snapshot.rng_state  # big ints exact
        assert loaded.train_loss == snapshot.train_loss  # floats bitwise
        assert loaded.best_val == snapshot.best_val
        assert loaded.fingerprint == snapshot.fingerprint
        for name, value in snapshot.model_state.items():
            np.testing.assert_array_equal(loaded.model_state[name], value)
        np.testing.assert_array_equal(loaded.adam_m["0000"], np.arange(3.0))
        for name, value in snapshot.best_state.items():
            np.testing.assert_array_equal(loaded.best_state[name], value)

    def test_model_checkpoint_is_not_a_snapshot(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        with pytest.raises(CheckpointSchemaError, match="not a training snapshot"):
            load_training_snapshot(path)

    def test_snapshot_version_mismatch_rejected(
        self, tiny_dataset, tmp_path
    ):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "snap.npz"
        save_training_snapshot(path, self._snapshot(model))
        with np.load(path) as bundle:
            arrays = {name: bundle[name] for name in bundle.files}
        arrays["__snapshot_version__"] = np.asarray(
            SNAPSHOT_VERSION + 5, dtype=np.int64
        )
        np.savez(path, **arrays)
        with pytest.raises(CheckpointSchemaError, match="version"):
            load_training_snapshot(path)

    def test_corrupt_snapshot_raises_cleanly(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "snap.npz"
        save_training_snapshot(path, self._snapshot(model))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(CheckpointCorruptError):
            load_training_snapshot(path)

"""Checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.core import (
    SCHEMA_VERSION,
    STGNNDJD,
    CheckpointSchemaError,
    checkpoint_schema_version,
    load_config,
    load_state,
    load_stgnn,
    save_checkpoint,
)
from repro.nn import Linear
from repro.tensor import no_grad


class TestCheckpoint:
    def test_roundtrip_preserves_predictions(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = load_stgnn(path)

        model.eval()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        with no_grad():
            d1, s1 = model(sample)
            d2, s2 = restored(sample)
        np.testing.assert_allclose(d1.data, d2.data)
        np.testing.assert_allclose(s1.data, s2.data)

    def test_config_restored(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0, num_heads=2,
                                      fcg_layers=1)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        config = load_config(path)
        assert config.num_heads == 2
        assert config.fcg_layers == 1
        assert config.num_stations == tiny_dataset.num_stations

    def test_loaded_model_in_eval_mode(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert not load_stgnn(path).training

    def test_state_only_for_plain_module(self, tmp_path, rng):
        layer = Linear(3, 2, rng=rng)
        path = tmp_path / "layer.npz"
        save_checkpoint(layer, path)
        state = load_state(path)
        np.testing.assert_allclose(state["weight"], layer.weight.data)
        with pytest.raises(KeyError):
            load_config(path)  # no config stored for a bare module

    def test_state_is_a_copy(self, tiny_dataset, tmp_path):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        before = model.predictor.weight.data.copy()
        model.predictor.weight.data[:] = 123.0
        restored = load_stgnn(path)
        np.testing.assert_allclose(restored.predictor.weight.data, before)


class TestSchemaVersion:
    def _legacy_checkpoint(self, model, path):
        """Re-save a checkpoint without the schema field (pre-version files)."""
        with np.load(path) as bundle:
            arrays = {
                name: bundle[name]
                for name in bundle.files
                if name != "__schema_version__"
            }
        np.savez(path, **arrays)

    def test_new_checkpoints_carry_current_version(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        assert checkpoint_schema_version(path) == SCHEMA_VERSION

    def test_schema_key_not_leaked_into_state(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        save_checkpoint(model, path)
        assert set(load_state(path)) == set(model.state_dict())

    def test_legacy_versionless_checkpoint_still_loads(
        self, tiny_dataset, tmp_path
    ):
        path = tmp_path / "model.npz"
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        save_checkpoint(model, path)
        self._legacy_checkpoint(model, path)
        assert checkpoint_schema_version(path) is None
        restored = load_stgnn(path)
        np.testing.assert_allclose(
            restored.predictor.weight.data, model.predictor.weight.data
        )

    def test_version_mismatch_fails_loudly(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=0), path)
        with np.load(path) as bundle:
            arrays = {name: bundle[name] for name in bundle.files}
        arrays["__schema_version__"] = np.asarray(SCHEMA_VERSION + 7,
                                                  dtype=np.int64)
        np.savez(path, **arrays)
        with pytest.raises(CheckpointSchemaError, match="schema version"):
            load_stgnn(path)
        with pytest.raises(CheckpointSchemaError):
            load_state(path)
        with pytest.raises(CheckpointSchemaError):
            load_config(path)

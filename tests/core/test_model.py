"""STGNN-DJD model: configuration, forward pass, ablations, introspection."""

import numpy as np
import pytest

from repro.core import STGNNDJD, STGNNDJDConfig
from repro.tensor import no_grad


@pytest.fixture(scope="module")
def model_and_sample(tiny_dataset):
    model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
    sample = tiny_dataset.sample(tiny_dataset.min_history)
    return model, sample


class TestConfig:
    def test_defaults_match_paper(self):
        config = STGNNDJDConfig(num_stations=10)
        assert config.short_window == 96
        assert config.long_days == 7
        assert config.fcg_layers == 2
        assert config.pcg_layers == 3
        assert config.num_heads == 4
        assert config.dropout == 0.2

    def test_needs_a_graph(self):
        with pytest.raises(ValueError):
            STGNNDJDConfig(num_stations=5, use_fcg=False, use_pcg=False)

    def test_with_overrides(self):
        config = STGNNDJDConfig(num_stations=5).with_overrides(num_heads=2)
        assert config.num_heads == 2
        assert config.num_stations == 5

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            STGNNDJDConfig(num_stations=1)
        with pytest.raises(ValueError):
            STGNNDJDConfig(num_stations=5, flow_scale=0.0)


class TestForward:
    def test_output_shapes(self, model_and_sample, tiny_dataset):
        model, sample = model_and_sample
        demand, supply = model(sample)
        n = tiny_dataset.num_stations
        assert demand.shape == (n,)
        assert supply.shape == (n,)

    def test_outputs_finite(self, model_and_sample):
        model, sample = model_and_sample
        demand, supply = model(sample)
        assert np.isfinite(demand.data).all()
        assert np.isfinite(supply.data).all()

    def test_eval_deterministic(self, model_and_sample):
        model, sample = model_and_sample
        model.eval()
        with no_grad():
            d1, _ = model(sample)
            d2, _ = model(sample)
        model.train()
        np.testing.assert_allclose(d1.data, d2.data)

    def test_prediction_depends_on_input(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0).eval()
        with no_grad():
            d1, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
            d2, _ = model(tiny_dataset.sample(tiny_dataset.min_history + 5))
        assert not np.allclose(d1.data, d2.data)

    def test_gradients_reach_every_parameter(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        model.train()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        demand, supply = model(sample)
        (demand.sum() + (supply * supply).sum()).backward()
        missing = [
            name for name, p in model.named_parameters()
            if p.grad is None or np.abs(p.grad).sum() == 0
        ]
        # Dropout can zero a small number of paths; with rate 0.2 on an
        # 8x8 feature map a fully dead parameter is overwhelmingly
        # unlikely, so require none missing.
        assert not missing, f"parameters without gradient: {missing}"


class TestAblations:
    def test_no_flow_conv(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0, use_flow_conv=False)
        assert not hasattr(model, "flow_conv")
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert demand.shape == (tiny_dataset.num_stations,)

    def test_no_fcg(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0, use_fcg=False)
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert demand.shape == (tiny_dataset.num_stations,)
        assert model.predictor.in_features == tiny_dataset.num_stations

    def test_no_pcg(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0, use_pcg=False)
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert demand.shape == (tiny_dataset.num_stations,)

    def test_full_model_concatenates_both_embeddings(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        assert model.predictor.in_features == 2 * tiny_dataset.num_stations

    @pytest.mark.parametrize("fcg_aggregator", ["flow", "mean", "max"])
    def test_fcg_aggregator_variants(self, tiny_dataset, fcg_aggregator):
        model = STGNNDJD.from_dataset(
            tiny_dataset, seed=0, fcg_aggregator=fcg_aggregator
        )
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert np.isfinite(demand.data).all()

    @pytest.mark.parametrize("pcg_aggregator", ["attention", "mean", "max"])
    def test_pcg_aggregator_variants(self, tiny_dataset, pcg_aggregator):
        model = STGNNDJD.from_dataset(
            tiny_dataset, seed=0, pcg_aggregator=pcg_aggregator
        )
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert np.isfinite(demand.data).all()

    @pytest.mark.parametrize("layers", [1, 2, 4])
    def test_layer_sweeps(self, tiny_dataset, layers):
        model = STGNNDJD.from_dataset(
            tiny_dataset, seed=0, fcg_layers=layers, pcg_layers=layers
        )
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert np.isfinite(demand.data).all()


class TestIntrospection:
    def test_dependency_matrix_rows_sum_to_one(self, model_and_sample, tiny_dataset):
        model, sample = model_and_sample
        alpha = model.dependency_matrix(sample)
        n = tiny_dataset.num_stations
        assert alpha.shape == (n, n)
        np.testing.assert_allclose(alpha.sum(axis=1), np.ones(n), atol=1e-9)

    def test_dependency_matrix_requires_pcg(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0, use_pcg=False)
        with pytest.raises(RuntimeError):
            model.dependency_matrix(tiny_dataset.sample(tiny_dataset.min_history))

    def test_dependency_varies_over_time(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        t0 = tiny_dataset.min_history
        a1 = model.dependency_matrix(tiny_dataset.sample(t0))
        a2 = model.dependency_matrix(tiny_dataset.sample(t0 + 7))
        assert not np.allclose(a1, a2)

    def test_layer_attention_structure(self, model_and_sample):
        model, sample = model_and_sample
        layers = model.layer_attention(sample)
        assert len(layers) == model.config.pcg_layers
        assert len(layers[0]) == model.config.num_heads

    def test_dependency_matrix_restores_training_mode(self, model_and_sample):
        model, sample = model_and_sample
        model.train()
        model.dependency_matrix(sample)
        assert model.training

    def test_state_dict_roundtrip_preserves_predictions(self, tiny_dataset):
        m1 = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        m2 = STGNNDJD.from_dataset(tiny_dataset, seed=99)
        m2.load_state_dict(m1.state_dict())
        m1.eval(); m2.eval()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        with no_grad():
            d1, _ = m1(sample)
            d2, _ = m2(sample)
        np.testing.assert_allclose(d1.data, d2.data)

"""FlowGNN / PatternGNN (Algorithm 1 with custom aggregators)."""

import numpy as np
import pytest

from repro.core import FlowGNN, PatternGNN
from repro.graphs import FlowConvolutedGraph, PatternCorrelationGraph
from repro.nn import PairwiseAdditiveAttention
from repro.tensor import Tensor


def make_fcg(rng, n=5):
    mask = rng.random((n, n)) > 0.4
    np.fill_diagonal(mask, True)
    weights = rng.random((n, n)) * mask
    weights /= weights.sum(axis=1, keepdims=True)
    return FlowConvolutedGraph(
        node_features=Tensor(rng.normal(size=(n, n)), requires_grad=True),
        weights=Tensor(weights),
        mask=mask,
    )


def make_pcg(rng, n=5):
    features = Tensor(rng.normal(size=(n, n)), requires_grad=True)
    attention = PairwiseAdditiveAttention(n, rng)
    return PatternCorrelationGraph(node_features=features, attention=attention(features))


class TestFlowGNN:
    def test_output_shape(self, rng):
        gnn = FlowGNN(features=5, num_layers=2, rng=rng)
        assert gnn(make_fcg(rng)).shape == (5, 5)

    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_layer_count_respected(self, rng, layers):
        gnn = FlowGNN(5, layers, rng)
        assert len(gnn.transforms) == layers

    @pytest.mark.parametrize("aggregator", ["flow", "mean", "max"])
    def test_all_aggregators_run(self, rng, aggregator):
        gnn = FlowGNN(5, 2, rng, aggregator=aggregator)
        out = gnn(make_fcg(rng))
        assert out.shape == (5, 5)
        assert np.isfinite(out.data).all()

    def test_invalid_layers(self, rng):
        with pytest.raises(ValueError):
            FlowGNN(5, 0, rng)

    def test_gradients_reach_graph_features(self, rng):
        gnn = FlowGNN(5, 2, rng)
        graph = make_fcg(rng)
        gnn(graph).sum().backward()
        assert graph.node_features.grad is not None

    def test_propagation_reaches_two_hops(self, rng):
        """With 2 layers, a node's embedding depends on 2-hop neighbors."""
        n = 4
        # Path graph 0 <- 1 <- 2 (weights row i aggregates from i+1).
        mask = np.eye(n, dtype=bool)
        weights = np.eye(n) * 0.5
        for i in range(n - 1):
            mask[i, i + 1] = True
            weights[i, i + 1] = 0.5
        features = rng.normal(size=(n, n))
        graph1 = FlowConvolutedGraph(Tensor(features.copy()), Tensor(weights), mask)
        perturbed = features.copy()
        perturbed[2] += 10.0  # 2 hops from node 0
        graph2 = FlowConvolutedGraph(Tensor(perturbed), Tensor(weights), mask)
        gnn = FlowGNN(n, 2, rng, dropout=0.0)
        gnn.eval()
        out1, out2 = gnn(graph1).data, gnn(graph2).data
        assert not np.allclose(out1[0], out2[0])


class TestPatternGNN:
    def test_output_shape(self, rng):
        gnn = PatternGNN(5, num_layers=3, num_heads=2, rng=rng)
        assert gnn(make_pcg(rng)).shape == (5, 5)

    @pytest.mark.parametrize("heads", [1, 2, 4])
    def test_head_counts(self, rng, heads):
        gnn = PatternGNN(5, 2, heads, rng)
        out = gnn(make_pcg(rng))
        assert out.shape == (5, 5)

    @pytest.mark.parametrize("aggregator", ["attention", "mean", "max"])
    def test_all_aggregators_run(self, rng, aggregator):
        gnn = PatternGNN(5, 2, 2, rng, aggregator=aggregator)
        assert gnn(make_pcg(rng)).shape == (5, 5)

    def test_unknown_aggregator_rejected(self, rng):
        with pytest.raises(ValueError):
            PatternGNN(5, 2, 2, rng, aggregator="sum")

    def test_attention_matrices_structure(self, rng):
        gnn = PatternGNN(5, num_layers=3, num_heads=2, rng=rng)
        matrices = gnn.attention_matrices(make_pcg(rng))
        assert len(matrices) == 3  # layers
        assert len(matrices[0]) == 2  # heads
        for layer in matrices:
            for head in layer:
                np.testing.assert_allclose(head.data.sum(axis=1), np.ones(5))

    def test_attention_matrices_require_attention_aggregator(self, rng):
        gnn = PatternGNN(5, 2, 2, rng, aggregator="mean")
        with pytest.raises(RuntimeError):
            gnn.attention_matrices(make_pcg(rng))

    def test_gradients_reach_all_parameters(self, rng):
        gnn = PatternGNN(5, 2, 2, rng)
        graph = make_pcg(rng)
        (gnn(graph) * Tensor(rng.normal(size=(5, 5)))).sum().backward()
        missing = [n for n, p in gnn.named_parameters() if p.grad is None]
        assert not missing

"""The TrainingConfig.loss switch (joint vs independent losses)."""

import numpy as np
import pytest

from repro.core import STGNNDJD, Trainer, TrainingConfig


class TestLossOption:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(loss="huber")

    def test_independent_loss_trains(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, dropout=0.0)
        trainer = Trainer(
            model, mini_dataset,
            TrainingConfig(epochs=3, max_batches_per_epoch=3, seed=0,
                           patience=10, loss="independent"),
        )
        history = trainer.fit()
        assert history.train_loss[-1] < history.train_loss[0]

    def test_loss_values_differ_between_modes(self, mini_dataset):
        t = mini_dataset.min_history
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, dropout=0.0)
        model.eval()
        joint = Trainer(model, mini_dataset, TrainingConfig(loss="joint"))
        independent = Trainer(model, mini_dataset, TrainingConfig(loss="independent"))
        lj = joint._sample_loss(t).item()
        li = independent._sample_loss(t).item()
        assert lj != pytest.approx(li)
        # joint = sqrt(mse_d + mse_s); independent = mse_d + mse_s.
        assert lj == pytest.approx(np.sqrt(li), rel=1e-6)

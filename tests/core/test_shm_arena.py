"""Byte-level contract of the shared-memory gradient transport.

``core/shm_arena.py`` owns the arena layouts the worker pool maps numpy
views over; these tests pin the alignment, round-trip, read-only and
crash-safe-teardown guarantees the pool builds on.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.shm_arena import (
    GradHeaderLayout,
    ParamLayout,
    SharedArena,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestParamLayout:
    def test_offsets_are_eight_byte_aligned(self):
        arrays = [
            np.zeros(3, dtype=np.uint8),  # 3 bytes: forces padding
            np.zeros((2, 2), dtype=np.float64),
            np.zeros((), dtype=np.float32),
            np.zeros(5, dtype=np.float64),
        ]
        layout = ParamLayout(arrays)
        assert len(layout) == len(arrays)
        for (offset, shape, dtype), data in zip(layout.fields, arrays):
            assert offset % 8 == 0
            assert shape == data.shape
            assert dtype == data.dtype
        assert layout.total_bytes >= sum(a.nbytes for a in arrays)

    def test_views_round_trip_through_an_arena(self):
        arrays = [
            np.arange(6, dtype=np.float64).reshape(2, 3),
            np.full((), 7.0, dtype=np.float64),
        ]
        layout = ParamLayout(arrays)
        arena = SharedArena(layout.total_bytes)
        try:
            writers = layout.views(arena.buf)
            for view, data in zip(writers, arrays):
                np.copyto(view, data)
            readers = layout.views(arena.buf)
            for view, data in zip(readers, arrays):
                np.testing.assert_array_equal(view, data)
                assert view.shape == data.shape and view.dtype == data.dtype
        finally:
            arena.destroy()

    def test_readonly_views_reject_writes(self):
        layout = ParamLayout([np.zeros(4, dtype=np.float64)])
        arena = SharedArena(layout.total_bytes)
        try:
            (view,) = layout.views(arena.buf, writeable=False)
            with pytest.raises(ValueError):
                view[0] = 1.0
        finally:
            arena.destroy()

    def test_base_offset_shifts_the_whole_layout(self):
        layout = ParamLayout([np.zeros(2, dtype=np.float64)])
        header = GradHeaderLayout(1)
        arena = SharedArena(header.header_bytes + layout.total_bytes)
        try:
            (view,) = layout.views(arena.buf, base_offset=header.header_bytes)
            view[:] = [1.5, 2.5]
            raw = np.frombuffer(
                arena.buf, dtype=np.float64, count=2, offset=header.header_bytes
            )
            np.testing.assert_array_equal(raw, [1.5, 2.5])
            # The header region is untouched by the payload write.
            assert float(header.loss_view(arena.buf)[0]) == 0.0
        finally:
            arena.destroy()


class TestGradHeaderLayout:
    def test_header_is_aligned_and_sized(self):
        header = GradHeaderLayout(num_params=13)
        assert header.header_bytes % 8 == 0
        assert header.header_bytes >= 8 + 13

    def test_loss_and_flags_round_trip(self):
        header = GradHeaderLayout(num_params=3)
        arena = SharedArena(header.header_bytes)
        try:
            header.loss_view(arena.buf)[0] = -2.25
            flags = header.flags_view(arena.buf)
            flags[:] = [1, 0, 1]
            assert float(header.loss_view(arena.buf)[0]) == -2.25
            np.testing.assert_array_equal(header.flags_view(arena.buf), [1, 0, 1])
        finally:
            arena.destroy()


class TestSharedArena:
    def test_destroy_unlinks_the_segment(self):
        arena = SharedArena(64)
        assert _segment_exists(arena.name)
        arena.destroy()
        assert not _segment_exists(arena.name)

    def test_destroy_is_idempotent(self):
        arena = SharedArena(64)
        arena.destroy()
        arena.destroy()

    def test_destroy_with_live_views_still_unlinks(self):
        # A numpy view keeps a buffer export open; destroy() must not
        # leak the /dev/shm name over it (unlink-first teardown).
        arena = SharedArena(64)
        view = np.frombuffer(arena.buf, dtype=np.float64, count=8)
        arena.destroy()
        assert not _segment_exists(arena.name)
        assert view[0] == 0.0  # pages live until the mapping drops

"""Validation-based configuration search."""

import pytest

from repro.core import TrainingConfig
from repro.core.tuning import expand_grid, select_config


class TestExpandGrid:
    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_cartesian_product(self):
        combos = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(combos) == 4
        assert {"a": 1, "b": "y"} in combos

    def test_single_field(self):
        assert expand_grid({"num_heads": [1, 2, 3]}) == [
            {"num_heads": 1}, {"num_heads": 2}, {"num_heads": 3},
        ]


class TestSelectConfig:
    @pytest.fixture(scope="class")
    def search(self, mini_dataset):
        return select_config(
            mini_dataset,
            grid={"fcg_layers": [1, 2], "dropout": [0.0]},
            training=TrainingConfig(epochs=2, max_batches_per_epoch=2,
                                    patience=10, seed=0),
            seed=0,
        )

    def test_leaderboard_covers_grid(self, search):
        assert len(search.leaderboard) == 2

    def test_leaderboard_sorted_by_val_loss(self, search):
        losses = [c.val_loss for c in search.leaderboard]
        assert losses == sorted(losses)

    def test_best_is_leaderboard_head(self, search):
        assert search.best is search.leaderboard[0]

    def test_best_overrides_usable(self, search, mini_dataset):
        from repro.core import STGNNDJD

        overrides = search.best_overrides()
        assert overrides["dropout"] == 0.0
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, **overrides)
        assert model.config.fcg_layers in (1, 2)

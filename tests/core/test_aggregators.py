"""Aggregators (Sec. V-B and the Figs. 5-6 comparison aggregators)."""

import numpy as np
import pytest

from repro.core import FlowAggregator, MaxAggregator, MeanAggregator, make_fcg_aggregator
from repro.tensor import Tensor


@pytest.fixture
def setup(rng):
    n, f = 5, 4
    features = Tensor(rng.normal(size=(n, f)), requires_grad=True)
    mask = rng.random((n, n)) > 0.5
    np.fill_diagonal(mask, True)
    weights = Tensor(rng.random((n, n)) * mask)
    return features, weights, mask


class TestFlowAggregator:
    def test_is_weighted_sum(self, setup):
        features, weights, mask = setup
        out = FlowAggregator()(features, weights, mask)
        np.testing.assert_allclose(out.data, weights.data @ features.data)

    def test_zero_weights_give_zero(self, rng):
        features = Tensor(rng.normal(size=(3, 2)))
        out = FlowAggregator()(features, Tensor(np.zeros((3, 3))), np.eye(3, dtype=bool))
        np.testing.assert_allclose(out.data, np.zeros((3, 2)))

    def test_gradient_flows(self, setup):
        features, weights, mask = setup
        FlowAggregator()(features, weights, mask).sum().backward()
        assert features.grad is not None


class TestMeanAggregator:
    def test_matches_naive_masked_mean(self, setup):
        features, weights, mask = setup
        out = MeanAggregator()(features, weights, mask)
        for i in range(len(mask)):
            neighbors = np.nonzero(mask[i])[0]
            np.testing.assert_allclose(
                out.data[i], features.data[neighbors].mean(axis=0), atol=1e-12
            )

    def test_isolated_node_zero(self, rng):
        features = Tensor(rng.normal(size=(3, 2)))
        mask = np.zeros((3, 3), dtype=bool)
        out = MeanAggregator()(features, Tensor(np.zeros((3, 3))), mask)
        np.testing.assert_allclose(out.data, np.zeros((3, 2)))


class TestMaxAggregator:
    def test_matches_naive_fc_then_max(self, setup, rng):
        features, weights, mask = setup
        agg = MaxAggregator(4, rng)
        out = agg(features, weights, mask)
        transformed = np.maximum(
            features.data @ agg.transform.weight.data + agg.transform.bias.data, 0.0
        )
        for i in range(len(mask)):
            neighbors = np.nonzero(mask[i])[0]
            np.testing.assert_allclose(
                out.data[i], transformed[neighbors].max(axis=0), atol=1e-9
            )

    def test_gradient_flows_to_transform(self, setup, rng):
        features, weights, mask = setup
        agg = MaxAggregator(4, rng)
        agg(features, weights, mask).sum().backward()
        assert agg.transform.weight.grad is not None


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("flow", FlowAggregator), ("mean", MeanAggregator), ("max", MaxAggregator),
    ])
    def test_makes_right_type(self, kind, cls, rng):
        assert isinstance(make_fcg_aggregator(kind, 4, rng), cls)

    def test_unknown_rejected(self, rng):
        with pytest.raises(ValueError):
            make_fcg_aggregator("median", 4, rng)

"""Integration: the full pipeline from raw trips to evaluated predictions."""

import numpy as np
import pytest

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    evaluate_model,
    generate_city,
)
from repro.baselines import HistoricalAverage
from repro.data import (
    BikeShareDataset,
    FlowDataConfig,
    build_city,
    build_flow_tensors,
    clean_trips,
    generate_trips,
    read_trips_csv,
    write_trips_csv,
)
from repro.eval import model_dependency_heatmap, rush_window_times


class TestFullPipeline:
    def test_trips_to_dataset_through_csv(self, tmp_path):
        """Generate → CSV → reload → clean → flows → dataset: the path a
        real-data user would take."""
        config = SyntheticCityConfig.tiny(days=6, num_stations=6)
        city = build_city(config, seed=0)
        trips = generate_trips(city, seed=0)
        path = tmp_path / "trips.csv"
        write_trips_csv(trips, path)
        reloaded = read_trips_csv(path)
        assert len(reloaded) == len(trips)

        clean, report = clean_trips(reloaded, config.num_stations)
        assert report.kept == len(clean)
        inflow, outflow = build_flow_tensors(
            clean, config.num_stations,
            config.days * config.slots_per_day, config.slot_seconds,
        )
        dataset = BikeShareDataset(
            city.registry, inflow, outflow,
            FlowDataConfig(slot_seconds=config.slot_seconds,
                           short_window=config.short_window,
                           long_days=config.long_days),
        )
        assert dataset.demand.sum() == len(clean)

    def test_train_eval_beats_untrained(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, dropout=0.0)
        trainer = Trainer(
            model, mini_dataset,
            TrainingConfig(epochs=5, max_batches_per_epoch=4, seed=0, patience=10),
        )
        trainer.fit()
        trained = evaluate_model(trainer, mini_dataset)

        fresh = STGNNDJD.from_dataset(mini_dataset, seed=11, dropout=0.0)
        fresh_trainer = Trainer(fresh, mini_dataset)
        untrained = evaluate_model(fresh_trainer, mini_dataset)
        assert trained.rmse < untrained.rmse

    def test_model_beats_historical_average_when_trained_enough(self, mini_dataset):
        """Sanity on the headline claim at miniature scale: the trained
        model should at least approach HA's error (full benchmark does
        the real comparison with more training)."""
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, dropout=0.0)
        trainer = Trainer(
            model, mini_dataset,
            TrainingConfig(epochs=8, max_batches_per_epoch=6, seed=0, patience=10),
        )
        trainer.fit()
        model_result = evaluate_model(trainer, mini_dataset)
        ha_result = evaluate_model(HistoricalAverage(mini_dataset).fit(), mini_dataset)
        assert model_result.rmse < ha_result.rmse * 2.0

    def test_case_study_pipeline(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=0)
        times = rush_window_times(mini_dataset, mini_dataset.num_days - 1, 7.0, 10.0)
        heatmap = model_dependency_heatmap(model, mini_dataset, 0, times, neighbors=4)
        assert np.isfinite(heatmap.values).all()
        assert (heatmap.values >= 0).all()


class TestMultiStepExtension:
    def test_forward_shapes(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, horizon=3)
        demand, supply = model(mini_dataset.sample(mini_dataset.min_history))
        n = mini_dataset.num_stations
        assert demand.shape == (n, 3)
        assert supply.shape == (n, 3)

    def test_training_runs_and_improves(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, horizon=2, dropout=0.0)
        trainer = Trainer(
            model, mini_dataset,
            TrainingConfig(epochs=3, max_batches_per_epoch=3, seed=0, patience=10),
        )
        history = trainer.fit()
        assert history.train_loss[-1] < history.train_loss[0]

    def test_predict_has_horizon_columns(self, mini_dataset):
        model = STGNNDJD.from_dataset(mini_dataset, seed=0, horizon=2)
        trainer = Trainer(model, mini_dataset)
        _, _, test_idx = mini_dataset.split_indices()
        demand, supply = trainer.predict(int(test_idx[0]))
        assert demand.shape == (mini_dataset.num_stations, 2)

    def test_invalid_horizon(self, mini_dataset):
        with pytest.raises(ValueError):
            STGNNDJD.from_dataset(mini_dataset, seed=0, horizon=0)


class TestRobustness:
    def test_station_with_zero_traffic(self):
        """A dead station must not break training or evaluation."""
        ds = generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=1)
        ds.inflow[:, 0, :] = 0.0
        ds.inflow[:, :, 0] = 0.0
        ds.outflow[:, 0, :] = 0.0
        ds.outflow[:, :, 0] = 0.0
        rebuilt = BikeShareDataset(ds.registry, ds.inflow, ds.outflow, ds.config)
        model = STGNNDJD.from_dataset(rebuilt, seed=0)
        trainer = Trainer(
            model, rebuilt, TrainingConfig(epochs=1, max_batches_per_epoch=2)
        )
        history = trainer.fit()
        assert np.isfinite(history.train_loss[0])
        result = evaluate_model(trainer, rebuilt)
        assert np.isfinite(result.rmse)

    def test_empty_slots_everywhere(self):
        """All-zero flow (a snowstorm day) must not produce NaNs."""
        ds = generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=2)
        quiet_inflow = np.zeros_like(ds.inflow)
        quiet_outflow = np.zeros_like(ds.outflow)
        # Keep one trip so normalizers have a nonzero max.
        quiet_outflow[0, 0, 1] = 1.0
        quiet_inflow[0, 1, 0] = 1.0
        rebuilt = BikeShareDataset(ds.registry, quiet_inflow, quiet_outflow, ds.config)
        model = STGNNDJD.from_dataset(rebuilt, seed=0)
        demand, supply = model(rebuilt.sample(rebuilt.min_history))
        assert np.isfinite(demand.data).all()
        assert np.isfinite(supply.data).all()

"""Smoke tests: every example script runs end-to-end (small settings)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "--stations", "8", "--days", "10",
                             "--epochs", "2")
        assert result.returncode == 0, result.stderr
        assert "STGNN-DJD" in result.stdout
        assert "Historical Average" in result.stdout

    def test_rush_hour_operations(self):
        result = run_example("rush_hour_operations.py", "--epochs", "2")
        assert result.returncode == 0, result.stderr
        assert "morning rush" in result.stdout
        assert "net outflow" in result.stdout

    def test_case_study_dependency(self):
        result = run_example("case_study_dependency.py", "--epochs", "2")
        assert result.returncode == 0, result.stderr
        assert "locality-prior" in result.stdout
        assert "monotonicity" in result.stdout

    def test_multi_step_forecast(self):
        result = run_example("multi_step_forecast.py", "--epochs", "2",
                             "--horizon", "2")
        assert result.returncode == 0, result.stderr
        assert "step" in result.stdout

    def test_city_analytics(self):
        result = run_example("city_analytics.py")
        assert result.returncode == 0, result.stderr
        assert "Top stations by demand" in result.stdout
        assert "OD pairs" in result.stdout

    def test_train_save_deploy(self, tmp_path):
        result = run_example("train_save_deploy.py", "--epochs", "2",
                             "--checkpoint", str(tmp_path / "m.npz"))
        assert result.returncode == 0, result.stderr
        assert "mean latency" in result.stdout
        assert (tmp_path / "m.npz").exists()
        assert "booting PredictionService" in result.stdout
        assert "cached=True" in result.stdout
        assert "service stopped cleanly" in result.stdout

    def test_custom_data_pipeline(self, tmp_path):
        result = run_example("custom_data_pipeline.py", "--epochs", "2",
                             "--workdir", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert "Cleaning report" in result.stdout
        assert "Test result" in result.stdout

"""End-to-end gradient check of the full STGNN-DJD model.

Backpropagates the paper's joint loss through the whole pipeline (flow
convolution → FCG/PCG → GNNs → predictor) and compares a sample of
parameter gradients against central finite differences. This certifies
the composite graph — dozens of chained ops including masked graph
construction and multi-head attention — not just individual primitives.
"""

import numpy as np
import pytest

from repro.core import STGNNDJD
from repro.nn import joint_demand_supply_loss
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def setup(mini_dataset):
    model = STGNNDJD.from_dataset(
        mini_dataset, seed=3, dropout=0.0, fcg_layers=1, pcg_layers=1, num_heads=2
    )
    model.eval()  # no dropout: deterministic loss for finite differences
    # Zero-initialised biases put zero-flow pairs exactly on the ReLU
    # kink, where the subgradient (0) and the one-sided finite
    # difference disagree by construction. Nudge all parameters off the
    # kink; gradients at generic points are what we are certifying.
    nudge = np.random.default_rng(99)
    for param in model.parameters():
        param.data += nudge.uniform(0.005, 0.02, size=param.data.shape) * nudge.choice(
            [-1.0, 1.0], size=param.data.shape
        )
    sample = mini_dataset.sample(mini_dataset.min_history)
    demand_true = Tensor(mini_dataset.demand_normalizer.transform(sample.target_demand))
    supply_true = Tensor(mini_dataset.supply_normalizer.transform(sample.target_supply))
    return model, sample, demand_true, supply_true


def loss_value(model, sample, demand_true, supply_true) -> float:
    demand_pred, supply_pred = model(sample)
    return joint_demand_supply_loss(
        demand_pred, demand_true, supply_pred, supply_true
    ).item()


def analytic_grads(model, sample, demand_true, supply_true):
    model.zero_grad()
    demand_pred, supply_pred = model(sample)
    loss = joint_demand_supply_loss(demand_pred, demand_true, supply_pred, supply_true)
    loss.backward()
    return {name: (p, p.grad) for name, p in model.named_parameters()}


SPOT_CHECKED = [
    "flow_conv.short_inflow_conv.weight",
    "flow_conv.long_outflow_conv.bias",
    "flow_conv.gate_inflow",
    "flow_conv.projection",
    "flow_gnn.transforms.0.weight",
    "pattern_gnn.layers.0.attentions.0.weight",
    "pattern_gnn.layers.0.attentions.1.attn_src",
    "pattern_gnn.layers.0.values.0.weight",
    "pattern_gnn.layers.0.selves.1.weight",
    "pattern_gnn.layers.0.mix",
    "predictor.weight",
    "predictor.bias",
]


class TestFullModelGradients:
    @pytest.mark.parametrize("param_name", SPOT_CHECKED)
    def test_gradient_matches_finite_difference(self, setup, param_name):
        model, sample, demand_true, supply_true = setup
        grads = analytic_grads(model, sample, demand_true, supply_true)
        assert param_name in grads, f"unknown parameter {param_name}"
        param, grad = grads[param_name]
        assert grad is not None, f"{param_name} received no gradient"

        rng = np.random.default_rng(hash(param_name) % (2**32))
        flat = param.data.reshape(-1)
        grad_flat = grad.reshape(-1)
        eps = 1e-6
        indices = rng.choice(flat.size, size=min(4, flat.size), replace=False)
        for index in indices:
            original = flat[index]
            flat[index] = original + eps
            up = loss_value(model, sample, demand_true, supply_true)
            flat[index] = original - eps
            down = loss_value(model, sample, demand_true, supply_true)
            flat[index] = original
            numeric = (up - down) / (2 * eps)
            assert grad_flat[index] == pytest.approx(numeric, abs=2e-5, rel=1e-3), (
                f"{param_name}[{index}]: analytic {grad_flat[index]:.3e} vs "
                f"numeric {numeric:.3e}"
            )

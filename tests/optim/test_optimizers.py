"""Optimizers: step math against closed form, convergence, clipping."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam, clip_grad_norm


def quadratic_step(param: Parameter) -> None:
    """Set grad of f(p) = 0.5 * ||p||^2, i.e. grad = p."""
    param.grad = param.data.copy()


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, -2.0]))
        p.grad = np.array([0.5, 0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, -2.05])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 0.5 * 10.0])

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.5)
        for _ in range(50):
            quadratic_step(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-5

    @pytest.mark.parametrize("bad", [{"lr": 0.0}, {"momentum": 1.0}, {"weight_decay": -1.0}])
    def test_invalid_hyperparameters(self, bad):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], **{"lr": 0.1, **bad})

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the very first Adam step is ~lr * sign(g).
        p = Parameter(np.array([0.0]))
        p.grad = np.array([3.0])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_matches_reference_two_steps(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        # Reference computation.
        ref_p, m, v = 1.0, 0.0, 0.0
        for step in range(1, 3):
            grad = ref_p  # f = 0.5 p^2
            p.grad = np.array([p.data[0]])
            opt.step()
            m = 0.9 * m + 0.1 * grad
            v = 0.999 * v + 0.001 * grad * grad
            m_hat = m / (1 - 0.9**step)
            v_hat = v / (1 - 0.999**step)
            ref_p -= 0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(p.data, [ref_p], atol=1e-10)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            quadratic_step(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_weight_decay_matches_reference(self):
        # The fused in-place path folds grad + wd * param into scratch;
        # it must match the textbook elementwise recurrence.
        rng = np.random.default_rng(11)
        start = rng.normal(size=(3, 2))
        p = Parameter(start.copy())
        opt = Adam([p], lr=0.05, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.01)
        ref_p = start.copy()
        m = np.zeros_like(ref_p)
        v = np.zeros_like(ref_p)
        for step in range(1, 4):
            grad = rng.normal(size=ref_p.shape)
            p.grad = grad.copy()
            opt.step()
            g = grad + 0.01 * ref_p
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            m_hat = m / (1 - 0.9**step)
            v_hat = v / (1 - 0.999**step)
            ref_p = ref_p - 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(p.data, ref_p, atol=1e-10)

    def test_weight_decay_does_not_mutate_grad(self):
        p = Parameter(np.array([2.0, -1.0]))
        grad = np.array([0.5, 0.5])
        p.grad = grad
        Adam([p], lr=0.1, weight_decay=0.1).step()
        np.testing.assert_allclose(grad, [0.5, 0.5])


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_to_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        p1.grad, p2.grad = np.array([3.0]), np.array([4.0])
        norm = clip_grad_norm([p1, p2], max_norm=10.0)
        assert norm == pytest.approx(5.0)

    def test_ignores_none_grads(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        p1.grad = np.array([2.0])
        norm = clip_grad_norm([p1, p2], max_norm=1.0)
        assert norm == pytest.approx(2.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)

"""Learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, ReduceOnPlateau, StepLR


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        opt = make_opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=1, gamma=0.0)


class TestReduceOnPlateau:
    def test_reduces_after_patience(self):
        opt = make_opt()
        sched = ReduceOnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)  # best
        sched.step(1.0)  # bad 1
        sched.step(1.0)  # bad 2 -> cut
        assert opt.lr == 0.5

    def test_improvement_resets_counter(self):
        opt = make_opt()
        sched = ReduceOnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        sched.step(1.0)  # bad 1
        sched.step(0.5)  # improvement
        sched.step(0.6)  # bad 1 again
        assert opt.lr == 1.0

    def test_respects_min_lr(self):
        opt = make_opt(lr=1e-6)
        sched = ReduceOnPlateau(opt, factor=0.1, patience=1, min_lr=1e-6)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == pytest.approx(1e-6)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(make_opt(), factor=1.5)
        with pytest.raises(ValueError):
            ReduceOnPlateau(make_opt(), patience=0)

"""The public API surface: every advertised name imports and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.data",
    "repro.graphs",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.rebalance",
    "repro.utils",
]


class TestPublicAPI:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_imports(self, package):
        module = importlib.import_module(package)
        assert module is not None

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_registries_cover_table1(self):
        """The baseline registries plus STGNN-DJD span Table I's methods."""
        from repro.baselines import CLASSICAL_BASELINES, DEEP_BASELINES

        methods = set(CLASSICAL_BASELINES) | set(DEEP_BASELINES) | {"STGNN-DJD"}
        expected = {
            "HA", "ARIMA", "XGBoost", "MLP", "RNN", "LSTM",
            "GCNN", "MGNN", "ASTGCN", "STSGCN", "GBike", "STGNN-DJD",
        }
        assert methods == expected

    def test_public_classes_documented(self):
        """Every public class/function in the top-level API has a docstring."""
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

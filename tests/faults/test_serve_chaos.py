"""Injected serving failures: degraded forecasts, torn reloads, overload.

The degraded-serving contract of ``serve/service.py``: failures answer
requests anyway, honestly flagged. A forward failure re-serves the last
finalized forecast with ``stale=True``; an unloadable checkpoint on disk
keeps the old weights serving with ``stale=True`` until a good one
lands; a full admission queue rejects with ``ServiceOverloaded`` instead
of queueing unboundedly.
"""

from __future__ import annotations

import os
import struct
import threading
import zipfile

import numpy as np
import pytest

from repro.core import STGNNDJD, save_checkpoint
from repro.core.persistence import CheckpointCorruptError
from repro.faults import FaultPlan, InjectedFault, injected
from repro.obs import default_registry, metrics_scope
from repro.serve import (
    FlowStateStore,
    PredictionService,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.serve.service import _Request


@pytest.fixture(scope="module")
def served_model(tiny_dataset):
    return STGNNDJD.from_dataset(tiny_dataset, seed=3)


def sync_service(model, dataset, **config_kwargs) -> PredictionService:
    """An unstarted service answering on the calling thread."""
    return PredictionService.for_dataset(
        model, dataset, config=ServiceConfig(**config_kwargs)
    )


class TestStaleFallback:
    def test_forward_failure_serves_last_good_as_stale(
        self, served_model, tiny_dataset
    ):
        service = sync_service(served_model, tiny_dataset, cache=False)
        with metrics_scope():
            registry = default_registry()
            registry.reset()
            registry.enabled = True
            good = service.predict()
            assert good.stale is False

            plan = FaultPlan(seed=0).on("serve.forecast", at=1)
            with injected(plan):
                degraded = service.predict()
            assert degraded.stale is True
            assert degraded.slot == good.slot
            np.testing.assert_array_equal(degraded.demand, good.demand)
            np.testing.assert_array_equal(degraded.supply, good.supply)
            assert registry.counter("serve.stale_served").value == 1

        # Disarmed again: fresh forecasts, no stale flag.
        assert service.predict().stale is False

    def test_forward_failure_with_no_fallback_raises(
        self, served_model, tiny_dataset
    ):
        service = sync_service(served_model, tiny_dataset, cache=False)
        plan = FaultPlan(seed=0).on("serve.forecast", at=1)
        with injected(plan):
            with pytest.raises(InjectedFault):
                service.predict()

    def test_dispatcher_survives_an_injected_exception(
        self, served_model, tiny_dataset
    ):
        # "serve.dispatch" fires before the forecast: the error is
        # forwarded to that batch's callers, and the dispatch loop keeps
        # serving the next batch.
        service = sync_service(served_model, tiny_dataset, cache=False)
        plan = FaultPlan(seed=0).on("serve.dispatch", at=1)
        with service:
            with injected(plan):
                with pytest.raises(InjectedFault):
                    service.predict()
            assert service.running
            assert service.predict().stale is False


class TestTornCheckpointReload:
    def _boot(self, dataset, path, poll=None, seed=1) -> PredictionService:
        save_checkpoint(STGNNDJD.from_dataset(dataset, seed=seed), path)
        return PredictionService.from_checkpoint(
            path,
            FlowStateStore.from_dataset(dataset),
            dataset.demand_normalizer,
            dataset.supply_normalizer,
            config=ServiceConfig(
                checkpoint_path=str(path), reload_poll_seconds=poll
            ),
        )

    def test_manual_reload_of_corrupt_checkpoint_keeps_old_weights(
        self, tiny_dataset, tmp_path
    ):
        path = tmp_path / "model.npz"
        service = self._boot(tiny_dataset, path)
        before = service.predict()

        # Flip a byte inside a weight member's CRC-protected payload
        # (a fixed file offset is layout-dependent: it can land in dead
        # zip local-header metadata that no reader ever checks).
        flipped = bytearray(path.read_bytes())
        with zipfile.ZipFile(path) as archive:
            info = next(
                i for i in archive.infolist()
                if i.filename == "predictor.weight.npy"
            )
        name_len, extra_len = struct.unpack(
            "<HH", flipped[info.header_offset + 26:info.header_offset + 30]
        )
        payload = info.header_offset + 30 + name_len + extra_len
        flipped[payload + 80] ^= 0xFF  # past the npy magic, inside data
        path.write_bytes(bytes(flipped))
        with pytest.raises(CheckpointCorruptError):
            service.reload()
        assert service.model_version == 0
        assert service.reload_failed

        degraded = service.predict()
        assert degraded.stale is True  # honest: weights lag the disk file
        np.testing.assert_array_equal(degraded.demand, before.demand)

        # A good checkpoint clears the degradation.
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=2), path)
        service.reload()
        assert service.model_version == 1
        assert not service.reload_failed
        recovered = service.predict()
        assert recovered.stale is False
        assert not np.array_equal(recovered.demand, before.demand)

    def test_watcher_rides_out_a_mid_write_checkpoint(
        self, tiny_dataset, tmp_path
    ):
        path = tmp_path / "model.npz"
        service = self._boot(tiny_dataset, path, poll=0.02)
        with service:
            before = service.predict()
            assert before.stale is False

            # A foreign non-atomic writer tears the file mid-write: the
            # watcher's reload fails and serving degrades to stale.
            good = path.read_bytes()
            path.write_bytes(good[: len(good) // 2])
            assert service.reload_error_event.wait(timeout=10.0)
            degraded = service.predict()
            assert degraded.stale is True
            assert degraded.model_version == 0
            np.testing.assert_array_equal(degraded.demand, before.demand)

            # The writer finishes: a complete checkpoint lands (atomic
            # rename), the watcher reloads it, staleness clears.
            save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=2), path)
            stat = os.stat(path)
            os.utime(path, (stat.st_atime, stat.st_mtime + 10.0))
            assert service.reload_ok_event.wait(timeout=10.0)
            recovered = service.predict()
            assert recovered.stale is False
            assert recovered.model_version == 1
            assert not np.array_equal(recovered.demand, before.demand)


class TestOverload:
    def test_full_queue_rejects_deterministically(
        self, served_model, tiny_dataset
    ):
        service = sync_service(
            served_model, tiny_dataset,
            max_batch=1, batch_wait_seconds=0.0, queue_depth=2,
            retry_after_seconds=0.123, cache=False,
        )
        picked = threading.Event()
        release = threading.Event()
        plan = FaultPlan(seed=0).on(
            "serve.dispatch", action="call", at=1,
            callback=lambda site: (picked.set(), release.wait(timeout=10.0)),
        )
        backlog = [_Request(None), _Request(None)]
        with injected(plan):
            with service:
                first = _Request(None)
                service._queue.put_nowait(first)
                assert picked.wait(timeout=5.0)  # dispatcher wedged on rq 1
                for request in backlog:  # queue (depth 2) fills behind it
                    service._queue.put_nowait(request)
                with pytest.raises(ServiceOverloaded) as excinfo:
                    service.predict()
                # Jittered within the bounded band, never below base.
                assert 0.123 <= excinfo.value.retry_after <= 0.123 * 1.5
                release.set()
                # Backpressure, not loss: the queued requests all finish.
                for request in [first, *backlog]:
                    assert request.done.wait(timeout=10.0)
                    assert request.error is None
                    assert request.forecast is not None

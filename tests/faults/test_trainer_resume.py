"""Injected training interrupts: snapshot + auto-resume, bitwise.

The resilience contract of ``core/trainer.py``: with
``TrainingConfig.snapshot_path`` set, killing ``fit()`` at any point and
rerunning it resumes from the last completed epoch and — for a
deterministic model — produces exactly the weights and loss history of a
run that was never interrupted.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core.model import STGNNDJD
from repro.core.parallel import fork_available
from repro.core.persistence import CheckpointCorruptError, CheckpointSchemaError
from repro.core.trainer import Trainer, TrainingConfig
from repro.faults import FaultPlan, InjectedFault, injected

EPOCHS = 3


def make_trainer(
    dataset, snapshot_path=None, resume=True, workers=0, **model_kwargs
) -> Trainer:
    defaults = dict(fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0)
    defaults.update(model_kwargs)
    model = STGNNDJD.from_dataset(dataset, seed=3, **defaults)
    config = TrainingConfig(
        epochs=EPOCHS, batch_size=8, seed=5, patience=10,
        snapshot_path=snapshot_path, resume=resume, workers=workers,
    )
    return Trainer(model, dataset, config)


@pytest.fixture(scope="module")
def baseline(mini_dataset):
    """The uninterrupted serial run every resumed run must reproduce."""
    trainer = make_trainer(mini_dataset)
    history = trainer.fit()
    return history, trainer.model.state_dict()


def assert_continues_baseline(baseline, history, trainer):
    base_history, base_state = baseline
    assert history.train_loss == base_history.train_loss  # bitwise
    assert history.val_loss == base_history.val_loss
    assert history.best_epoch == base_history.best_epoch
    state = trainer.model.state_dict()
    assert state.keys() == base_state.keys()
    for name in base_state:
        np.testing.assert_array_equal(state[name], base_state[name])


class TestInterruptResume:
    def test_epoch_boundary_interrupt_resumes_bitwise(
        self, mini_dataset, tmp_path, baseline
    ):
        snap = str(tmp_path / "snap.npz")
        plan = FaultPlan(seed=0).on("trainer.epoch", at=2)  # kill entering epoch 1
        injured = make_trainer(mini_dataset, snapshot_path=snap)
        with injected(plan):
            with pytest.raises(InjectedFault):
                injured.fit()
        assert plan.fired and plan.fired[0].site == "trainer.epoch"
        assert os.path.exists(snap)

        resumed = make_trainer(mini_dataset, snapshot_path=snap)
        history = resumed.fit()
        assert_continues_baseline(baseline, history, resumed)

    def test_mid_epoch_interrupt_replays_the_epoch(
        self, mini_dataset, tmp_path, baseline
    ):
        # Interrupt in the middle of epoch 1 (a few batches in): the
        # snapshot from epoch 0 carries the shuffling RNG state, so the
        # resumed run replays epoch 1's permutation from scratch and
        # still lands bitwise on the uninterrupted run.
        train_idx = mini_dataset.split_indices()[0]
        batches_per_epoch = int(np.ceil(len(train_idx) / 8))
        snap = str(tmp_path / "snap.npz")
        plan = FaultPlan(seed=0).on("trainer.batch", at=batches_per_epoch + 2)
        injured = make_trainer(mini_dataset, snapshot_path=snap)
        with injected(plan):
            with pytest.raises(InjectedFault):
                injured.fit()

        resumed = make_trainer(mini_dataset, snapshot_path=snap)
        history = resumed.fit()
        assert_continues_baseline(baseline, history, resumed)

    def test_snapshotting_does_not_change_training(
        self, mini_dataset, tmp_path, baseline
    ):
        trainer = make_trainer(
            mini_dataset, snapshot_path=str(tmp_path / "snap.npz")
        )
        history = trainer.fit()
        assert_continues_baseline(baseline, history, trainer)

    def test_no_temp_files_left_behind(self, mini_dataset, tmp_path):
        snap = tmp_path / "snap.npz"
        make_trainer(mini_dataset, snapshot_path=str(snap)).fit()
        leftovers = glob.glob(str(tmp_path / ".snap.npz.tmp.*"))
        assert leftovers == []
        assert snap.exists()


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestParallelResume:
    """Snapshot + resume with the shared-memory worker pool active.

    The pool's epoch-granularity schedule lives entirely inside one
    ``_run_epoch`` call, and snapshots are epoch-boundary — so a
    mid-epoch interrupt must replay the whole epoch on resume, shards
    and all, and land bitwise on an uninterrupted ``workers=2`` run
    (the bitwise reference is the same worker count: worker runs match
    serial to 1e-9, not bitwise, by float64 summation reordering).
    """

    def test_mid_epoch_interrupt_with_shm_shards_resumes_bitwise(
        self, mini_dataset, tmp_path
    ):
        baseline_trainer = make_trainer(mini_dataset, workers=2)
        base_history = baseline_trainer.fit()
        base_state = baseline_trainer.model.state_dict()

        train_idx = mini_dataset.split_indices()[0]
        batches_per_epoch = int(np.ceil(len(train_idx) / 8))
        snap = str(tmp_path / "snap.npz")
        plan = FaultPlan(seed=0).on("trainer.batch", at=batches_per_epoch + 2)
        before = set(os.listdir("/dev/shm"))
        injured = make_trainer(mini_dataset, snapshot_path=snap, workers=2)
        with injected(plan):
            with pytest.raises(InjectedFault):
                injured.fit()
        # The interrupt tore down the pool: no arena leaked.
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert leaked == set()
        assert os.path.exists(snap)

        resumed = make_trainer(mini_dataset, snapshot_path=snap, workers=2)
        history = resumed.fit()
        assert history.train_loss == base_history.train_loss  # bitwise
        assert history.val_loss == base_history.val_loss
        state = resumed.model.state_dict()
        for name in base_state:
            np.testing.assert_array_equal(state[name], base_state[name])


class TestResumeSafety:
    def test_fingerprint_mismatch_refuses_to_resume(self, mini_dataset, tmp_path):
        snap = str(tmp_path / "snap.npz")
        make_trainer(mini_dataset, snapshot_path=snap).fit()
        other = make_trainer(mini_dataset, snapshot_path=snap, num_heads=1)
        with pytest.raises(CheckpointSchemaError, match="refusing to resume"):
            other.fit()

    def test_corrupt_snapshot_fails_loudly(self, mini_dataset, tmp_path):
        snap = tmp_path / "snap.npz"
        make_trainer(mini_dataset, snapshot_path=str(snap)).fit()
        data = snap.read_bytes()
        snap.write_bytes(data[: len(data) // 2])  # torn by a foreign writer
        with pytest.raises(CheckpointCorruptError):
            make_trainer(mini_dataset, snapshot_path=str(snap)).fit()

    def test_resume_false_retrains_from_scratch(
        self, mini_dataset, tmp_path, baseline
    ):
        snap = tmp_path / "snap.npz"
        make_trainer(mini_dataset, snapshot_path=str(snap)).fit()
        data = snap.read_bytes()
        snap.write_bytes(data[: len(data) // 2])
        # resume=False never opens the (here: corrupt) snapshot — it
        # retrains from scratch and overwrites it with good state.
        trainer = make_trainer(mini_dataset, snapshot_path=str(snap), resume=False)
        history = trainer.fit()
        assert_continues_baseline(baseline, history, trainer)

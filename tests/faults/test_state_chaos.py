"""Injected flow-state failures: lateness bounds, clock skew, interleaving.

The store's equivalence guarantee (``serve/state.py``) must survive
chaos: events beyond the lateness bound follow the configured policy
without corrupting retained slots, skewed clocks flow through the same
validation as honest ones, and an injected crash mid-ingest leaves the
state exactly as if the event never arrived (safe to redeliver).

The stateful machine at the bottom interleaves ingest, rollover and
injected ingest crashes under hypothesis, asserting bitwise parity with
the batch builder after every step — reproducible from the printed seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.data.flows import build_flow_tensors
from repro.data.records import TripRecord
from repro.faults import FaultPlan, InjectedFault, injected
from repro.obs import default_registry, metrics_scope
from repro.serve import FlowStateConfig, FlowStateStore, LateEventError

SLOT = 1800.0


def make_store(late_policy="drop", frontier=0) -> FlowStateStore:
    config = FlowStateConfig(
        num_stations=3, slot_seconds=SLOT, short_window=4, long_days=1,
        late_policy=late_policy,
    )
    return FlowStateStore(config, frontier=frontier)


def trip(trip_id, start_slot, duration_slots=0.5, origin=0, destination=1):
    start = start_slot * SLOT + 10.0
    return TripRecord(
        trip_id, origin, destination, start, start + duration_slots * SLOT
    )


def assert_batch_parity(store: FlowStateStore, applied: list[TripRecord]):
    """Retained slots (open frontier included) equal the batch build."""
    num_slots = store.frontier + 1
    batch_in, batch_out = build_flow_tensors(
        applied, store.config.num_stations, num_slots, SLOT
    )
    first, inflow, outflow = store.retained_tensors()
    assert np.array_equal(inflow, batch_in[first:num_slots])
    assert np.array_equal(outflow, batch_out[first:num_slots])


class TestLatenessBound:
    def test_drop_policy_counts_and_preserves_parity(self):
        store = make_store("drop")
        applied = [trip(0, 2), trip(1, 5)]
        for t in applied:
            assert store.ingest(t)
        store.advance_to(60)  # capacity is 49: slot <= 11 is now beyond
        with metrics_scope():
            registry = default_registry()
            registry.reset()
            registry.enabled = True
            assert store.ingest(trip(2, 11)) is False
            assert registry.counter("serve.ingest_dropped_late").value == 1
        late_ok = trip(3, 12)  # oldest retained slot: applied in place
        assert store.ingest(late_ok)
        applied.append(late_ok)
        assert_batch_parity(store, applied)

    def test_error_policy_raises_and_leaves_state_untouched(self):
        store = make_store("error")
        applied = [trip(0, 2)]
        store.ingest(applied[0])
        store.advance_to(60)
        before_version = store.version
        snapshot = store.retained_tensors()
        with pytest.raises(LateEventError):
            store.ingest(trip(1, 11))
        assert store.version == before_version
        after = store.retained_tensors()
        assert np.array_equal(after[1], snapshot[1])
        assert np.array_equal(after[2], snapshot[2])
        assert_batch_parity(store, applied)


class TestClockSkew:
    def test_skewed_event_follows_the_same_late_policy(self):
        # The feed's clock drifts one event 55 slots into the past —
        # beyond the lateness bound. The skewed timestamps must hit the
        # same drop policy an honestly-late event would.
        store = make_store("drop")
        store.advance_to(60)
        skew = 55 * SLOT
        plan = FaultPlan(seed=0).on(
            "state.clock", action="call", at=2,
            callback=lambda times: (times[0] - skew, times[1] - skew),
        )
        current = trip(0, 60)
        with injected(plan):
            assert store.ingest(trip(1, 60))          # hit 1: undisturbed
            assert store.ingest(current) is False      # hit 2: skewed, late
            assert store.ingest(trip(2, 60))          # hit 3: undisturbed
        assert len(plan.fired) == 1
        # Parity over the *effective* log: the skewed trip was dropped.
        assert_batch_parity(store, [trip(1, 60), trip(2, 60)])

    def test_forward_skew_advances_the_frontier(self):
        store = make_store("drop")
        skew = 3 * SLOT
        plan = FaultPlan(seed=0).on(
            "state.clock", action="call", at=1,
            callback=lambda times: (times[0] + skew, times[1] + skew),
        )
        with injected(plan):
            store.ingest(trip(0, 10))
        assert store.frontier == 13  # auto-advanced to the skewed slot
        assert_batch_parity(store, [trip(0, 13)])

    def test_same_seed_replays_the_same_faults(self):
        def drive():
            store = make_store("drop")
            plan = FaultPlan(seed=42).on(
                "state.clock", action="call", probability=0.4, max_fires=None,
                callback=lambda times: (times[0] + SLOT, times[1] + SLOT),
            )
            with injected(plan):
                for i in range(20):
                    store.ingest(trip(i, 5 + i))
            fired = [(f.site, f.call_index) for f in plan.fired]
            _, inflow, outflow = store.retained_tensors()
            return fired, inflow, outflow

        fired_a, in_a, out_a = drive()
        fired_b, in_b, out_b = drive()
        assert fired_a == fired_b and len(fired_a) > 0
        assert np.array_equal(in_a, in_b)
        assert np.array_equal(out_a, out_b)


class TestIngestCrash:
    def test_failed_ingest_is_safe_to_redeliver(self):
        # The fault fires before any mutation, so an at-least-once feed
        # can replay the event without double counting.
        store = make_store("drop")
        survivor = trip(0, 2)
        store.ingest(survivor)
        victim = trip(1, 3)
        plan = FaultPlan(seed=0).on("state.ingest", at=1)
        with injected(plan):
            with pytest.raises(InjectedFault):
                store.ingest(victim)
        assert_batch_parity(store, [survivor])  # no partial application
        assert store.ingest(victim)  # redelivery applies it exactly once
        assert_batch_parity(store, [survivor, victim])


class StoreChaosMachine(RuleBasedStateMachine):
    """Interleave ingest, rollover and injected crashes; check parity.

    Reproducible: a failure prints the exact rule sequence, and
    replaying it (hypothesis seeds are derandomized under CI) fires the
    same injected faults at the same call counts.
    """

    def __init__(self):
        super().__init__()
        self.store = make_store("drop")
        self.applied: list[TripRecord] = []
        self.next_id = 0

    def _make_trip(self, slot_offset, duration_slots, origin, destination):
        start_slot = max(0, self.store.frontier + slot_offset)
        record = trip(
            self.next_id, start_slot, duration_slots, origin, destination
        )
        self.next_id += 1
        return record

    @rule(
        slot_offset=st.integers(min_value=-3, max_value=2),
        duration_slots=st.floats(min_value=-1.0, max_value=4.0),
        origin=st.integers(0, 2),
        destination=st.integers(0, 2),
    )
    def ingest(self, slot_offset, duration_slots, origin, destination):
        record = self._make_trip(slot_offset, duration_slots, origin, destination)
        if self.store.ingest(record):
            self.applied.append(record)

    @rule(gap=st.integers(min_value=1, max_value=60))
    def rollover(self, gap):
        self.store.advance_to(self.store.frontier + gap)

    @rule(
        slot_offset=st.integers(min_value=-3, max_value=2),
        duration_slots=st.floats(min_value=0.0, max_value=2.0),
    )
    def crash_then_redeliver(self, slot_offset, duration_slots):
        """An ingest dies mid-flight; the feed redelivers the event."""
        record = self._make_trip(slot_offset, duration_slots, 1, 2)
        plan = FaultPlan(seed=0).on("state.ingest", at=1)
        with injected(plan):
            with pytest.raises(InjectedFault):
                self.store.ingest(record)
        if self.store.ingest(record):
            self.applied.append(record)

    @invariant()
    def matches_batch_builder(self):
        assert_batch_parity(self.store, self.applied)


StoreChaosMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
TestStoreChaosMachine = pytest.mark.slow(StoreChaosMachine.TestCase)

"""Injected worker failures: crash, hang, raise, poison — with parity.

The resilience contract of ``core/parallel.py``: any worker failure is
recovered by the parent recomputing the lost shard with the worker's
exact arithmetic, so an injured batch is **bitwise identical** to the
batch an uninjured pool would have produced (dropout 0). These tests
inject each failure mode at a seam and assert that parity directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import STGNNDJD
from repro.core.parallel import GradientWorkerPool, fork_available
from repro.core.trainer import Trainer, TrainingConfig
from repro.faults import FaultPlan, injected
from repro.obs import default_registry, metrics_scope

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def make_trainer(dataset, workers: int, epochs: int = 2, **config_kwargs) -> Trainer:
    model = STGNNDJD.from_dataset(
        dataset, seed=3, fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0
    )
    config = TrainingConfig(
        epochs=epochs, batch_size=8, seed=5, patience=10, workers=workers,
        **config_kwargs,
    )
    return Trainer(model, dataset, config)


def run_batch(trainer: Trainer, batch, plan: FaultPlan | None = None, **pool_kwargs):
    """One pooled gradient batch (optionally under an armed plan);
    returns (loss, grads, pool) with the pool already closed."""
    trainer.optimizer.zero_grad()
    if plan is not None:
        # Arm before the fork so workers inherit the plan copy-on-write.
        with injected(plan):
            pool = GradientWorkerPool(trainer, 2, **pool_kwargs)
            loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
    else:
        pool = GradientWorkerPool(trainer, 2, **pool_kwargs)
        loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
    pool.close()
    grads = [np.array(p.grad) for p in trainer.optimizer.parameters]
    return loss, grads, pool


def assert_bitwise_parity(trainer_a: Trainer, loss_a, grads_a, loss_b, grads_b):
    assert loss_b == loss_a  # exact, not approx: recovery is bitwise
    for grad_a, grad_b in zip(grads_a, grads_b):
        np.testing.assert_array_equal(grad_b, grad_a)


@pytest.fixture
def batch(mini_dataset):
    return mini_dataset.split_indices()[0][:6]


@pytest.fixture
def uninjured(mini_dataset, batch):
    trainer = make_trainer(mini_dataset, workers=2)
    loss, grads, _ = run_batch(trainer, batch)
    return trainer, loss, grads


class TestCrash:
    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_crashed_worker_is_bitwise_recovered(
        self, mini_dataset, batch, uninjured, transport
    ):
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        loss, grads, _ = run_batch(trainer, batch, plan, transport=transport)
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)

    def test_crashed_worker_is_respawned(self, mini_dataset, batch):
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        with metrics_scope():
            registry = default_registry()
            registry.reset()
            registry.enabled = True  # reset() clears the scope's flag
            trainer.optimizer.zero_grad()
            with injected(plan):
                with GradientWorkerPool(trainer, 2) as pool:
                    first_pid = pool._procs[0].pid
                    pool.accumulate_gradients(batch, 1.0 / len(batch))
                    assert pool.active
                    assert pool._procs[0].pid != first_pid
                    assert registry.counter("parallel.worker_failures").value == 1
                    assert registry.counter("parallel.worker_respawns").value == 1
                    assert registry.counter("parallel.shards_recovered").value == 1


class TestShmSeams:
    """Failures at the shared-memory transport's own seams.

    A crash at ``shm.commit`` is the nastiest case the arena design has
    to survive: the worker has fully (or partially) written its gradient
    arena but dies before acknowledging, so the parent must discard the
    arena contents and recover the shard — never reduce unacked bytes.
    """

    def test_crash_at_commit_leaves_arena_unread(
        self, mini_dataset, batch, uninjured
    ):
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.shm.commit", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        loss, grads, _ = run_batch(trainer, batch, plan)
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)

    def test_crash_at_attach_is_recovered(self, mini_dataset, batch, uninjured):
        # The worker dies before it ever maps its views: the parent sees
        # EOF at the first receive, recovers the shard, and respawns.
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on(
            "parallel.worker1.shm.attach", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        loss, grads, _ = run_batch(trainer, batch, plan)
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)

    def test_publish_seam_fires_in_the_parent(self, mini_dataset, batch):
        from repro.faults import InjectedFault

        plan = FaultPlan(seed=0).on("parallel.shm.publish", at=1)
        trainer = make_trainer(mini_dataset, workers=2)
        trainer.optimizer.zero_grad()
        with GradientWorkerPool(trainer, 2) as pool:
            with injected(plan):
                with pytest.raises(InjectedFault):
                    pool.accumulate_gradients(batch, 1.0 / len(batch))
        assert plan.fired and plan.fired[0].site == "parallel.shm.publish"

    def test_no_segments_leak_after_chaos_death(self, mini_dataset, batch):
        import os

        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        trainer.optimizer.zero_grad()
        with injected(plan):
            pool = GradientWorkerPool(trainer, 2)
            names = list(pool.shm_segment_names)
            assert names
            pool.accumulate_gradients(batch, 1.0 / len(batch))
            # The respawned worker reattached to the same arenas.
            assert pool.shm_segment_names == names
            pool.close()
        leaked = [name for name in names if os.path.exists(f"/dev/shm/{name}")]
        assert leaked == []

    def test_mid_epoch_crash_with_schedule_matches_serial(self, mini_dataset):
        # Full fit() with the epoch-granularity schedule active: a
        # worker crash a few batches into an epoch must not disturb the
        # loss curves (the respawned worker is re-sent the schedule).
        serial = make_trainer(mini_dataset, workers=0).fit()
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=9
        )
        trainer = make_trainer(mini_dataset, workers=2)
        with injected(plan):
            injured = trainer.fit()
        # (The crash fires in the forked worker, so the parent-side
        # plan records nothing — the recovery warnings are the trace.)
        np.testing.assert_allclose(
            injured.train_loss, serial.train_loss, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            injured.val_loss, serial.val_loss, rtol=0, atol=1e-9
        )


class TestHang:
    def test_hung_worker_is_recovered_within_timeout(
        self, mini_dataset, batch, uninjured
    ):
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.task", action="hang", at=1, hang_seconds=30.0
        )
        trainer = make_trainer(mini_dataset, workers=2)
        loss, grads, pool = run_batch(trainer, batch, plan, reply_timeout=0.25)
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)


class TestRaise:
    def test_injected_exception_keeps_the_worker(
        self, mini_dataset, batch, uninjured
    ):
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on("parallel.worker0.task", at=1)
        trainer = make_trainer(mini_dataset, workers=2)
        trainer.optimizer.zero_grad()
        with injected(plan):
            with GradientWorkerPool(trainer, 2) as pool:
                pid = pool._procs[0].pid
                loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
                # The pipe stayed in sync: no respawn, same process.
                assert pool._procs[0].pid == pid
                assert pool._procs[0].is_alive()
                # And the next batch uses the worker normally.
                trainer.optimizer.zero_grad()
                loss2 = pool.accumulate_gradients(batch, 1.0 / len(batch))
        grads = [np.array(p.grad) for p in trainer.optimizer.parameters]
        assert loss == loss_a
        assert loss2 == pytest.approx(loss_a)


class TestPoison:
    def test_nan_loss_reply_is_discarded_and_recovered(
        self, mini_dataset, batch, uninjured
    ):
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.reply",
            action="call",
            at=1,
            callback=lambda payload: (float("nan"), payload[1], payload[2]),
        )
        trainer = make_trainer(mini_dataset, workers=2)
        loss, grads, _ = run_batch(trainer, batch, plan)
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)

    def test_nan_gradient_reply_is_discarded_and_recovered(
        self, mini_dataset, batch, uninjured
    ):
        trainer_a, loss_a, grads_a = uninjured

        def poison_grads(payload):
            loss_sum, grads, delta = payload
            bad = [np.full_like(g, np.nan) if g is not None else None for g in grads]
            return (loss_sum, bad, delta)

        plan = FaultPlan(seed=0).on(
            "parallel.worker1.reply", action="call", at=1, callback=poison_grads
        )
        trainer = make_trainer(mini_dataset, workers=2)
        loss, grads, _ = run_batch(trainer, batch, plan)
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)


class TestDegradedFallback:
    def test_failed_respawn_degrades_pool_but_finishes_batch(
        self, mini_dataset, batch, uninjured, monkeypatch
    ):
        trainer_a, loss_a, grads_a = uninjured
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        trainer.optimizer.zero_grad()
        with injected(plan):
            pool = GradientWorkerPool(trainer, 2)
            monkeypatch.setattr(
                pool, "_spawn_worker",
                lambda index: (_ for _ in ()).throw(OSError("fork limit")),
            )
            loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
            assert not pool.active
            pool.close()
        grads = [np.array(p.grad) for p in trainer.optimizer.parameters]
        assert_bitwise_parity(trainer_a, loss_a, grads_a, loss, grads)

    @pytest.mark.slow
    def test_fit_falls_back_to_serial_after_degradation(
        self, mini_dataset, monkeypatch
    ):
        # Initial spawns succeed; every respawn fails — the pool
        # degrades on the first crash and fit() must finish serially,
        # matching the uninjured serial run.
        serial = make_trainer(mini_dataset, workers=0).fit()

        spawns = {"count": 0}
        original = GradientWorkerPool._spawn_worker

        def flaky_spawn(self, index):
            spawns["count"] += 1
            if spawns["count"] > 2:
                raise OSError("fork limit")
            original(self, index)

        monkeypatch.setattr(GradientWorkerPool, "_spawn_worker", flaky_spawn)
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=1
        )
        trainer = make_trainer(mini_dataset, workers=2)
        with injected(plan):
            injured = trainer.fit()

        assert len(injured.train_loss) == len(serial.train_loss)
        np.testing.assert_allclose(
            injured.train_loss, serial.train_loss, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            injured.val_loss, serial.val_loss, rtol=0, atol=1e-9
        )

"""Resilience spot check for the sparse graph representation.

The recovery contracts (worker-crash bitwise recompute, snapshot +
resume bitwise continuation) are representation-agnostic claims — they
must hold when the model runs on top-k sparse edge lists exactly as they
do on dense ``(n, n)`` graphs. Genuine sparsity (``top_k < n``) is used
so the sparse kernels, not their dense degenerate case, are what gets
interrupted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import STGNNDJD
from repro.core.parallel import GradientWorkerPool, fork_available
from repro.core.trainer import Trainer, TrainingConfig
from repro.faults import FaultPlan, InjectedFault, injected

# mini_dataset has 6 stations; top_k=4 keeps the graphs genuinely sparse.
SPARSE_KWARGS = dict(
    fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0,
    graph_mode="sparse", graph_top_k=4, graph_block_rows=3,
)


def make_trainer(dataset, workers: int = 0, snapshot_path=None) -> Trainer:
    model = STGNNDJD.from_dataset(dataset, seed=3, **SPARSE_KWARGS)
    config = TrainingConfig(
        epochs=2, batch_size=8, seed=5, patience=10, workers=workers,
        snapshot_path=snapshot_path,
    )
    return Trainer(model, dataset, config)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestSparseWorkerCrash:
    def test_crashed_worker_recovers_bitwise_on_sparse_graphs(self, mini_dataset):
        batch = mini_dataset.split_indices()[0][:6]

        def run(plan=None):
            trainer = make_trainer(mini_dataset, workers=2)
            trainer.optimizer.zero_grad()
            if plan is not None:
                with injected(plan):
                    pool = GradientWorkerPool(trainer, 2)
                    loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
            else:
                pool = GradientWorkerPool(trainer, 2)
                loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
            pool.close()
            return loss, [np.array(p.grad) for p in trainer.optimizer.parameters]

        loss_a, grads_a = run()
        plan = FaultPlan(seed=0).on("parallel.worker0.sample", action="crash", at=1)
        loss_b, grads_b = run(plan)
        assert loss_b == loss_a  # exact: recovery recomputes the shard
        for grad_a, grad_b in zip(grads_a, grads_b):
            np.testing.assert_array_equal(grad_b, grad_a)


class TestSparseSnapshotResume:
    def test_interrupt_and_resume_is_bitwise_on_sparse_graphs(
        self, mini_dataset, tmp_path
    ):
        baseline = make_trainer(mini_dataset)
        base_history = baseline.fit()
        base_state = baseline.model.state_dict()

        snap = str(tmp_path / "snap.npz")
        plan = FaultPlan(seed=0).on("trainer.epoch", at=2)
        injured = make_trainer(mini_dataset, snapshot_path=snap)
        with injected(plan):
            with pytest.raises(InjectedFault):
                injured.fit()

        resumed = make_trainer(mini_dataset, snapshot_path=snap)
        history = resumed.fit()
        assert history.train_loss == base_history.train_loss  # bitwise
        assert history.val_loss == base_history.val_loss
        state = resumed.model.state_dict()
        assert state.keys() == base_state.keys()
        for name in base_state:
            np.testing.assert_array_equal(state[name], base_state[name])

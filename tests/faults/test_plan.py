"""FaultPlan semantics: scheduling, determinism, actions, arming."""

import threading

import pytest

from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    arm,
    disarm,
    fault_point,
    fault_transform,
    injected,
)


class TestDisarmed:
    def test_fault_point_is_a_noop(self):
        assert active_plan() is None
        fault_point("any.site")  # must not raise

    def test_fault_transform_passes_value_through(self):
        value = (1.0, 2.0)
        assert fault_transform("any.site", value) is value

    def test_armed_plan_does_not_leak_out_of_context(self):
        plan = FaultPlan().on("x")
        with injected(plan):
            assert active_plan() is plan
        assert active_plan() is None
        fault_point("x")  # disarmed again: no fire

    def test_injected_restores_previous_plan(self):
        outer, inner = FaultPlan(), FaultPlan()
        arm(outer)
        try:
            with injected(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        finally:
            disarm()


class TestScheduling:
    def test_fires_on_exact_call_index(self):
        plan = FaultPlan().on("site", at=3)
        with injected(plan):
            fault_point("site")
            fault_point("site")
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("site")
        assert excinfo.value.call_index == 3
        assert [f.call_index for f in plan.fired] == [3]

    def test_at_fires_once_by_default(self):
        plan = FaultPlan().on("site", at=1)
        with injected(plan):
            with pytest.raises(InjectedFault):
                fault_point("site")
            fault_point("site")  # max_fires exhausted: no second fire
        assert len(plan.fired) == 1

    def test_every_n(self):
        plan = FaultPlan().on("site", every=2, max_fires=2)
        fires = 0
        with injected(plan):
            for _ in range(8):
                try:
                    fault_point("site")
                except InjectedFault:
                    fires += 1
        assert fires == 2
        assert [f.call_index for f in plan.fired] == [2, 4]

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(seed=seed).on("site", probability=0.3, max_fires=None)
            with injected(plan):
                for _ in range(50):
                    try:
                        fault_point("site")
                    except InjectedFault:
                        pass
            return [f.call_index for f in plan.fired]

        assert run(7) == run(7)  # same seed, same firing pattern
        assert run(7) != run(8)  # and the seed actually matters

    def test_reset_replays_identically(self):
        plan = FaultPlan(seed=1).on("site", probability=0.5, max_fires=None)

        def drive():
            with injected(plan):
                for _ in range(20):
                    try:
                        fault_point("site")
                    except InjectedFault:
                        pass
            return [f.call_index for f in plan.fired]

        first = drive()
        plan.reset()
        assert drive() == first

    def test_glob_site_matching(self):
        plan = FaultPlan().on("parallel.worker*.sample", at=1, max_fires=3)
        with injected(plan):
            with pytest.raises(InjectedFault):
                fault_point("parallel.worker0.sample")
            with pytest.raises(InjectedFault):
                fault_point("parallel.worker1.sample")
            fault_point("parallel.worker1.task")  # different site: no match
        assert {f.site for f in plan.fired} == {
            "parallel.worker0.sample", "parallel.worker1.sample"
        }

    def test_unmatched_sites_still_counted(self):
        plan = FaultPlan().on("never.fires", at=99)
        with injected(plan):
            fault_point("a")
            fault_point("a")
            fault_point("b")
        assert plan.hits == {"a": 2, "b": 1}
        assert plan.fired == []

    def test_thread_safety_of_counters(self):
        plan = FaultPlan().on("hot", at=5000)  # never reached
        with injected(plan):
            def hammer():
                for _ in range(500):
                    fault_point("hot")
            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert plan.hits["hot"] == 2000


class TestActions:
    def test_custom_exception_instance(self):
        plan = FaultPlan().on("site", at=1, exception=TimeoutError("slow disk"))
        with injected(plan):
            with pytest.raises(TimeoutError, match="slow disk"):
                fault_point("site")

    def test_custom_exception_class(self):
        plan = FaultPlan().on("site", at=1, exception=ConnectionResetError)
        with injected(plan):
            with pytest.raises(ConnectionResetError):
                fault_point("site")

    def test_hang_sleeps_then_returns(self):
        plan = FaultPlan().on("site", action="hang", at=1, hang_seconds=0.01)
        with injected(plan):
            fault_point("site")  # returns after the bounded hang
        assert plan.fired[0].action == "hang"

    def test_callback_at_a_point(self):
        seen = []
        plan = FaultPlan().on("site", action="call", at=2, callback=seen.append)
        with injected(plan):
            fault_point("site")
            fault_point("site")
        assert seen == ["site"]

    def test_transform_rewrites_value(self):
        plan = FaultPlan().on(
            "clock", action="call", at=2, callback=lambda v: (v[0], v[0] - 60.0)
        )
        with injected(plan):
            assert fault_transform("clock", (10.0, 20.0)) == (10.0, 20.0)
            assert fault_transform("clock", (10.0, 20.0)) == (10.0, -50.0)

    def test_raise_rule_fires_at_a_transform_seam(self):
        plan = FaultPlan().on("clock", at=1)
        with injected(plan):
            with pytest.raises(InjectedFault):
                fault_transform("clock", (1.0, 2.0))


class TestRuleValidation:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule(site="s", action="explode")

    def test_rejects_multiple_schedules(self):
        with pytest.raises(ValueError, match="at most one"):
            FaultRule(site="s", at=(1,), every=2)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().on("s", probability=1.5)

    def test_call_requires_callback(self):
        with pytest.raises(ValueError, match="callback"):
            FaultPlan().on("s", action="call")

    def test_chainable(self):
        plan = FaultPlan().on("a", at=1).on("b", every=2)
        assert len(plan.rules) == 2

"""Chaos-suite fixtures: guarantee no plan leaks across tests."""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def disarm_faults():
    """Every chaos test starts and ends with injection disarmed."""
    faults.disarm()
    yield
    faults.disarm()

"""Injected fleet failures: replica crashes, hangs, torn shard rollovers.

The fleet contract under chaos: a crashed or hung replica never loses a
request (the router reroutes, then revives the dispatcher), and a torn
cross-shard rollover never loses an update (the next coherent read
self-heals and reassembles bitwise what a single store would hold).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import STGNNDJD
from repro.faults import FaultPlan, InjectedFault, injected
from repro.serve import (
    FleetRouter,
    FlowStateConfig,
    FlowStateStore,
    ReplicaCrash,
    ServiceConfig,
    ShardedFlowStore,
)

SLOT = 1800.0


@pytest.fixture(scope="module")
def served_model(tiny_dataset):
    return STGNNDJD.from_dataset(tiny_dataset, seed=3)


@pytest.fixture
def fleet(served_model, tiny_dataset):
    return FleetRouter.for_dataset(
        served_model, tiny_dataset, num_shards=2, num_replicas=2,
        service_config=ServiceConfig(cache=False),
    )


class TestRouteSeam:
    def test_route_fault_fails_one_request_not_the_fleet(self, fleet):
        plan = FaultPlan(seed=0).on("fleet.route", at=2)
        with fleet:
            with injected(plan):
                assert fleet.predict() is not None
                with pytest.raises(InjectedFault):
                    fleet.predict()
                assert fleet.predict() is not None
            assert fleet.running


class TestReplicaChaosZeroLoss:
    def test_crash_and_hang_lose_no_requests_and_no_updates(
        self, fleet, tiny_dataset
    ):
        """One replica crashes, the other hangs; every request is still
        answered and the sharded state stays bitwise-parity with an
        uninjected mirror store fed the same events."""
        mirror = FlowStateStore.from_dataset(tiny_dataset)
        plan = (
            FaultPlan(seed=0)
            .on("fleet.replica0.dispatch", "raise", at=1,
                exception=ReplicaCrash("injected replica crash"))
            .on("fleet.replica1.dispatch", "hang", at=2, hang_seconds=0.1)
        )
        slot_seconds = tiny_dataset.config.slot_seconds
        results: list = []
        errors: list[BaseException] = []

        def call():
            try:
                results.append(fleet.predict(timeout=10.0))
            except BaseException as error:  # noqa: BLE001 - recorded
                errors.append(error)

        with fleet, injected(plan):
            threads = [threading.Thread(target=call) for _ in range(8)]
            for thread in threads:
                thread.start()
            # Ingest rides through the same chaos window.
            for i in range(200):
                origin, destination = i % 8, (i * 3 + 1) % 8
                start = (fleet.store.frontier + (i % 3)) * slot_seconds + 1.0
                end = start + 300.0
                accepted = fleet.store.ingest_event(
                    origin, destination, start, end
                )
                assert accepted == mirror.apply_event(
                    origin, destination, start, end
                )
            for thread in threads:
                thread.join(timeout=15.0)

        assert not errors
        assert len(results) == 8
        fired_sites = {fault.site for fault in plan.fired}
        assert fired_sites == {
            "fleet.replica0.dispatch", "fleet.replica1.dispatch",
        }
        assert fleet.store.frontier == mirror.frontier
        first_f, in_f, out_f = fleet.store.retained_tensors()
        first_m, in_m, out_m = mirror.retained_tensors()
        assert first_f == first_m
        assert np.array_equal(in_f, in_m)
        assert np.array_equal(out_f, out_m)

    def test_crashed_replica_is_revived_with_its_queue_intact(self, fleet):
        plan = FaultPlan(seed=0).on(
            "fleet.replica0.dispatch", "raise", at=1,
            exception=ReplicaCrash("injected replica crash"),
        )
        with fleet:
            with injected(plan):
                fleet.predict()
            fleet.replicas[0]._dispatcher.join(timeout=5.0)
            assert not fleet.replicas[0].running
            for _ in range(4):
                assert fleet.predict() is not None
            assert fleet.replicas[0].running  # revived by dispatch


class TestTornRollover:
    def _config(self):
        return FlowStateConfig(num_stations=8, slot_seconds=SLOT,
                               short_window=4, long_days=1)

    def test_mid_advance_fault_heals_without_losing_updates(self):
        """A fault between per-shard advances tears the fleet clock;
        the next assembled read heals it and matches a single store."""
        fleet_store = ShardedFlowStore(self._config(), num_shards=2)
        mirror = FlowStateStore(self._config())
        for i in range(40):
            start = (i // 4) * SLOT + 10.0 * (i % 4)
            fleet_store.ingest_event(i % 8, (i + 5) % 8, start, start + 60.0)
            mirror.apply_event(i % 8, (i + 5) % 8, start, start + 60.0)

        # Shard 0 advances (state.rollover hit 1), shard 1 raises on
        # hit 2: the fleet advance is torn mid-loop.
        plan = FaultPlan(seed=0).on("state.rollover", at=2)
        with injected(plan):
            with pytest.raises(InjectedFault):
                fleet_store.advance_to(fleet_store.frontier + 5)
        assert not fleet_store.coherent
        assert plan.fired

        mirror.advance_to(mirror.frontier + 5)
        first_f, in_f, out_f = fleet_store.retained_tensors()  # heals
        assert fleet_store.coherent
        assert fleet_store.frontier == mirror.frontier
        first_m, in_m, out_m = mirror.retained_tensors()
        assert first_f == first_m
        assert np.array_equal(in_f, in_m)
        assert np.array_equal(out_f, out_m)

    def test_fleet_rollover_fault_fires_before_any_shard_moves(self):
        fleet_store = ShardedFlowStore(self._config(), num_shards=2)
        plan = FaultPlan(seed=0).on("fleet.rollover", at=1)
        with injected(plan):
            with pytest.raises(InjectedFault):
                fleet_store.advance_to(5)
        # The seam sits before the per-shard loop: nothing tore.
        assert fleet_store.coherent
        assert fleet_store.frontier == 0
        fleet_store.advance_to(5)
        assert fleet_store.frontier == 5

"""Shared fixtures: small synthetic datasets and deterministic RNGs.

Also registers the hypothesis settings profiles: ``dev`` (local default)
and ``ci`` (fixed deadline-free budget, ``derandomize=True`` so CI runs
are reproducible and flake-free). CI selects the ``ci`` profile through
the standard ``CI`` environment variable; individual tests may still
override ``max_examples`` inline without losing the profile's
derandomization.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.data import SyntheticCityConfig, generate_city

settings.register_profile("dev", deadline=None, max_examples=50)
settings.register_profile(
    "ci", deadline=None, max_examples=50, derandomize=True, print_blob=True
)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but fully featured city (8 stations, 10 days, hourly slots)."""
    return generate_city(SyntheticCityConfig.tiny(days=10, num_stations=8), seed=42)


@pytest.fixture(scope="session")
def mini_dataset():
    """An even smaller city for expensive (training) tests."""
    return generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=7)

"""Shared fixtures: small synthetic datasets and deterministic RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticCityConfig, generate_city


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but fully featured city (8 stations, 10 days, hourly slots)."""
    return generate_city(SyntheticCityConfig.tiny(days=10, num_stations=8), seed=42)


@pytest.fixture(scope="session")
def mini_dataset():
    """An even smaller city for expensive (training) tests."""
    return generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=7)

"""Evaluation runner over Predictor objects."""

import numpy as np
import pytest

from repro.eval import EvalResult, collect_predictions, evaluate_model


class OraclePredictor:
    """Predicts the ground truth exactly."""

    def __init__(self, dataset):
        self.dataset = dataset

    def predict(self, t):
        return self.dataset.demand[t].copy(), self.dataset.supply[t].copy()


class BiasedPredictor(OraclePredictor):
    def predict(self, t):
        demand, supply = super().predict(t)
        return demand + 1.0, supply


class TestEvaluateModel:
    def test_oracle_scores_zero(self, tiny_dataset):
        result = evaluate_model(OraclePredictor(tiny_dataset), tiny_dataset)
        assert result.rmse == 0.0
        assert result.mae == 0.0

    def test_biased_predictor_scores_expected_error(self, tiny_dataset):
        result = evaluate_model(BiasedPredictor(tiny_dataset), tiny_dataset)
        # Demand error 1 on every active entry, supply error 0 -> MAE 0.5.
        assert result.mae == pytest.approx(0.5)
        assert result.rmse == pytest.approx(np.sqrt(0.5))

    def test_defaults_to_test_split(self, tiny_dataset):
        _, _, test_idx = tiny_dataset.split_indices()
        result = evaluate_model(OraclePredictor(tiny_dataset), tiny_dataset)
        mask_count = (
            (tiny_dataset.demand[test_idx] > 0) | (tiny_dataset.supply[test_idx] > 0)
        ).sum()
        assert result.num_samples == mask_count

    def test_rush_window_restricts_indices(self, tiny_dataset):
        all_result = evaluate_model(BiasedPredictor(tiny_dataset), tiny_dataset)
        rush_result = evaluate_model(
            BiasedPredictor(tiny_dataset), tiny_dataset, window="morning"
        )
        assert rush_result.num_samples < all_result.num_samples

    def test_explicit_indices(self, tiny_dataset):
        t = tiny_dataset.min_history
        result = evaluate_model(
            OraclePredictor(tiny_dataset), tiny_dataset, indices=np.array([t])
        )
        assert result.rmse == 0.0

    def test_empty_indices_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            collect_predictions(
                OraclePredictor(tiny_dataset), tiny_dataset, np.array([])
            )

    def test_str_rendering(self):
        text = str(EvalResult(rmse=1.234, mae=0.5, num_samples=10))
        assert "1.234" in text and "0.500" in text


class TestCollectPredictions:
    def test_shapes(self, tiny_dataset):
        indices = np.arange(tiny_dataset.min_history, tiny_dataset.min_history + 5)
        dt, dp, st_, sp = collect_predictions(
            OraclePredictor(tiny_dataset), tiny_dataset, indices
        )
        n = tiny_dataset.num_stations
        assert dt.shape == dp.shape == st_.shape == sp.shape == (5, n)

    def test_truth_matches_dataset(self, tiny_dataset):
        indices = np.array([tiny_dataset.min_history])
        dt, _, st_, _ = collect_predictions(
            OraclePredictor(tiny_dataset), tiny_dataset, indices
        )
        np.testing.assert_allclose(dt[0], tiny_dataset.demand[indices[0]])

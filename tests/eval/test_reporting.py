"""Text report rendering."""


from repro.eval import EvalResult, comparison_table, series_table


def result(rmse, mae):
    return EvalResult(rmse=rmse, mae=mae, num_samples=10)


class TestComparisonTable:
    def test_contains_all_methods_and_values(self):
        rows = [
            ("HA", result(3.5, 2.1), result(3.2, 2.0)),
            ("STGNN-DJD", result(1.2, 1.0), result(1.3, 1.1)),
        ]
        paper = {"HA": (3.81, 3.09, 3.52, 3.32),
                 "STGNN-DJD": (1.18, 1.10, 1.33, 1.21)}
        text = comparison_table("Table I", rows, paper)
        assert "Table I" in text
        assert "HA" in text and "STGNN-DJD" in text
        assert "3.500" in text and "3.81" in text
        assert "1.200" in text and "1.18" in text

    def test_missing_paper_entry_renders_nan(self):
        rows = [("Custom", result(1.0, 1.0), result(1.0, 1.0))]
        text = comparison_table("T", rows, {})
        assert "nan" in text

    def test_custom_city_labels(self):
        rows = [("HA", result(1.0, 1.0), result(1.0, 1.0))]
        text = comparison_table("T", rows, {}, city_labels=("NYC", "SF"))
        assert "NYC RMSE" in text and "SF MAE" in text


class TestSeriesTable:
    def test_columns_per_x(self):
        text = series_table(
            "Fig", "m", [1, 2, 3],
            {"Chicago": [1.5, 1.3, 1.2]},
            {"Chicago": [1.75, 1.45, 1.30]},
        )
        assert "Fig" in text
        assert "1.500" in text and "1.75" in text
        assert "Chicago (paper)" in text

    def test_paper_optional(self):
        text = series_table("Fig", "x", [1], {"a": [2.0]})
        assert "(paper)" not in text

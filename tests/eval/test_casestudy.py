"""Case-study tooling (Sec. VIII heatmaps)."""

import numpy as np
import pytest

from repro.core import STGNNDJD
from repro.eval import (
    locality_dependency_heatmap,
    model_dependency_heatmap,
    render_heatmap,
    rush_window_times,
)


@pytest.fixture(scope="module")
def model(tiny_dataset):
    return STGNNDJD.from_dataset(tiny_dataset, seed=0)


def window(dataset):
    day = dataset.num_days - 1
    return rush_window_times(dataset, day, 7.0, 10.0)


class TestRushWindowTimes:
    def test_hourly_morning_window(self, tiny_dataset):
        times = window(tiny_dataset)
        assert len(times) == 3  # 3 hourly slots in 07:00-10:00
        spd = tiny_dataset.slots_per_day
        assert (times // spd == tiny_dataset.num_days - 1).all()

    def test_slot_of_day(self, tiny_dataset):
        times = rush_window_times(tiny_dataset, 5, 15.0, 18.0)
        spd = tiny_dataset.slots_per_day
        np.testing.assert_array_equal(times % spd, [15, 16, 17])


class TestModelHeatmap:
    def test_shape(self, model, tiny_dataset):
        heatmap = model_dependency_heatmap(
            model, tiny_dataset, target_station=0,
            times=window(tiny_dataset), neighbors=5,
        )
        assert heatmap.values.shape == (3, 5)
        assert len(heatmap.neighbor_ids) == 5

    def test_neighbors_ordered_by_distance(self, model, tiny_dataset):
        heatmap = model_dependency_heatmap(
            model, tiny_dataset, 0, window(tiny_dataset), neighbors=5
        )
        d = tiny_dataset.registry.distance_matrix()[0]
        distances = [d[i] for i in heatmap.neighbor_ids]
        assert distances == sorted(distances)

    def test_directions_differ(self, model, tiny_dataset):
        times = window(tiny_dataset)
        from_t = model_dependency_heatmap(model, tiny_dataset, 0, times,
                                          direction="from_target")
        to_t = model_dependency_heatmap(model, tiny_dataset, 0, times,
                                        direction="to_target")
        assert not np.allclose(from_t.values, to_t.values)

    def test_invalid_direction(self, model, tiny_dataset):
        with pytest.raises(ValueError):
            model_dependency_heatmap(model, tiny_dataset, 0, window(tiny_dataset),
                                     direction="sideways")

    def test_values_vary_over_time(self, model, tiny_dataset):
        """The learned dependency is dynamic (paper's first case-study
        observation): columns must not be constant."""
        heatmap = model_dependency_heatmap(model, tiny_dataset, 0, window(tiny_dataset))
        assert heatmap.values.std(axis=0).max() > 0


class TestLocalityHeatmap:
    def test_time_invariant(self, tiny_dataset):
        heatmap = locality_dependency_heatmap(
            tiny_dataset, 0, window(tiny_dataset), neighbors=5
        )
        assert np.allclose(heatmap.values, heatmap.values[0])

    def test_monotone_distance_decay(self, tiny_dataset):
        heatmap = locality_dependency_heatmap(
            tiny_dataset, 0, window(tiny_dataset), neighbors=5
        )
        row = heatmap.values[0]
        assert (np.diff(row) <= 1e-12).all()

    def test_strong_negative_monotonicity_score(self, tiny_dataset):
        heatmap = locality_dependency_heatmap(
            tiny_dataset, 0, window(tiny_dataset), neighbors=6
        )
        assert heatmap.column_monotonicity() < -0.5

    def test_rows_normalised(self, tiny_dataset):
        heatmap = locality_dependency_heatmap(tiny_dataset, 0, window(tiny_dataset))
        np.testing.assert_allclose(heatmap.values.sum(axis=1), 1.0)


class TestRenderHeatmap:
    def test_renders_all_rows(self, tiny_dataset):
        heatmap = locality_dependency_heatmap(
            tiny_dataset, 0, window(tiny_dataset), neighbors=4
        )
        text = render_heatmap(heatmap)
        # Header + separator + title + one line per time slot.
        assert len(text.splitlines()) == 3 + len(heatmap.times)

    def test_constant_heatmap_renders_without_dividing_by_zero(self, tiny_dataset):
        heatmap = locality_dependency_heatmap(tiny_dataset, 0, window(tiny_dataset))
        flat = heatmap.values * 0.0 + 0.5
        constant = type(heatmap)(
            target_station=0, neighbor_ids=heatmap.neighbor_ids,
            times=heatmap.times, values=flat, direction="from_target",
        )
        assert render_heatmap(constant)

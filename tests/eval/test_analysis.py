"""Dataset analysis utilities."""

import numpy as np
import pytest

from repro.eval import (
    busiest_hours,
    daily_profile,
    imbalance_by_slot,
    od_concentration,
    od_matrix,
    station_summaries,
)


class TestStationSummaries:
    def test_sorted_by_total_demand(self, tiny_dataset):
        summaries = station_summaries(tiny_dataset)
        demands = [s.total_demand for s in summaries]
        assert demands == sorted(demands, reverse=True)

    def test_totals_match_dataset(self, tiny_dataset):
        summaries = station_summaries(tiny_dataset)
        assert sum(s.total_demand for s in summaries) == pytest.approx(
            tiny_dataset.demand.sum()
        )
        assert sum(s.total_supply for s in summaries) == pytest.approx(
            tiny_dataset.supply.sum()
        )

    def test_net_outflow_consistency(self, tiny_dataset):
        for summary in station_summaries(tiny_dataset):
            assert summary.net_outflow == pytest.approx(
                summary.total_demand - summary.total_supply
            )

    def test_peak_slot_in_range(self, tiny_dataset):
        for summary in station_summaries(tiny_dataset):
            assert 0 <= summary.peak_demand_slot < tiny_dataset.slots_per_day


class TestProfiles:
    def test_daily_profile_shape_and_mean(self, tiny_dataset):
        profile = daily_profile(tiny_dataset)
        assert profile.shape == (tiny_dataset.slots_per_day, tiny_dataset.num_stations)
        np.testing.assert_allclose(
            profile.mean(), tiny_dataset.demand.mean(), rtol=1e-12
        )

    def test_busiest_hours_are_peaks(self, tiny_dataset):
        top = busiest_hours(tiny_dataset, count=2)
        citywide = daily_profile(tiny_dataset).sum(axis=1)
        assert citywide[top[0]] == citywide.max()
        assert len(top) == 2

    def test_busiest_hours_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            busiest_hours(tiny_dataset, count=0)

    def test_commuter_city_peaks_at_rush(self, tiny_dataset):
        """The generator's commuter structure: peaks near 8-9 or 17-18."""
        top = set(busiest_hours(tiny_dataset, count=4))
        rush = set(range(7, 11)) | set(range(16, 20))
        assert top & rush


class TestODAnalysis:
    def test_od_matrix_total(self, tiny_dataset):
        assert od_matrix(tiny_dataset).sum() == pytest.approx(
            tiny_dataset.demand.sum()
        )

    def test_concentration_bounds(self, tiny_dataset):
        share = od_concentration(tiny_dataset, top_fraction=0.1)
        assert 0.0 < share <= 1.0
        # Top 10% of pairs must carry more than 10% of trips (heavy tail).
        assert share > 0.1

    def test_concentration_full_fraction_is_one(self, tiny_dataset):
        assert od_concentration(tiny_dataset, top_fraction=1.0) == pytest.approx(1.0)

    def test_concentration_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            od_concentration(tiny_dataset, top_fraction=0.0)


class TestImbalance:
    def test_shape(self, tiny_dataset):
        net = imbalance_by_slot(tiny_dataset)
        assert net.shape == (tiny_dataset.slots_per_day, tiny_dataset.num_stations)

    def test_sums_to_net_flow(self, tiny_dataset):
        net = imbalance_by_slot(tiny_dataset)
        expected = (tiny_dataset.demand - tiny_dataset.supply).mean(axis=0).sum()
        assert net.mean(axis=0).sum() * 1 == pytest.approx(
            (tiny_dataset.demand - tiny_dataset.supply).reshape(
                tiny_dataset.num_days, tiny_dataset.slots_per_day, -1
            ).mean(axis=0).mean(axis=0).sum()
        )

"""Metrics: RMSE/MAE exactly per Eqs. 22-23, masks, rush windows."""

import numpy as np
import pytest

from repro.eval import active_station_mask, mae, rmse, rush_hour_mask, rush_hour_slots


class TestRMSE:
    def test_hand_computed(self):
        # demand errors: [1, 0]; supply errors: [0, 2]. 2n = 4.
        value = rmse(
            np.array([1.0, 2.0]), np.array([2.0, 2.0]),
            np.array([3.0, 1.0]), np.array([3.0, 3.0]),
        )
        assert value == pytest.approx(np.sqrt((1 + 4) / 4))

    def test_zero_for_perfect(self):
        a = np.array([1.0, 2.0])
        assert rmse(a, a, a, a) == 0.0

    def test_mask_excludes_entries(self):
        demand_true = np.array([0.0, 5.0])
        demand_pred = np.array([100.0, 5.0])  # huge error on masked entry
        supply = np.array([1.0, 1.0])
        mask = np.array([False, True])
        assert rmse(demand_true, demand_pred, supply, supply, mask) == 0.0

    def test_empty_mask_gives_nan(self):
        a = np.array([1.0])
        out = rmse(a, a, a, a, np.array([False]))
        assert np.isnan(out)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2))

    def test_mask_shape_mismatch_rejected(self):
        a = np.zeros(2)
        with pytest.raises(ValueError):
            rmse(a, a, a, a, np.array([True]))


class TestMAE:
    def test_hand_computed(self):
        value = mae(
            np.array([1.0, 2.0]), np.array([3.0, 2.0]),
            np.array([0.0, 0.0]), np.array([1.0, 0.0]),
        )
        assert value == pytest.approx((2 + 1) / 4)

    def test_uses_absolute_errors(self):
        """Opposite-sign errors must NOT cancel (the Eq. 23 typo fix)."""
        value = mae(
            np.array([0.0, 0.0]), np.array([1.0, -1.0]),
            np.array([0.0, 0.0]), np.array([0.0, 0.0]),
        )
        assert value == pytest.approx(0.5)

    def test_mae_le_rmse(self, rng):
        dt, dp = rng.random(50), rng.random(50)
        st_, sp = rng.random(50), rng.random(50)
        assert mae(dt, dp, st_, sp) <= rmse(dt, dp, st_, sp) + 1e-12


class TestActiveStationMask:
    def test_rule(self):
        demand = np.array([[0.0, 1.0, 0.0]])
        supply = np.array([[0.0, 0.0, 2.0]])
        mask = active_station_mask(demand, supply)
        np.testing.assert_array_equal(mask, [[False, True, True]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            active_station_mask(np.zeros((2, 2)), np.zeros((3, 2)))


class TestRushHours:
    def test_morning_window_96_slots(self):
        slots = rush_hour_slots(96, "morning")
        # 07:00-10:00 at 15-minute slots = 12 slots, indices 28..39.
        assert len(slots) == 12
        assert slots[0] == 28
        assert slots[-1] == 39

    def test_evening_window_96_slots(self):
        slots = rush_hour_slots(96, "evening")
        assert len(slots) == 12
        assert slots[0] == 68

    def test_hourly_slots(self):
        slots = rush_hour_slots(24, "morning")
        np.testing.assert_array_equal(slots, [7, 8, 9])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rush_hour_slots(96, "midnight")

    def test_mask_over_absolute_times(self):
        times = np.array([7, 31, 24 + 8])  # spd=24: slots 7, 7 (next day?), 8
        mask = rush_hour_mask(times, 24, "morning")
        np.testing.assert_array_equal(mask, [True, True, True])

    def test_mask_excludes_off_peak(self):
        mask = rush_hour_mask(np.array([0, 12, 23]), 24, "morning")
        assert not mask.any()

"""Multi-seed aggregation."""

import pytest

from repro.eval import EvalResult, evaluate_over_seeds


def fake_run(seed: int) -> EvalResult:
    return EvalResult(rmse=1.0 + 0.1 * seed, mae=0.5 + 0.05 * seed, num_samples=10)


class TestEvaluateOverSeeds:
    def test_mean_and_std(self):
        sweep = evaluate_over_seeds(fake_run, [0, 1, 2])
        assert sweep.rmse_mean == pytest.approx(1.1)
        assert sweep.rmse_std == pytest.approx(0.1 * (2 / 3) ** 0.5)
        assert sweep.mae_mean == pytest.approx(0.55)
        assert len(sweep.per_seed) == 3

    def test_single_seed_zero_std(self):
        sweep = evaluate_over_seeds(fake_run, [4])
        assert sweep.rmse_std == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            evaluate_over_seeds(fake_run, [])

    def test_str_format(self):
        text = str(evaluate_over_seeds(fake_run, [0, 1]))
        assert "±" in text and "2 seeds" in text

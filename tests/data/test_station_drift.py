"""Per-station popularity drift (the dynamic-dependency data knob)."""

import dataclasses

import numpy as np
import pytest

from repro.data import SyntheticCityConfig, build_city, intensity_tensor


def config(**kwargs):
    base = SyntheticCityConfig.tiny(days=10, num_stations=8)
    return dataclasses.replace(
        base, day_factor_sigma=0.0, slot_factor_sigma=0.0, **kwargs
    )


class TestStationDrift:
    def test_disabled_by_default(self):
        city = build_city(config(), seed=0)
        np.testing.assert_allclose(city.station_day_factors, 1.0)

    def test_shape(self):
        city = build_city(config(station_drift_sigma=0.4), seed=0)
        assert city.station_day_factors.shape == (10, 8)

    def test_factors_positive_and_near_unit_mean(self):
        city = build_city(config(station_drift_sigma=0.4), seed=0)
        factors = city.station_day_factors
        assert (factors > 0).all()
        assert factors.mean() == pytest.approx(1.0, abs=0.3)

    def test_stations_drift_independently(self):
        city = build_city(config(station_drift_sigma=0.4), seed=0)
        factors = city.station_day_factors
        # Two stations' day series should differ.
        assert not np.allclose(factors[:, 0], factors[:, 1])

    def test_autocorrelation_across_days(self):
        city = build_city(config(station_drift_sigma=0.5, station_drift_rho=0.9),
                          seed=1)
        logs = np.log(city.station_day_factors)
        lagged = np.corrcoef(logs[:-1].ravel(), logs[1:].ravel())[0, 1]
        assert lagged > 0.5  # strong day-to-day persistence

    def test_drift_modulates_intensity_rows_and_columns(self):
        drifted = build_city(config(station_drift_sigma=0.6), seed=2)
        flat = build_city(config(), seed=2)
        lam_d = intensity_tensor(drifted)
        lam_f = intensity_tensor(flat)
        spd = drifted.config.slots_per_day
        # Ratio between days should vary per station under drift.
        day0 = lam_d[:spd].sum(axis=(0, 2)) / np.maximum(lam_f[:spd].sum(axis=(0, 2)), 1e-12)
        day3 = (lam_d[3 * spd : 4 * spd].sum(axis=(0, 2))
                / np.maximum(lam_f[3 * spd : 4 * spd].sum(axis=(0, 2)), 1e-12))
        assert not np.allclose(day0, day3)

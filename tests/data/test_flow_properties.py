"""Property-based tests of flow bookkeeping invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.data import TripRecord, build_flow_tensors, demand_supply

SLOT = 900.0
SLOTS = 8


@st.composite
def trips(draw):
    count = draw(st.integers(1, 30))
    n = draw(st.integers(2, 6))
    records = []
    for trip_id in range(count):
        origin = draw(st.integers(0, n - 1))
        destination = draw(st.integers(0, n - 1))
        start = draw(st.floats(0.0, SLOTS * SLOT - 1.0, allow_nan=False))
        duration = draw(st.floats(60.0, 3 * SLOT, allow_nan=False))
        records.append(TripRecord(trip_id, origin, destination, start, start + duration))
    return records, n


class TestFlowInvariants:
    @given(trips())
    @settings(max_examples=50, deadline=None)
    def test_every_trip_counted_once_in_outflow(self, data):
        records, n = data
        inflow, outflow = build_flow_tensors(records, n, SLOTS, SLOT)
        assert outflow.sum() == len(records)

    @given(trips())
    @settings(max_examples=50, deadline=None)
    def test_inflow_never_exceeds_outflow(self, data):
        """Bikes can still be in transit at the horizon, never the reverse."""
        records, n = data
        inflow, outflow = build_flow_tensors(records, n, SLOTS, SLOT)
        assert inflow.sum() <= outflow.sum()

    @given(trips())
    @settings(max_examples=50, deadline=None)
    def test_pairwise_conservation(self, data):
        """Per (origin, destination): completed arrivals <= departures."""
        records, n = data
        inflow, outflow = build_flow_tensors(records, n, SLOTS, SLOT)
        departures = outflow.sum(axis=0)  # (origin, dest)
        arrivals = inflow.sum(axis=0).T  # inflow[dest, origin] -> (origin, dest)
        assert (arrivals <= departures + 1e-9).all()

    @given(trips())
    @settings(max_examples=50, deadline=None)
    def test_demand_supply_totals(self, data):
        records, n = data
        inflow, outflow = build_flow_tensors(records, n, SLOTS, SLOT)
        demand, supply = demand_supply(inflow, outflow)
        assert demand.sum() == outflow.sum()
        assert supply.sum() == inflow.sum()
        assert (demand >= 0).all() and (supply >= 0).all()

"""The synthetic city generator: does it produce the structure the
paper's model exploits (rush hours, periodicity, school twins, dirt)?"""

import numpy as np
import pytest

from repro.data import (
    HOME,
    SCHOOL,
    WORK,
    SyntheticCityConfig,
    build_city,
    clean_trips,
    generate_city,
    generate_trips,
    intensity_tensor,
)


import dataclasses


def quiet(config):
    """Disable the stochastic citywide shocks for determinism checks."""
    return dataclasses.replace(config, day_factor_sigma=0.0, slot_factor_sigma=0.0)


@pytest.fixture(scope="module")
def city():
    return build_city(quiet(SyntheticCityConfig.tiny(days=8, num_stations=10)), seed=5)


class TestConfig:
    def test_presets_build(self):
        assert SyntheticCityConfig.chicago_like().num_stations == 40
        assert SyntheticCityConfig.la_like().num_stations == 16

    def test_chicago_denser_than_la(self):
        chicago = SyntheticCityConfig.chicago_like()
        la = SyntheticCityConfig.la_like()
        assert chicago.trips_per_day / chicago.num_stations > (
            la.trips_per_day / la.num_stations
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCityConfig(num_stations=2)
        with pytest.raises(ValueError):
            SyntheticCityConfig(days=1)
        with pytest.raises(ValueError):
            SyntheticCityConfig(dirty_fraction=1.0)
        with pytest.raises(ValueError):
            SyntheticCityConfig(num_stations=8, school_pairs=3)


class TestChicago571Preset:
    def test_paper_scale_dimensions(self):
        config = SyntheticCityConfig.chicago_571()
        assert config.num_stations == 571  # Divvy's station count (Sec. VII-A)
        assert config.trips_per_day == pytest.approx(30.0 * 571)
        assert config.slots_per_day == 48  # 30-minute slots, as the paper

    def test_trip_density_matches_real_divvy(self):
        # 3.15M trips / 184 days / 571 stations ~= 30 trips/station/day:
        # the preset is paper-scale in *per-station* volume, not a
        # scaled-up toy city.
        config = SyntheticCityConfig.chicago_571()
        per_station_day = config.trips_per_day / config.num_stations
        assert per_station_day == pytest.approx(30.0)

    def test_city_builds_without_full_intensity_tensor(self):
        # build_city is O(n^2 * spd) for the base surfaces, fine; the
        # point is it must not need the (days*spd, n, n) tensor.
        city = build_city(SyntheticCityConfig.chicago_571(days=2), seed=0)
        assert len(city.registry) == 571


class TestDayChunkedGeneration:
    """The chunked sampling path must replay the one-shot RNG stream."""

    def test_day_intensity_blocks_tile_the_full_tensor(self, city):
        from repro.data.synthetic import _base_day_intensities, day_intensity

        lam = intensity_tensor(city)
        spd = city.config.slots_per_day
        weekday, weekend = _base_day_intensities(city)
        for day in range(city.config.days):
            np.testing.assert_array_equal(
                day_intensity(city, day, weekday, weekend),
                lam[day * spd : (day + 1) * spd],
            )

    def test_chunked_poisson_replays_full_draw(self, city):
        from repro.data.synthetic import _base_day_intensities, day_intensity

        lam = intensity_tensor(city)
        full = np.random.default_rng(99).poisson(lam)
        rng = np.random.default_rng(99)
        weekday, weekend = _base_day_intensities(city)
        spd = city.config.slots_per_day
        for day in range(city.config.days):
            chunk = rng.poisson(day_intensity(city, day, weekday, weekend))
            np.testing.assert_array_equal(
                chunk, full[day * spd : (day + 1) * spd], err_msg=f"day {day}"
            )


class TestCityStructure:
    def test_station_types_assigned(self, city):
        types = set(city.station_types.tolist())
        assert types == {HOME, WORK, SCHOOL}

    def test_school_pairs_are_distant(self, city):
        distances = city.registry.distance_matrix()
        radius = city.config.city_radius_km
        for a, b in city.school_pair_ids:
            assert distances[a, b] > radius  # placed on opposite edges

    def test_affinity_no_self_loops(self, city):
        np.testing.assert_allclose(np.diag(city.base_affinity), 0.0)

    def test_affinity_nonnegative(self, city):
        assert (city.base_affinity >= 0).all()


class TestIntensity:
    def test_weekday_total_matches_config(self, city):
        lam = intensity_tensor(city)
        spd = city.config.slots_per_day
        day0 = lam[:spd].sum()  # day 0 is a weekday
        assert day0 == pytest.approx(city.config.trips_per_day, rel=1e-9)

    def test_weekend_scaled_down(self, city):
        lam = intensity_tensor(city)
        spd = city.config.slots_per_day
        weekday = lam[:spd].sum()
        weekend = lam[5 * spd : 6 * spd].sum()
        assert weekend == pytest.approx(
            weekday * city.config.weekend_factor, rel=1e-9
        )

    def test_morning_rush_home_to_work(self, city):
        """Home->work intensity at 08:00-09:00 exceeds that at 03:00."""
        lam = intensity_tensor(city)
        spd = city.config.slots_per_day
        home = np.nonzero(city.station_types == HOME)[0]
        work = np.nonzero(city.station_types == WORK)[0]
        hour = spd // 24
        morning = lam[8 * hour][np.ix_(home, work)].sum()
        night = lam[3 * hour][np.ix_(home, work)].sum()
        assert morning > 5 * night

    def test_evening_rush_work_to_home(self, city):
        lam = intensity_tensor(city)
        spd = city.config.slots_per_day
        home = np.nonzero(city.station_types == HOME)[0]
        work = np.nonzero(city.station_types == WORK)[0]
        hour = spd // 24
        evening = lam[17 * hour][np.ix_(work, home)].sum()
        morning = lam[8 * hour][np.ix_(work, home)].sum()
        assert evening > morning

    def test_daily_periodicity(self, city):
        """Weekday intensity repeats exactly across weekdays."""
        lam = intensity_tensor(city)
        spd = city.config.slots_per_day
        np.testing.assert_allclose(lam[:spd], lam[spd : 2 * spd])


class TestCitywideFactors:
    def test_mean_near_one(self):
        config = SyntheticCityConfig.tiny(days=10, num_stations=8)
        city = build_city(config, seed=3)
        assert city.slot_factors.mean() == pytest.approx(1.0, abs=0.35)
        assert (city.slot_factors > 0).all()

    def test_shocks_vary_across_days(self):
        config = SyntheticCityConfig.tiny(days=10, num_stations=8)
        city = build_city(config, seed=3)
        spd = config.slots_per_day
        day_means = city.slot_factors.reshape(config.days, spd).mean(axis=1)
        assert day_means.std() > 0.01  # day-to-day variability exists

    def test_zero_sigma_gives_constant_one(self):
        config = quiet(SyntheticCityConfig.tiny(days=6, num_stations=8))
        city = build_city(config, seed=3)
        np.testing.assert_allclose(city.slot_factors, 1.0)

    def test_shocks_modulate_intensity(self):
        noisy = build_city(SyntheticCityConfig.tiny(days=6, num_stations=8), seed=9)
        lam = intensity_tensor(noisy)
        spd = noisy.config.slots_per_day
        # Two weekdays now differ because of the shocks.
        assert not np.allclose(lam[:spd], lam[spd : 2 * spd])


class TestTripGeneration:
    def test_deterministic(self):
        config = SyntheticCityConfig.tiny(days=4, num_stations=6)
        city = build_city(config, seed=1)
        t1 = generate_trips(city, seed=2)
        t2 = generate_trips(city, seed=2)
        assert len(t1) == len(t2)
        assert t1[0] == t2[0]

    def test_trip_count_near_expectation(self):
        config = quiet(SyntheticCityConfig.tiny(days=7, num_stations=8))
        city = build_city(config, seed=1)
        trips = generate_trips(city, seed=2)
        # 5 weekdays + 2 weekend days at weekend_factor.
        expected = config.trips_per_day * (5 + 2 * config.weekend_factor)
        assert len(trips) == pytest.approx(expected, rel=0.15)

    def test_durations_positive(self):
        config = SyntheticCityConfig.tiny(days=3, num_stations=6)
        trips = generate_trips(build_city(config, seed=0), seed=0)
        assert all(t.duration >= 120.0 for t in trips)

    def test_dirty_fraction_injected_and_cleaned(self):
        config = SyntheticCityConfig(
            name="dirty", num_stations=8, days=4, trips_per_day=300,
            slot_seconds=3600.0, short_window=24, long_days=1,
            dirty_fraction=0.1,
        )
        trips = generate_trips(build_city(config, seed=0), seed=0)
        clean, report = clean_trips(trips, config.num_stations)
        assert report.dropped > 0
        assert report.dropped / report.total == pytest.approx(0.1, abs=0.03)


class TestGenerateCity:
    def test_end_to_end(self):
        ds = generate_city(SyntheticCityConfig.tiny(days=6, num_stations=6), seed=9)
        assert ds.num_days == 6
        assert ds.demand.sum() > 0
        # Pipeline invariant: completed trips conserve demand >= supply
        # (in-transit bikes at the horizon are demand-only).
        assert ds.demand.sum() >= ds.supply.sum()

    def test_school_twins_pattern_correlated(self):
        """Demand series of a school pair correlates more than the city
        median pair — the structure the PCG exists to exploit."""
        config = SyntheticCityConfig.tiny(days=10, num_stations=12)
        city = build_city(config, seed=4)
        ds = generate_city(config, seed=4)
        a, b = city.school_pair_ids[0]
        demand = ds.demand
        def corr(i, j):
            x, y = demand[:, i], demand[:, j]
            if x.std() == 0 or y.std() == 0:
                return 0.0
            return float(np.corrcoef(x, y)[0, 1])
        school_corr = corr(a, b)
        n = config.num_stations
        all_corrs = [corr(i, j) for i in range(n) for j in range(i + 1, n)]
        assert school_corr > np.median(all_corrs)

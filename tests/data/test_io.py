"""CSV round-trips for trips and stations."""

import numpy as np
import pytest

from repro.data import (
    Station,
    StationRegistry,
    TripRecord,
    read_stations_csv,
    read_trips_csv,
    write_stations_csv,
    write_trips_csv,
)


class TestTripsCSV:
    def test_roundtrip(self, tmp_path):
        trips = [
            TripRecord(0, 1, 2, 100.0, 400.0),
            TripRecord(1, 2, 0, 500.5, 900.25),
        ]
        path = tmp_path / "trips.csv"
        write_trips_csv(trips, path)
        assert read_trips_csv(path) == trips

    def test_blank_station_becomes_unknown(self, tmp_path):
        path = tmp_path / "trips.csv"
        path.write_text(
            "trip_id,start_time,end_time,origin,destination\n"
            "0,10.0,20.0,,2\n"
            "1,10.0,20.0,abc,2\n"
        )
        trips = read_trips_csv(path)
        assert trips[0].origin == -1
        assert trips[1].origin == -1

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "trips.csv"
        path.write_text("trip_id,start_time\n0,1.0\n")
        with pytest.raises(ValueError):
            read_trips_csv(path)


class TestStationsCSV:
    def test_roundtrip(self, tmp_path):
        registry = StationRegistry(
            [Station(0, -87.6, 41.9, "a"), Station(1, -87.7, 41.8, "b")]
        )
        path = tmp_path / "stations.csv"
        write_stations_csv(registry, path)
        loaded = read_stations_csv(path)
        assert len(loaded) == 2
        assert loaded[1].name == "b"
        np.testing.assert_allclose(loaded.longitudes, registry.longitudes)

    def test_remaps_noncontiguous_ids(self, tmp_path):
        path = tmp_path / "stations.csv"
        path.write_text(
            "station_id,longitude,latitude,name\n"
            "55,1.0,2.0,x\n"
            "7,3.0,4.0,y\n"
        )
        loaded = read_stations_csv(path)
        assert loaded[0].name == "y"  # original id 7 -> index 0
        assert loaded[1].name == "x"

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "stations.csv"
        path.write_text("station_id,longitude\n0,1.0\n")
        with pytest.raises(ValueError):
            read_stations_csv(path)

"""BikeShareDataset: windows, splits, normalizers, sampling."""

import numpy as np
import pytest

from repro.data import (
    BikeShareDataset,
    FlowDataConfig,
    Station,
    StationRegistry,
)


def make_dataset(days=6, n=3, spd=4, seed=0):
    """Dense random dataset with slot_seconds = 86400/spd."""
    rng = np.random.default_rng(seed)
    slots = days * spd
    inflow = rng.poisson(2.0, size=(slots, n, n)).astype(float)
    outflow = rng.poisson(2.0, size=(slots, n, n)).astype(float)
    registry = StationRegistry([Station(i, 0.01 * i, 0.0) for i in range(n)])
    config = FlowDataConfig(
        slot_seconds=86400.0 / spd, short_window=spd, long_days=2
    )
    return BikeShareDataset(registry, inflow, outflow, config, name="unit")


class TestFlowDataConfig:
    def test_slots_per_day(self):
        assert FlowDataConfig(slot_seconds=900.0).slots_per_day == 96

    def test_rejects_uneven_slot(self):
        with pytest.raises(ValueError):
            FlowDataConfig(slot_seconds=1000.0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            FlowDataConfig(train_fraction=0.9, val_fraction=0.2)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            FlowDataConfig(short_window=0)
        with pytest.raises(ValueError):
            FlowDataConfig(long_days=0)


class TestDatasetConstruction:
    def test_dimensions(self):
        ds = make_dataset(days=6, n=3, spd=4)
        assert ds.num_stations == 3
        assert ds.num_days == 6
        assert ds.num_slots == 24

    def test_rejects_partial_days(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            BikeShareDataset(
                ds.registry, ds.inflow[:-1], ds.outflow[:-1], ds.config
            )

    def test_rejects_station_mismatch(self):
        ds = make_dataset(n=3)
        small_registry = StationRegistry([Station(0, 0, 0), Station(1, 0.1, 0)])
        with pytest.raises(ValueError):
            BikeShareDataset(small_registry, ds.inflow, ds.outflow, ds.config)

    def test_demand_supply_derived(self):
        ds = make_dataset()
        np.testing.assert_allclose(ds.demand, ds.outflow.sum(axis=2))
        np.testing.assert_allclose(ds.supply, ds.inflow.sum(axis=2))


class TestSplits:
    def test_day_aligned_disjoint_ordered(self):
        ds = make_dataset(days=10)
        train, val, test = ds.split_indices()
        assert set(train).isdisjoint(val)
        assert set(val).isdisjoint(test)
        assert train.max() < val.min() < test.max()

    def test_min_history_excluded(self):
        ds = make_dataset(days=10)
        train, _, _ = ds.split_indices()
        assert train.min() >= ds.min_history

    def test_split_covers_remaining_slots(self):
        ds = make_dataset(days=10)
        train, val, test = ds.split_indices()
        assert len(train) + len(val) + len(test) == ds.num_slots - ds.min_history

    def test_too_few_days_rejected(self):
        ds = make_dataset(days=2)
        with pytest.raises(ValueError):
            ds.split_indices()


class TestSampling:
    def test_sample_shapes(self):
        ds = make_dataset(days=6, n=3, spd=4)
        sample = ds.sample(ds.min_history)
        assert sample.short_inflow.shape == (4, 3, 3)
        assert sample.long_inflow.shape == (2, 3, 3)
        assert sample.target_demand.shape == (3,)

    def test_short_window_is_immediately_preceding(self):
        ds = make_dataset()
        t = ds.min_history + 1
        sample = ds.sample(t)
        np.testing.assert_allclose(sample.short_inflow, ds.inflow[t - 4 : t])

    def test_long_window_is_same_slot_of_previous_days(self):
        ds = make_dataset()
        t = ds.min_history + 2
        sample = ds.sample(t)
        spd = ds.slots_per_day
        np.testing.assert_allclose(sample.long_inflow[-1], ds.inflow[t - spd])
        np.testing.assert_allclose(sample.long_inflow[0], ds.inflow[t - 2 * spd])

    def test_targets_match_dataset(self):
        ds = make_dataset()
        t = ds.min_history
        sample = ds.sample(t)
        np.testing.assert_allclose(sample.target_demand, ds.demand[t])
        np.testing.assert_allclose(sample.target_supply, ds.supply[t])

    def test_out_of_range_rejected(self):
        ds = make_dataset()
        with pytest.raises(IndexError):
            ds.sample(0)
        with pytest.raises(IndexError):
            ds.sample(ds.num_slots)

    def test_slot_of_day(self):
        ds = make_dataset(spd=4)
        assert ds.slot_of_day(5) == 1


class TestWindowCache:
    """The stride-view window cache must equal freshly stacked windows.

    The seed built every window with fancy indexing per ``sample()``
    call; the cache replaces that with zero-copy views plus memoised
    ``FlowSample`` bundles. These are the regression tests for that
    substitution: for *every* valid ``t`` the cached arrays must be
    elementwise identical to the original construction.
    """

    def test_cache_matches_fresh_stacks_for_all_valid_t(self):
        ds = make_dataset(days=7, n=4, spd=6, seed=3)
        k = ds.config.short_window
        d = ds.config.long_days
        spd = ds.slots_per_day
        for t in range(ds.min_history, ds.num_slots):
            sample = ds.sample(t)
            # Original constructions: slices for the short window, a
            # fancy-indexed same-slot stack (oldest first) for the long.
            long_idx = [t - i * spd for i in range(d, 0, -1)]
            np.testing.assert_array_equal(sample.short_inflow, ds.inflow[t - k : t])
            np.testing.assert_array_equal(sample.short_outflow, ds.outflow[t - k : t])
            np.testing.assert_array_equal(sample.long_inflow, ds.inflow[long_idx])
            np.testing.assert_array_equal(sample.long_outflow, ds.outflow[long_idx])
            np.testing.assert_array_equal(sample.target_demand, ds.demand[t])
            np.testing.assert_array_equal(sample.target_supply, ds.supply[t])

    def test_samples_are_memoised(self):
        ds = make_dataset()
        t = ds.min_history + 1
        assert ds.sample(t) is ds.sample(t)

    def test_windows_are_views_not_copies(self):
        ds = make_dataset()
        sample = ds.sample(ds.min_history)
        assert sample.short_inflow.base is not None
        assert sample.long_inflow.base is not None

    def test_long_window_views_are_read_only(self):
        ds = make_dataset()
        sample = ds.sample(ds.min_history)
        with pytest.raises(ValueError):
            sample.long_inflow[0, 0, 0] = 99.0


class TestNormalizers:
    def test_fit_on_training_only(self):
        ds = make_dataset(days=10)
        train, _, _ = ds.split_indices()
        assert ds.demand_normalizer.maximum == ds.demand[train].max()

    def test_flow_scale_positive(self):
        ds = make_dataset()
        assert ds.flow_scale > 0

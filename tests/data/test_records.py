"""TripRecord semantics."""

import pytest

from repro.data import TripRecord


class TestTripRecord:
    def test_duration(self):
        trip = TripRecord(0, 1, 2, 100.0, 400.0)
        assert trip.duration == 300.0

    def test_negative_duration_representable(self):
        # Dirty records must be constructible so cleaning can reject them.
        trip = TripRecord(0, 1, 2, 400.0, 100.0)
        assert trip.duration == -300.0

    def test_slots(self):
        trip = TripRecord(0, 1, 2, start_time=3600.0, end_time=7300.0)
        assert trip.start_slot(3600.0) == 1
        assert trip.end_slot(3600.0) == 2

    def test_slot_boundary_belongs_to_next_slot(self):
        trip = TripRecord(0, 1, 2, start_time=900.0, end_time=1000.0)
        assert trip.start_slot(900.0) == 1

    def test_frozen(self):
        trip = TripRecord(0, 1, 2, 0.0, 1.0)
        with pytest.raises(AttributeError):
            trip.origin = 5

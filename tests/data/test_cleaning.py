"""Cleaning rules from paper Sec. VII-A."""

import pytest

from repro.data import TripRecord, clean_trips


def trip(tid, origin=0, destination=1, start=0.0, duration=600.0):
    return TripRecord(tid, origin, destination, start, start + duration)


class TestCleanTrips:
    def test_keeps_normal_trips(self):
        kept, report = clean_trips([trip(0), trip(1)], num_stations=3)
        assert len(kept) == 2
        assert report.dropped == 0

    def test_drops_negative_duration(self):
        kept, report = clean_trips([trip(0, duration=-60.0)], num_stations=3)
        assert kept == []
        assert report.negative_duration == 1

    def test_drops_zero_duration(self):
        kept, report = clean_trips([trip(0, duration=0.0)], num_stations=3)
        assert report.negative_duration == 1

    def test_drops_over_24h(self):
        kept, report = clean_trips([trip(0, duration=25 * 3600.0)], num_stations=3)
        assert report.too_long == 1

    def test_exactly_24h_kept(self):
        kept, report = clean_trips([trip(0, duration=24 * 3600.0)], num_stations=3)
        assert report.kept == 1

    def test_drops_unknown_origin(self):
        kept, report = clean_trips([trip(0, origin=-1)], num_stations=3)
        assert report.unknown_station == 1

    def test_drops_out_of_range_destination(self):
        kept, report = clean_trips([trip(0, destination=3)], num_stations=3)
        assert report.unknown_station == 1

    def test_drops_instant_self_loop(self):
        kept, report = clean_trips(
            [trip(0, origin=1, destination=1, duration=30.0)], num_stations=3
        )
        assert report.self_loop_instant == 1

    def test_keeps_long_self_loop(self):
        kept, report = clean_trips(
            [trip(0, origin=1, destination=1, duration=600.0)], num_stations=3
        )
        assert report.kept == 1

    def test_first_matching_rule_wins(self):
        # Negative duration AND unknown station: counted as negative.
        record = TripRecord(0, -1, 1, 100.0, 50.0)
        _, report = clean_trips([record], num_stations=3)
        assert report.negative_duration == 1
        assert report.unknown_station == 0

    def test_report_totals_consistent(self):
        trips = [
            trip(0),
            trip(1, duration=-5.0),
            trip(2, duration=30 * 3600.0),
            trip(3, origin=9),
        ]
        _, report = clean_trips(trips, num_stations=3)
        assert report.total == 4
        assert report.kept == 1
        assert report.dropped == 3
        as_dict = report.as_dict()
        assert as_dict["dropped"] == 3

    def test_custom_max_duration(self):
        kept, report = clean_trips([trip(0, duration=7200.0)], num_stations=3,
                                   max_duration=3600.0)
        assert report.too_long == 1

    def test_invalid_station_count(self):
        with pytest.raises(ValueError):
            clean_trips([], num_stations=0)

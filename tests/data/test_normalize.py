"""Min-Max normalizer, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import MinMaxNormalizer


class TestMinMaxNormalizer:
    def test_maps_to_unit_interval(self):
        scaler = MinMaxNormalizer().fit(np.array([2.0, 4.0, 6.0]))
        out = scaler.transform(np.array([2.0, 4.0, 6.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_inverse_restores(self):
        data = np.array([1.0, 5.0, 9.0])
        scaler = MinMaxNormalizer().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_out_of_range_values_extrapolate(self):
        scaler = MinMaxNormalizer().fit(np.array([0.0, 10.0]))
        assert scaler.transform(np.array([20.0]))[0] == pytest.approx(2.0)

    def test_constant_data(self):
        scaler = MinMaxNormalizer().fit(np.array([3.0, 3.0]))
        np.testing.assert_allclose(scaler.transform(np.array([3.0])), [0.0])
        np.testing.assert_allclose(scaler.inverse_transform(np.array([0.7])), [3.0])

    def test_use_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.zeros(3))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.array([]))

    def test_fit_transform(self):
        out = MinMaxNormalizer().fit_transform(np.array([0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(2, 30),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_roundtrip_property(self, data):
        scaler = MinMaxNormalizer().fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        np.testing.assert_allclose(restored, data, atol=1e-6)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(2, 30),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_transform_range_property(self, data):
        scaler = MinMaxNormalizer().fit(data)
        out = scaler.transform(data)
        assert out.min() >= -1e-12
        assert out.max() <= 1.0 + 1e-12

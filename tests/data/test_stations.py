"""Stations, haversine distance, nearest-neighbor queries."""

import numpy as np
import pytest

from repro.data import Station, StationRegistry, haversine_km


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10.0, 50.0, 10.0, 50.0) == pytest.approx(0.0)

    def test_known_distance_one_degree_latitude(self):
        # 1 degree of latitude is ~111.2 km.
        d = haversine_km(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111.2, abs=0.5)

    def test_symmetry(self):
        assert haversine_km(-87.6, 41.9, -87.7, 42.0) == pytest.approx(
            haversine_km(-87.7, 42.0, -87.6, 41.9)
        )

    def test_vectorized(self):
        lons = np.array([0.0, 1.0])
        out = haversine_km(lons, 0.0, 0.0, 0.0)
        assert out.shape == (2,)
        assert out[0] == 0.0


def make_registry(n=5):
    return StationRegistry(
        [Station(i, -87.6 + 0.01 * i, 41.9, name=f"s{i}") for i in range(n)]
    )


class TestStationRegistry:
    def test_len_and_getitem(self):
        registry = make_registry(4)
        assert len(registry) == 4
        assert registry[2].name == "s2"

    def test_requires_contiguous_ids(self):
        with pytest.raises(ValueError):
            StationRegistry([Station(0, 0, 0), Station(2, 0, 0)])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            StationRegistry([])

    def test_from_stations_remaps(self):
        registry = StationRegistry.from_stations(
            [Station(100, 1.0, 2.0), Station(7, 3.0, 4.0)]
        )
        assert len(registry) == 2
        # Sorted by original id: 7 -> 0, 100 -> 1.
        assert registry[0].longitude == 3.0
        assert registry[1].longitude == 1.0

    def test_distance_matrix_symmetric_zero_diagonal(self):
        registry = make_registry(5)
        d = registry.distance_matrix()
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), np.zeros(5))

    def test_distance_matrix_cached(self):
        registry = make_registry(3)
        assert registry.distance_matrix() is registry.distance_matrix()

    def test_nearest_ordered_by_distance(self):
        registry = make_registry(5)
        nearest = registry.nearest(0, count=4)
        # Stations laid out on a line eastward: order must be 1,2,3,4.
        assert nearest == [1, 2, 3, 4]

    def test_nearest_excludes_self(self):
        registry = make_registry(5)
        assert 2 not in registry.nearest(2, count=4)

    def test_nearest_count_clamped(self):
        registry = make_registry(3)
        assert len(registry.nearest(0, count=10)) == 2

    def test_nearest_invalid_args(self):
        registry = make_registry(3)
        with pytest.raises(IndexError):
            registry.nearest(5)
        with pytest.raises(ValueError):
            registry.nearest(0, count=0)

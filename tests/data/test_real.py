"""Real-export adapters (Divvy/Metro CSV layouts)."""

import pytest

from repro.data import clean_trips, detect_layout, read_real_trips, window_days

DIVVY_2020 = """ride_id,rideable_type,started_at,ended_at,start_station_id,end_station_id,start_lat,start_lng,end_lat,end_lng
A1,classic,2018-04-01 08:00:00,2018-04-01 08:15:00,1001,1002,41.88,-87.63,41.89,-87.62
A2,classic,2018-04-01 09:30:00,2018-04-01 09:40:00,1002,1001,41.89,-87.62,41.88,-87.63
A3,classic,2018-04-02 10:00:00,2018-04-02 10:20:00,1001,1003,41.88,-87.63,41.90,-87.61
"""

DIVVY_2018 = """trip_id,start_time,end_time,from_station_id,to_station_id
7,2018-04-01 08:00:00,2018-04-01 08:30:00,55,66
8,2018-04-01 08:05:00,2018-04-01 08:20:00,66,55
"""

METRO = """trip_id,duration,start_time,end_time,start_station,end_station,start_lat,start_lon,end_lat,end_lon
M1,900,2017-10-01 07:00:00,2017-10-01 07:15:00,3005,3006,34.05,-118.24,34.06,-118.25
"""

BAD_ROWS = """trip_id,start_time,end_time,from_station_id,to_station_id
1,2018-04-01 08:00:00,2018-04-01 08:30:00,55,66
2,not-a-time,2018-04-01 08:20:00,66,55
3,2018-04-01 09:00:00,2018-04-01 09:10:00,,55
"""


def write(tmp_path, text, name="trips.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLayoutDetection:
    def test_divvy_2020(self):
        header = DIVVY_2020.splitlines()[0].split(",")
        assert detect_layout(header) == "divvy-2020"

    def test_divvy_2018(self):
        header = DIVVY_2018.splitlines()[0].split(",")
        assert detect_layout(header) == "divvy-2018"

    def test_metro(self):
        header = METRO.splitlines()[0].split(",")
        assert detect_layout(header) == "metro"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            detect_layout(["foo", "bar"])


class TestReadRealTrips:
    def test_divvy_2020_parse(self, tmp_path):
        result = read_real_trips(write(tmp_path, DIVVY_2020))
        assert result.layout == "divvy-2020"
        assert len(result.trips) == 3
        assert len(result.registry) == 3  # stations 1001/1002/1003 -> 0/1/2
        assert result.unparseable_rows == 0

    def test_times_relative_to_first_midnight(self, tmp_path):
        result = read_real_trips(write(tmp_path, DIVVY_2020))
        first = result.trips[0]
        assert first.start_time == 8 * 3600.0
        assert first.duration == 15 * 60.0
        # Second-day trip lands in day 1.
        assert result.trips[2].start_time == 86400.0 + 10 * 3600.0

    def test_station_ids_contiguous_and_named(self, tmp_path):
        result = read_real_trips(write(tmp_path, DIVVY_2020))
        names = [s.name for s in result.registry]
        assert names == ["1001", "1002", "1003"]

    def test_coordinates_from_rows(self, tmp_path):
        result = read_real_trips(write(tmp_path, DIVVY_2020))
        station = result.registry[0]  # original id 1001
        assert station.latitude == pytest.approx(41.88)
        assert station.longitude == pytest.approx(-87.63)

    def test_metro_layout(self, tmp_path):
        result = read_real_trips(write(tmp_path, METRO))
        assert result.layout == "metro"
        assert result.registry[0].latitude == pytest.approx(34.05)

    def test_bad_rows_marked_not_dropped(self, tmp_path):
        result = read_real_trips(write(tmp_path, BAD_ROWS))
        assert len(result.trips) == 3
        assert result.unparseable_rows == 1
        clean, report = clean_trips(result.trips, len(result.registry))
        # Row 2 (bad time) and row 3 (missing origin) are cleaned away.
        assert report.kept == 1
        assert report.negative_duration >= 1
        assert report.unknown_station >= 1

    def test_window_days(self, tmp_path):
        result = read_real_trips(write(tmp_path, DIVVY_2020))
        assert window_days(result) == 2

    def test_no_timestamps_rejected(self, tmp_path):
        path = write(
            tmp_path,
            "trip_id,start_time,end_time,from_station_id,to_station_id\n"
            "1,xx,yy,1,2\n",
        )
        with pytest.raises(ValueError):
            read_real_trips(path)

"""Flow tensor construction: the paper's I/O matrix bookkeeping."""

import numpy as np
import pytest

from repro.data import TripRecord, build_flow_tensors, demand_supply


def trip(tid, origin, destination, start, end):
    return TripRecord(tid, origin, destination, start, end)


class TestBuildFlowTensors:
    def test_single_trip_bookkeeping(self):
        # Borrow at station 1 during slot 0, return to station 2 in slot 1.
        trips = [trip(0, 1, 2, start=100.0, end=1000.0)]
        inflow, outflow = build_flow_tensors(trips, num_stations=3, num_slots=2,
                                             slot_seconds=900.0)
        # O^{t_s}_{origin, destination} += 1 at the checkout slot.
        assert outflow[0, 1, 2] == 1.0
        # I^{t_e}_{destination, origin} += 1 at the return slot.
        assert inflow[1, 2, 1] == 1.0
        assert outflow.sum() == 1.0 and inflow.sum() == 1.0

    def test_same_slot_trip(self):
        trips = [trip(0, 0, 1, start=10.0, end=20.0)]
        inflow, outflow = build_flow_tensors(trips, 2, 1, 900.0)
        assert outflow[0, 0, 1] == 1.0
        assert inflow[0, 1, 0] == 1.0

    def test_trip_ending_after_window_counts_outflow_only(self):
        trips = [trip(0, 0, 1, start=100.0, end=5000.0)]
        inflow, outflow = build_flow_tensors(trips, 2, 2, 900.0)
        assert outflow.sum() == 1.0
        assert inflow.sum() == 0.0

    def test_trip_starting_outside_window_rejected(self):
        trips = [trip(0, 0, 1, start=5000.0, end=5100.0)]
        with pytest.raises(ValueError):
            build_flow_tensors(trips, 2, 2, 900.0)

    def test_counts_accumulate(self):
        trips = [trip(i, 0, 1, start=10.0 + i, end=20.0 + i) for i in range(5)]
        inflow, outflow = build_flow_tensors(trips, 2, 1, 900.0)
        assert outflow[0, 0, 1] == 5.0
        assert inflow[0, 1, 0] == 5.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            build_flow_tensors([], 0, 1, 900.0)
        with pytest.raises(ValueError):
            build_flow_tensors([], 2, 1, 0.0)


class TestDemandSupply:
    def test_definition_1(self):
        inflow = np.zeros((1, 2, 2))
        outflow = np.zeros((1, 2, 2))
        outflow[0, 0, 1] = 3.0  # 3 bikes leave station 0
        inflow[0, 1, 0] = 2.0  # 2 bikes arrive at station 1
        demand, supply = demand_supply(inflow, outflow)
        np.testing.assert_allclose(demand[0], [3.0, 0.0])
        np.testing.assert_allclose(supply[0], [0.0, 2.0])

    def test_trip_conservation(self):
        """Every completed trip appears once in demand and once in supply."""
        trips = [trip(i, i % 2, (i + 1) % 2, start=50.0 * i, end=50.0 * i + 100)
                 for i in range(10)]
        inflow, outflow = build_flow_tensors(trips, 2, 1, 900.0)
        demand, supply = demand_supply(inflow, outflow)
        assert demand.sum() == 10.0
        assert supply.sum() == 10.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            demand_supply(np.zeros((2, 3, 3)), np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            demand_supply(np.zeros((2, 3, 2)), np.zeros((2, 3, 2)))

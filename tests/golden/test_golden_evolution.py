"""Golden pins for graph evolution: round trips restore the exact model.

Growing the pinned golden model to a larger station set and shrinking
straight back must be a *perfect* round trip: every kept position in
every parameter is copied (never re-derived), so the FCG and PCG the
model builds at forward time, and the forward outputs themselves, come
back **bitwise identical** to the checked-in goldens. Any change to the
evolution remap rules that loses, reorders or recomputes a kept value
fails against the same pinned artifacts as the plain forward test.
"""

import numpy as np
import pytest

from repro import backend
from repro.continual import GraphEvolution, evolve_model
from repro.core.model import STGNNDJD
from repro.graphs.fcg import build_fcg
from repro.tensor import inference_mode

from tests.golden.generate_goldens import (
    GOLDEN_PATH,
    T_OFFSETS,
    build,
    forward_outputs,
)


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.skip("golden file missing — run generate_goldens.py")
    with np.load(GOLDEN_PATH) as bundle:
        return {name: bundle[name].copy() for name in bundle.files}


def _grow_then_shrink(model: STGNNDJD, add: int, seed: int) -> STGNNDJD:
    n = model.config.num_stations
    grown = evolve_model(
        model, GraphEvolution.grow(n, add), seed=seed
    )
    return evolve_model(
        grown, GraphEvolution(n + add, tuple(range(n)), 0), seed=seed + 1
    )


@pytest.mark.parametrize("add", [1, 3])
def test_grow_then_shrink_restores_parameters_bitwise(add):
    _, model = build()
    round_tripped = _grow_then_shrink(model, add, seed=7)
    for (name, original), (name2, restored) in zip(
        model.named_parameters(), round_tripped.named_parameters()
    ):
        assert name == name2
        assert np.array_equal(original.data, restored.data), name


def test_grow_then_shrink_forward_matches_goldens_bitwise(golden):
    dataset, model = build()
    round_tripped = _grow_then_shrink(model, 2, seed=11)
    with backend.dtype_scope(np.float64):
        outputs = forward_outputs(dataset, round_tripped)
    assert set(outputs) == set(golden)
    for name in golden:
        assert outputs[name].dtype == np.float64
        assert np.array_equal(outputs[name], golden[name]), name


def test_grow_then_shrink_restores_fcg_and_pcg_bitwise():
    dataset, model = build()
    round_tripped = _grow_then_shrink(model, 2, seed=3)
    sample = dataset.sample(dataset.min_history + T_OFFSETS[0])
    with backend.dtype_scope(np.float64), inference_mode():
        fcg_a = build_fcg(model._node_features(sample), model.graph_sparsity)
        fcg_b = build_fcg(
            round_tripped._node_features(sample), round_tripped.graph_sparsity
        )
        assert np.array_equal(fcg_a.mask, fcg_b.mask)
        assert np.array_equal(fcg_a.weights.data, fcg_b.weights.data)
        # The PCG's edges are the PatternGNN's first-layer attention.
        feats_a = model._node_features(sample).node_features
        feats_b = round_tripped._node_features(sample).node_features
        assert np.array_equal(feats_a.data, feats_b.data)
        attn_a = model.pattern_gnn.layers[0].attentions[0](feats_a)
        attn_b = round_tripped.pattern_gnn.layers[0].attentions[0](feats_b)
        assert np.array_equal(attn_a.data, attn_b.data)


def test_grown_model_preserves_kept_station_forward():
    """Growing alone keeps the original stations' graph structure: the
    kept block of the grown model's FCG mask equals the original's."""
    dataset, model = build()
    n = dataset.num_stations
    grown = evolve_model(model, GraphEvolution.grow(n, 2), seed=5)
    sample = dataset.sample(dataset.min_history)
    wide = np.zeros((sample.short_inflow.shape[0], n + 2, n + 2))
    wide[:, :n, :n] = sample.short_inflow
    wide_out = np.zeros_like(wide)
    wide_out[:, :n, :n] = sample.short_outflow
    long_wide = np.zeros((sample.long_inflow.shape[0], n + 2, n + 2))
    long_wide[:, :n, :n] = sample.long_inflow
    long_wide_out = np.zeros_like(long_wide)
    long_wide_out[:, :n, :n] = sample.long_outflow
    import dataclasses

    wide_sample = dataclasses.replace(
        sample,
        short_inflow=wide, short_outflow=wide_out,
        long_inflow=long_wide, long_outflow=long_wide_out,
        target_demand=np.zeros(n + 2), target_supply=np.zeros(n + 2),
    )
    with backend.dtype_scope(np.float64), inference_mode():
        fcg_small = build_fcg(
            model._node_features(sample), model.graph_sparsity
        )
        fcg_big = build_fcg(
            grown._node_features(wide_sample), grown.graph_sparsity
        )
    assert np.array_equal(fcg_big.mask[:n, :n], fcg_small.mask)

"""Regenerate the checked-in golden forward outputs.

Run from the repo root when an *intentional* numerical change lands::

    PYTHONPATH=src python tests/golden/generate_goldens.py

The goldens pin the float64 forward pass of STGNN-DJD for a fixed
dataset seed, model seed and config. ``test_golden_forward.py`` compares
float64 runs bitwise and float32 runs within tolerance, so any silent
numerical drift — an op rewrite, a fusion, an accumulation-order change
— fails loudly instead of shifting published results.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import SyntheticCityConfig, generate_city
from repro.core.model import STGNNDJD
from repro.tensor import inference_mode

GOLDEN_PATH = Path(__file__).parent / "stgnn_forward_goldens.npz"

DATASET_SEED = 42
MODEL_SEED = 3
MODEL_KWARGS = dict(fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0)
#: Prediction times pinned by the goldens (offsets past min_history).
T_OFFSETS = (0, 5, 17)


def build(**overrides):
    """Pinned dataset + model; ``overrides`` layer onto MODEL_KWARGS
    (used by the sparse-representation parity tests)."""
    dataset = generate_city(
        SyntheticCityConfig.tiny(days=10, num_stations=8), seed=DATASET_SEED
    )
    kwargs = {**MODEL_KWARGS, **overrides}
    model = STGNNDJD.from_dataset(dataset, seed=MODEL_SEED, **kwargs)
    model.eval()
    return dataset, model


def forward_outputs(dataset, model) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    with inference_mode():
        for offset in T_OFFSETS:
            t = dataset.min_history + offset
            demand, supply = model(dataset.sample(t))
            arrays[f"demand/{offset}"] = np.array(demand.data)
            arrays[f"supply/{offset}"] = np.array(supply.data)
    return arrays


def main() -> None:
    dataset, model = build()
    arrays = forward_outputs(dataset, model)
    for name, value in arrays.items():
        assert value.dtype == np.float64, name
    np.savez(GOLDEN_PATH, **arrays)
    print(f"wrote {GOLDEN_PATH} ({len(arrays)} arrays)")


if __name__ == "__main__":
    main()

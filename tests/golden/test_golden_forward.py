"""Golden regression: the STGNN-DJD forward pass is pinned bit-for-bit.

``stgnn_forward_goldens.npz`` holds the float64 forward outputs for a
fixed dataset seed, model seed and config (see ``generate_goldens.py``).
Any numerical drift — op rewrites, fusions, accumulation-order changes —
must either be bitwise-neutral or come with a deliberate golden
regeneration in the same commit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import inference_mode
from tests.golden.generate_goldens import (
    GOLDEN_PATH,
    T_OFFSETS,
    build,
    forward_outputs,
)


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_PATH.exists(), (
        "golden file missing - run PYTHONPATH=src python "
        "tests/golden/generate_goldens.py"
    )
    with np.load(GOLDEN_PATH) as bundle:
        return {name: bundle[name].copy() for name in bundle.files}


@pytest.fixture(scope="module")
def built():
    return build()


class TestFloat64:
    def test_forward_matches_goldens_bitwise(self, goldens, built):
        dataset, model = built
        outputs = forward_outputs(dataset, model)
        assert outputs.keys() == goldens.keys()
        for name, golden in goldens.items():
            assert outputs[name].dtype == np.float64
            np.testing.assert_array_equal(
                outputs[name], golden, err_msg=name, strict=True
            )

    def test_goldens_are_finite_and_shaped(self, goldens):
        for name, golden in goldens.items():
            assert golden.shape == (8,), name  # one row per station
            assert np.isfinite(golden).all(), name


class TestSparseFullCoverage:
    def test_sparse_graphs_at_full_coverage_match_goldens_bitwise(self, goldens):
        # The sparse representation's parity tier: forcing top-k edge
        # lists with k >= n must reproduce the dense pins bit-for-bit
        # (gathers are identity copies, blocked kernels collapse to the
        # dense matmul — see repro/graphs/sparse.py).
        dataset, model = build(graph_mode="sparse", graph_top_k=999)
        outputs = forward_outputs(dataset, model)
        for name, golden in goldens.items():
            np.testing.assert_array_equal(
                outputs[name], golden, err_msg=name, strict=True
            )


class TestFloat32:
    def test_float32_forward_tracks_goldens_within_tolerance(self, goldens):
        # Fresh build: Module.to casts in place, and the float64 tests
        # must keep seeing the original double-precision weights.
        dataset, model = build()
        model32 = model.to(np.float32)
        with inference_mode(dtype="float32"):
            for offset in T_OFFSETS:
                t = dataset.min_history + offset
                demand, supply = model32(dataset.sample(t))
                assert demand.data.dtype == np.float32
                scale = max(
                    1.0, float(np.abs(goldens[f"demand/{offset}"]).max())
                )
                np.testing.assert_allclose(
                    demand.data, goldens[f"demand/{offset}"],
                    rtol=1e-4, atol=1e-4 * scale,
                    err_msg=f"demand/{offset}",
                )
                np.testing.assert_allclose(
                    supply.data, goldens[f"supply/{offset}"],
                    rtol=1e-4, atol=1e-4 * scale,
                    err_msg=f"supply/{offset}",
                )

"""JSONL event stream: schema validation and round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JsonlExporter,
    emit_event,
    make_event,
    read_events,
    set_sink,
    sink_scope,
    validate_event,
)


class TestSchema:
    def test_make_event_conforms(self):
        event = make_event("epoch", "trainer", {"epoch": 0, "loss": 0.5})
        validate_event(event)
        assert event["kind"] == "epoch"
        assert event["data"]["loss"] == 0.5

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {"kind": "epoch", "name": "x", "data": {}},              # missing ts
        {"ts": 1.0, "kind": "nope", "name": "x", "data": {}},    # bad kind
        {"ts": 1.0, "kind": "epoch", "name": "", "data": {}},    # empty name
        {"ts": 1.0, "kind": "epoch", "name": "x", "data": []},   # bad data
        {"ts": 1.0, "kind": "epoch", "name": "x", "data": {}, "zzz": 1},
        {"ts": True, "kind": "epoch", "name": "x", "data": {}},  # bool ts
    ])
    def test_bad_events_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_event(bad)


class TestJsonlRoundTrip:
    def test_emit_read_validate(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        with JsonlExporter(path) as exporter:
            first = exporter.emit("run_start", "run-1", config={"epochs": 2})
            second = exporter.emit("epoch", "run-1", epoch=0, train_loss=0.25)
        events = read_events(path, validate=True)
        assert events == [first, second]

    def test_invalid_line_pinpointed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(make_event("event", "x")) + "\n" + "{not json}\n"
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events(path)

    def test_schema_violation_pinpointed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0, "kind": "nope", "name": "x", "data": {}}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_events(path)
        # validation can be turned off for forensic reads
        assert len(read_events(path, validate=False)) == 1

    def test_closed_exporter_raises(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "x.jsonl")
        exporter.close()
        with pytest.raises(RuntimeError):
            exporter.emit("event", "x")


class TestGlobalSink:
    def test_emit_without_sink_is_noop(self):
        assert emit_event("event", "orphan") is None

    def test_sink_scope_routes_and_restores(self, tmp_path):
        path = tmp_path / "scoped.jsonl"
        with sink_scope(JsonlExporter(path)) as sink:
            emit_event("event", "inside", value=1)
            sink.close()
        assert emit_event("event", "outside") is None
        events = read_events(path)
        assert [e["name"] for e in events] == ["inside"]

    def test_set_sink_returns_previous(self, tmp_path):
        sink = JsonlExporter(tmp_path / "a.jsonl")
        assert set_sink(sink) is None
        assert set_sink(None) is sink
        sink.close()


class TestRotation:
    def test_unbounded_by_default(self, tmp_path):
        with JsonlExporter(tmp_path / "u.jsonl") as exporter:
            for i in range(50):
                exporter.emit("event", "tick", i=i)
            assert exporter.rotations == 0
        assert len(read_events(tmp_path / "u.jsonl")) == 50

    def test_max_bytes_rotates_to_single_backup(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with JsonlExporter(path, max_bytes=200) as exporter:
            for i in range(20):
                exporter.emit("event", "tick", i=i)
            assert exporter.rotations > 0
            assert exporter.rotated_path.exists()
        # at most two generations, newest events in the live file
        live = read_events(path)
        backup = read_events(exporter.rotated_path)
        assert live[-1]["data"]["i"] == 19
        assert backup[-1]["data"]["i"] == live[0]["data"]["i"] - 1

    def test_never_rotates_an_empty_file(self, tmp_path):
        path = tmp_path / "big.jsonl"
        with JsonlExporter(path, max_bytes=10) as exporter:
            # one event is already over the limit, but an empty file
            # must absorb it rather than rotate forever
            exporter.emit("event", "huge", payload="x" * 100)
            assert exporter.rotations == 0
            exporter.emit("event", "next")
            assert exporter.rotations == 1
        assert len(read_events(path)) == 1

    def test_max_lines_bound(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with JsonlExporter(path, max_lines=3) as exporter:
            for i in range(7):
                exporter.emit("event", "tick", i=i)
        assert len(read_events(path)) == 1  # 3 + 3 rotated, 1 live
        assert len(read_events(exporter.rotated_path)) == 3

    def test_destroyed_generation_counts_events_dropped(
        self, tmp_path, clean_telemetry
    ):
        registry = clean_telemetry
        registry.enabled = True
        path = tmp_path / "d.jsonl"
        with JsonlExporter(path, max_lines=2) as exporter:
            for i in range(4):  # fills live + one .1 backup: nothing lost
                exporter.emit("event", "tick", i=i)
            assert registry.counter("obs.events_dropped").value == 0
            for i in range(4, 8):  # now each rotation destroys a .1
                exporter.emit("event", "tick", i=i)
            assert registry.counter("obs.events_dropped").value == 4

    def test_append_resumes_against_existing_size(self, tmp_path):
        path = tmp_path / "a.jsonl"
        with JsonlExporter(path) as exporter:
            exporter.emit("event", "old")
        size = path.stat().st_size
        with JsonlExporter(path, max_bytes=size + 10) as exporter:
            exporter.emit("event", "new")  # pushes past the bound
            assert exporter.rotations == 1

    def test_bad_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlExporter(tmp_path / "x.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            JsonlExporter(tmp_path / "x.jsonl", max_lines=0)

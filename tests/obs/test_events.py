"""JSONL event stream: schema validation and round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JsonlExporter,
    emit_event,
    make_event,
    read_events,
    set_sink,
    sink_scope,
    validate_event,
)


class TestSchema:
    def test_make_event_conforms(self):
        event = make_event("epoch", "trainer", {"epoch": 0, "loss": 0.5})
        validate_event(event)
        assert event["kind"] == "epoch"
        assert event["data"]["loss"] == 0.5

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {"kind": "epoch", "name": "x", "data": {}},              # missing ts
        {"ts": 1.0, "kind": "nope", "name": "x", "data": {}},    # bad kind
        {"ts": 1.0, "kind": "epoch", "name": "", "data": {}},    # empty name
        {"ts": 1.0, "kind": "epoch", "name": "x", "data": []},   # bad data
        {"ts": 1.0, "kind": "epoch", "name": "x", "data": {}, "zzz": 1},
        {"ts": True, "kind": "epoch", "name": "x", "data": {}},  # bool ts
    ])
    def test_bad_events_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_event(bad)


class TestJsonlRoundTrip:
    def test_emit_read_validate(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        with JsonlExporter(path) as exporter:
            first = exporter.emit("run_start", "run-1", config={"epochs": 2})
            second = exporter.emit("epoch", "run-1", epoch=0, train_loss=0.25)
        events = read_events(path, validate=True)
        assert events == [first, second]

    def test_invalid_line_pinpointed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(make_event("event", "x")) + "\n" + "{not json}\n"
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events(path)

    def test_schema_violation_pinpointed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0, "kind": "nope", "name": "x", "data": {}}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_events(path)
        # validation can be turned off for forensic reads
        assert len(read_events(path, validate=False)) == 1

    def test_closed_exporter_raises(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "x.jsonl")
        exporter.close()
        with pytest.raises(RuntimeError):
            exporter.emit("event", "x")


class TestGlobalSink:
    def test_emit_without_sink_is_noop(self):
        assert emit_event("event", "orphan") is None

    def test_sink_scope_routes_and_restores(self, tmp_path):
        path = tmp_path / "scoped.jsonl"
        with sink_scope(JsonlExporter(path)) as sink:
            emit_event("event", "inside", value=1)
            sink.close()
        assert emit_event("event", "outside") is None
        events = read_events(path)
        assert [e["name"] for e in events] == ["inside"]

    def test_set_sink_returns_previous(self, tmp_path):
        sink = JsonlExporter(tmp_path / "a.jsonl")
        assert set_sink(sink) is None
        assert set_sink(None) is sink
        sink.close()

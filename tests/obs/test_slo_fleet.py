"""Fleet SLO aggregation: merged histograms, per-replica verdicts.

``aggregate_slos`` answers two different operator questions from one
registry snapshot: "is the fleet healthy" (objectives over bucket-summed
latency histograms and summed counters — the true fleet p99, not an
average of averages) and "which replica do I look at first"
(``worst_replica``).
"""

import pytest

from repro.obs.registry import Registry
from repro.obs.slo import (
    SLOConfig,
    _MergedHistogram,
    aggregate_slos,
    evaluate_slos,
    histogram_quantile,
)


def replica_traffic(registry, prefix, requests, latency, stale=0, rejected=0):
    registry.counter(f"{prefix}.requests").inc(requests)
    timer = registry.timer(f"{prefix}.request_seconds")
    for _ in range(requests):
        timer.observe(latency)
    if stale:
        registry.counter(f"{prefix}.stale_served").inc(stale)
    if rejected:
        registry.counter(f"{prefix}.rejected").inc(rejected)


@pytest.fixture
def registry():
    reg = Registry()
    reg.enabled = True
    return reg


class TestEvaluatePrefix:
    def test_prefix_selects_the_replica_family(self, registry):
        replica_traffic(registry, "fleet.replica0", 10, 2.0)
        replica_traffic(registry, "fleet.replica1", 10, 0.001)
        config = SLOConfig(p99_latency_seconds=0.25)
        slow = evaluate_slos(config, registry=registry,
                             prefix="fleet.replica0")
        fast = evaluate_slos(config, registry=registry,
                             prefix="fleet.replica1")
        assert slow["healthy"] is False
        assert fast["healthy"] is True

    def test_default_prefix_is_the_single_service(self, registry):
        replica_traffic(registry, "serve", 5, 0.001)
        result = evaluate_slos(registry=registry)
        p99 = next(o for o in result["objectives"]
                   if o["name"] == "p99_latency_seconds")
        assert p99["value"] is not None


class TestMergedHistogram:
    def test_bucket_sums_are_exact(self, registry):
        a = registry.timer("a.request_seconds")
        b = registry.timer("b.request_seconds")
        for _ in range(99):
            a.observe(0.002)
        b.observe(5.0)
        merged = _MergedHistogram([a, b])
        assert merged.count == 100
        assert merged.sum == pytest.approx(99 * 0.002 + 5.0)
        assert merged.min == a.min
        assert merged.max == b.max
        assert merged.bucket_counts == [
            x + y for x, y in zip(a.bucket_counts, b.bucket_counts)
        ]
        # 99 fast + 1 slow: the fleet p99 must see the slow tail, and a
        # p50 must not be dragged up by it (what a mean-of-p99s does).
        assert histogram_quantile(merged, 0.995) >= 5.0
        assert histogram_quantile(merged, 0.5) <= 0.01

    def test_merged_p99_is_not_an_average_of_averages(self, registry):
        # One slow replica hides inside a per-replica average; the
        # merged distribution keeps its latencies at the right rank.
        replica_traffic(registry, "fleet.replica0", 60, 0.001)
        replica_traffic(registry, "fleet.replica1", 40, 1.0)
        merged = _MergedHistogram([
            registry.timer("fleet.replica0.request_seconds"),
            registry.timer("fleet.replica1.request_seconds"),
        ])
        assert histogram_quantile(merged, 0.99) >= 1.0
        assert histogram_quantile(merged, 0.5) <= 0.01


class TestAggregateSlos:
    PREFIXES = ["fleet.replica0", "fleet.replica1"]

    def test_idle_fleet_is_healthy(self, registry):
        result = aggregate_slos(prefixes=self.PREFIXES, registry=registry)
        assert result["healthy"] is True
        assert set(result["replicas"]) == set(self.PREFIXES)
        assert result["worst_replica"] in self.PREFIXES

    def test_one_slow_replica_fails_the_fleet_and_is_named(self, registry):
        replica_traffic(registry, "fleet.replica0", 100, 0.001)
        replica_traffic(registry, "fleet.replica1", 100, 2.0)
        result = aggregate_slos(
            SLOConfig(p99_latency_seconds=0.25),
            prefixes=self.PREFIXES, registry=registry,
        )
        assert result["worst_replica"] == "fleet.replica1"
        assert result["replicas"]["fleet.replica0"]["healthy"] is True
        assert result["replicas"]["fleet.replica1"]["healthy"] is False
        # Half the fleet's traffic breaches: merged p99 breaches too,
        # and fleet health requires every replica healthy regardless.
        assert result["fleet"]["healthy"] is False
        assert result["healthy"] is False

    def test_fleet_counters_are_summed(self, registry):
        replica_traffic(registry, "fleet.replica0", 50, 0.001, stale=1)
        replica_traffic(registry, "fleet.replica1", 50, 0.001, stale=1)
        result = aggregate_slos(
            SLOConfig(max_staleness_ratio=0.05),
            prefixes=self.PREFIXES, registry=registry,
        )
        staleness = next(o for o in result["fleet"]["objectives"]
                         if o["name"] == "staleness_ratio")
        assert staleness["value"] == pytest.approx(2 / 100)
        assert staleness["healthy"] is True

    def test_replica_breach_fails_fleet_even_if_merged_passes(
        self, registry
    ):
        # Replica 1 sheds a third of its (tiny) traffic slice; diluted
        # across the fleet the merged burn passes, but fleet health
        # must not paper over a replica on fire.
        replica_traffic(registry, "fleet.replica0", 996, 0.001)
        replica_traffic(registry, "fleet.replica1", 2, 0.001, rejected=1)
        result = aggregate_slos(
            SLOConfig(error_budget=0.005),
            prefixes=self.PREFIXES, registry=registry,
        )
        fleet_burn = next(o for o in result["fleet"]["objectives"]
                          if o["name"] == "error_budget_burn")
        assert fleet_burn["healthy"] is True
        assert result["replicas"]["fleet.replica1"]["healthy"] is False
        assert result["healthy"] is False
        assert result["worst_replica"] == "fleet.replica1"

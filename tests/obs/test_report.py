"""RunReport round-trip and the ``python -m repro.obs.report`` CLI."""

from __future__ import annotations

import json

from repro.obs import EpochRecord, RunReport, render_report
from repro.obs.report import main as report_main


def sample_report() -> RunReport:
    report = RunReport(run_id="run-x", config={"epochs": 2, "seed": 0})
    report.epochs.append(EpochRecord(0, 0.5, 0.4, grad_norm=1.2,
                                     samples_per_sec=100.0,
                                     learning_rate=0.01, seconds=1.5))
    report.epochs.append(EpochRecord(1, 0.3, 0.35))
    report.metrics = {"trainer.samples": {"kind": "counter", "value": 64.0}}
    report.extra = {"op_profile": {"total_calls": 10, "total_seconds": 0.1,
                                   "total_bytes": 1000, "fused_coverage": 0.4,
                                   "ops": {}}}
    return report


class TestRunReport:
    def test_round_trip(self, tmp_path):
        report = sample_report()
        path = report.save(tmp_path / "run-x.report.json")
        loaded = RunReport.load(path)
        assert loaded == report
        assert json.loads(path.read_text())["schema"] == 1

    def test_best_epoch(self):
        report = sample_report()
        assert report.best_epoch == 1
        assert RunReport(run_id="empty").best_epoch == -1

    def test_render_contains_table_and_metrics(self):
        text = render_report(sample_report())
        assert "run-x" in text
        assert "0.50000" in text and "0.35000" in text
        assert "best epoch: 1" in text
        assert "trainer.samples" in text
        assert "fused coverage 40.0%" in text


class TestCli:
    def test_renders_report_file(self, tmp_path, capsys):
        path = sample_report().save(tmp_path / "run-x.report.json")
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "run-x" in out and "best epoch" in out

    def test_directory_picks_newest_report(self, tmp_path, capsys):
        old = sample_report()
        old.run_id = "run-old"
        old.save(tmp_path / "run-old.report.json")
        new = sample_report()
        new.run_id = "run-new"
        new.save(tmp_path / "run-new.report.json")
        assert report_main([str(tmp_path)]) == 0
        assert "run-new" in capsys.readouterr().out

    def test_renders_event_stream(self, tmp_path, capsys):
        from repro.obs import JsonlExporter

        path = tmp_path / "run.events.jsonl"
        with JsonlExporter(path) as exporter:
            exporter.emit("run_start", "run-1")
            exporter.emit("epoch", "run-1", epoch=0, train_loss=0.5, val_loss=0.4)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 events" in out and "0.50000" in out

    def test_json_dump(self, tmp_path, capsys):
        path = sample_report().save(tmp_path / "r.report.json")
        assert report_main([str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == "run-x"

    def test_missing_report_errors(self, tmp_path, capsys):
        assert report_main([str(tmp_path)]) == 1
        assert "no *.report.json" in capsys.readouterr().err

    def test_runs_as_module(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        path = sample_report().save(tmp_path / "r.report.json")
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "run-x" in proc.stdout
        assert "RuntimeWarning" not in proc.stderr

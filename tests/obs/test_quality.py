"""Quality monitoring: reconciliation, metric bit-match, drift, SLOs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import metrics as paper_metrics
from repro.obs import set_sink
from repro.obs.events import JsonlExporter, read_events
from repro.obs.quality import QualityBaseline, QualityConfig, QualityMonitor
from repro.obs.registry import Registry
from repro.obs.slo import SLOConfig, evaluate_slos, histogram_quantile


class FakeStore:
    """Minimal ``realized()`` provider driven by the tests."""

    def __init__(self, realized: dict[int, tuple[np.ndarray, np.ndarray]]):
        self._realized = realized

    def realized(self, slot):
        if slot not in self._realized:
            raise IndexError(f"slot {slot} evicted")
        return self._realized[slot]


def make_monitor(**config_kwargs) -> QualityMonitor:
    return QualityMonitor(QualityConfig(**config_kwargs), registry=Registry())


class TestReconciliation:
    def test_single_horizon_forecast_reconciles(self):
        monitor = make_monitor()
        pred_d, pred_s = np.array([1.0, 2.0, 3.0]), np.array([0.5, 1.5, 2.5])
        monitor.record_forecast(7, pred_d, pred_s)
        assert monitor.pending_count == 1
        true_d, true_s = np.array([1.0, 2.5, 3.0]), np.array([0.5, 1.0, 2.5])
        monitor.on_rollover(FakeStore({7: (true_d, true_s)}), range(7, 8))
        assert monitor.pending_count == 0
        rolling = monitor.rolling(0)
        assert rolling["samples"] == 1
        assert rolling["rmse"] == paper_metrics.rmse(
            true_d[None], pred_d[None], true_s[None], pred_s[None]
        )

    def test_multi_horizon_fans_out_to_per_horizon_windows(self):
        monitor = make_monitor()
        demand = np.array([[1.0, 2.0], [3.0, 4.0]])  # (n=2, H=2)
        supply = demand + 0.5
        monitor.record_forecast(10, demand, supply)
        assert monitor.pending_count == 2  # (10, h=0) and (11, h=1)
        store = FakeStore({
            10: (np.array([1.0, 3.0]), np.array([1.5, 3.5])),
            11: (np.array([2.0, 4.0]), np.array([2.5, 4.5])),
        })
        monitor.on_rollover(store, range(10, 12))
        assert monitor.rolling(0)["samples"] == 1
        assert monitor.rolling(1)["samples"] == 1
        assert monitor.rolling(2) is None

    def test_last_write_wins_for_reforecast(self):
        monitor = make_monitor()
        monitor.record_forecast(5, np.array([9.0]), np.array([9.0]))
        monitor.record_forecast(5, np.array([1.0]), np.array([1.0]))
        assert monitor.pending_count == 1
        monitor.on_rollover(
            FakeStore({5: (np.array([1.0]), np.array([1.0]))}), range(5, 6)
        )
        assert monitor.rolling(0)["rmse"] == 0.0

    def test_evicted_slot_counts_unreconciled(self):
        monitor = make_monitor()
        monitor.record_forecast(3, np.array([1.0]), np.array([1.0]))
        monitor.on_rollover(FakeStore({}), range(3, 4))
        assert monitor.pending_count == 0
        snapshot = monitor.snapshot()
        assert snapshot["unreconciled"] == 1
        assert snapshot["reconciled"] == 0

    def test_window_is_bounded(self):
        monitor = make_monitor(window=4)
        for slot in range(10):
            monitor.record_forecast(slot, np.array([1.0]), np.array([1.0]))
            monitor.on_rollover(
                FakeStore({slot: (np.array([1.0]), np.array([1.0]))}),
                range(slot, slot + 1),
            )
        assert monitor.rolling(0)["samples"] == 4


class TestBitMatch:
    def test_rolling_matches_offline_metrics_exactly(self, rng):
        """Acceptance: online RMSE/MAE equals eval.metrics to <= 1e-12
        on the same pairs (equal by construction — same function)."""
        monitor = make_monitor(window=64)
        n, slots = 5, 20
        true_d_all, pred_d_all, true_s_all, pred_s_all = [], [], [], []
        for slot in range(slots):
            pred_d = rng.uniform(0, 10, n)
            pred_s = rng.uniform(0, 10, n)
            true_d = pred_d + rng.normal(0, 1, n)
            true_s = pred_s + rng.normal(0, 1, n)
            monitor.record_forecast(slot, pred_d, pred_s)
            monitor.on_rollover(
                FakeStore({slot: (true_d, true_s)}), range(slot, slot + 1)
            )
            true_d_all.append(true_d)
            pred_d_all.append(pred_d)
            true_s_all.append(true_s)
            pred_s_all.append(pred_s)
        rolling = monitor.rolling(0)
        offline_rmse = paper_metrics.rmse(
            np.stack(true_d_all), np.stack(pred_d_all),
            np.stack(true_s_all), np.stack(pred_s_all),
        )
        offline_mae = paper_metrics.mae(
            np.stack(true_d_all), np.stack(pred_d_all),
            np.stack(true_s_all), np.stack(pred_s_all),
        )
        assert abs(rolling["rmse"] - offline_rmse) <= 1e-12
        assert abs(rolling["mae"] - offline_mae) <= 1e-12
        per_station = monitor.per_station(0)
        assert per_station["rmse"].shape == (n,)
        assert per_station["mae"].shape == (n,)


def reconcile_error(monitor: QualityMonitor, slot: int, error: float) -> None:
    """One reconciled slot whose forecast is off by ``error`` bikes."""
    truth = np.array([5.0, 5.0])
    monitor.record_forecast(slot, truth + error, truth + error)
    monitor.on_rollover(FakeStore({slot: (truth, truth)}), range(slot, slot + 1))


class TestDrift:
    def test_seeded_drift_fires_exactly_once(self, tmp_path):
        sink = JsonlExporter(tmp_path / "q.jsonl")
        prev = set_sink(sink)
        try:
            monitor = make_monitor(
                window=8, min_samples=2, drift_threshold=1.5,
                baseline=QualityBaseline(rmse=1.0, mae=0.8, samples=100),
            )
            for slot in range(6):  # sustained 4x-baseline error
                reconcile_error(monitor, slot, error=4.0)
            snapshot = monitor.snapshot()
            assert snapshot["drifting"] is True
            assert snapshot["drift_events"] == 1  # edge, not level
        finally:
            sink.close()
            set_sink(prev)
        events = [e for e in read_events(sink.path)
                  if e["name"] == "quality.drift"]
        assert len(events) == 1
        assert events[0]["data"]["ratio"] > 1.5

    def test_recovery_rearms_the_trigger(self):
        monitor = make_monitor(
            window=2, min_samples=1, drift_threshold=1.5,
            baseline=QualityBaseline(rmse=1.0, mae=0.8),
        )
        reconcile_error(monitor, 0, error=4.0)
        assert monitor.snapshot()["drift_events"] == 1
        for slot in (1, 2):  # window of accurate forecasts: recovered
            reconcile_error(monitor, slot, error=0.1)
        assert monitor.snapshot()["drifting"] is False
        reconcile_error(monitor, 3, error=4.0)
        reconcile_error(monitor, 4, error=4.0)
        assert monitor.snapshot()["drift_events"] == 2

    def test_no_baseline_means_no_drift_signal(self):
        monitor = make_monitor(min_samples=1)
        reconcile_error(monitor, 0, error=100.0)
        assert monitor.drift_ratio() is None
        assert monitor.snapshot()["drifting"] is False

    def test_min_samples_gates_the_ratio(self):
        monitor = make_monitor(
            min_samples=3, baseline=QualityBaseline(rmse=1.0, mae=0.8)
        )
        reconcile_error(monitor, 0, error=4.0)
        assert monitor.drift_ratio() is None
        reconcile_error(monitor, 1, error=4.0)
        reconcile_error(monitor, 2, error=4.0)
        assert monitor.drift_ratio() == pytest.approx(4.0)


class TestBaselinePersistence:
    def test_json_round_trip(self):
        baseline = QualityBaseline(rmse=1.25, mae=0.75, samples=42)
        assert QualityBaseline.from_json(baseline.to_json()) == baseline

    def test_checkpoint_embed_and_load(self, tiny_dataset, tmp_path):
        from repro.core import STGNNDJD
        from repro.core.persistence import load_quality_baseline, save_checkpoint

        model = STGNNDJD.from_dataset(tiny_dataset, seed=3)
        path = tmp_path / "model.npz"
        baseline = QualityBaseline(rmse=2.5, mae=1.5, samples=10)
        save_checkpoint(model, path, quality_baseline=baseline)
        assert load_quality_baseline(path) == baseline

        bare = tmp_path / "bare.npz"
        save_checkpoint(model, bare)
        assert load_quality_baseline(bare) is None


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        hist = Registry().histogram("h")
        assert histogram_quantile(hist, 0.99) is None

    def test_quantile_is_bucket_upper_bound(self):
        registry = Registry()
        registry.enabled = True
        hist = registry.timer("h")
        hist.observe(0.004)  # lands in a small bucket
        p99 = histogram_quantile(hist, 0.99)
        assert p99 is not None
        assert p99 >= 0.004  # conservative: never under-reports

    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile(Registry().histogram("h"), 1.5)


class TestEvaluateSlos:
    def test_idle_service_is_healthy(self):
        result = evaluate_slos(SLOConfig(), registry=Registry())
        assert result["healthy"] is True
        assert all(obj["value"] is None for obj in result["objectives"])

    def test_latency_breach_flags_unhealthy(self):
        registry = Registry()
        registry.enabled = True
        registry.counter("serve.requests").inc(10)
        for _ in range(10):
            registry.timer("serve.request_seconds").observe(2.0)
        result = evaluate_slos(
            SLOConfig(p99_latency_seconds=0.01), registry=registry
        )
        assert result["healthy"] is False
        p99 = next(o for o in result["objectives"]
                   if o["name"] == "p99_latency_seconds")
        assert p99["healthy"] is False
        assert p99["value"] > 0.01

    def test_error_budget_burn(self):
        registry = Registry()
        registry.enabled = True
        registry.counter("serve.requests").inc(90)
        registry.counter("serve.rejected").inc(10)
        result = evaluate_slos(SLOConfig(error_budget=0.05), registry=registry)
        burn = next(o for o in result["objectives"]
                    if o["name"] == "error_budget_burn")
        assert burn["value"] == pytest.approx(0.1)
        assert burn["healthy"] is False

    def test_drift_objective_tracks_monitor(self):
        registry = Registry()
        monitor = make_monitor(
            min_samples=1, baseline=QualityBaseline(rmse=1.0, mae=0.8)
        )
        result = evaluate_slos(SLOConfig(), registry=registry, quality=monitor)
        drift = next(o for o in result["objectives"]
                     if o["name"] == "drift_ratio")
        assert drift["healthy"] is True
        reconcile_error(monitor, 0, error=4.0)
        result = evaluate_slos(SLOConfig(), registry=registry, quality=monitor)
        drift = next(o for o in result["objectives"]
                     if o["name"] == "drift_ratio")
        assert drift["healthy"] is False

        # Explicit ceiling: compared as a plain <= objective.
        result = evaluate_slos(
            SLOConfig(max_drift_ratio=10.0), registry=registry, quality=monitor
        )
        drift = next(o for o in result["objectives"]
                     if o["name"] == "drift_ratio")
        assert drift["healthy"] is True

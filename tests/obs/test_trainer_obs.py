"""Trainer/parallel/serving integration with the observability layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import STGNNDJD, Trainer, TrainingConfig
from repro.core.parallel import fork_available
from repro.obs import (
    ObservabilityConfig,
    RunReport,
    default_registry,
    enable_metrics,
    read_events,
)


def fit_instrumented(dataset, tmp_path, run_id: str, workers: int = 0,
                     epochs: int = 2):
    model = STGNNDJD.from_dataset(dataset, seed=3)
    config = TrainingConfig(
        epochs=epochs,
        seed=0,
        workers=workers,
        metrics=ObservabilityConfig(out_dir=str(tmp_path), run_id=run_id),
    )
    history = Trainer(model, dataset, config).fit()
    report = RunReport.load(tmp_path / f"{run_id}.report.json")
    events = read_events(tmp_path / f"{run_id}.events.jsonl", validate=True)
    return history, report, events


class TestInstrumentedTraining:
    def test_report_matches_history_exactly(self, mini_dataset, tmp_path):
        history, report, events = fit_instrumented(mini_dataset, tmp_path, "serial")

        assert [r.train_loss for r in report.epochs] == history.train_loss
        assert [r.val_loss for r in report.epochs] == history.val_loss
        epoch_events = [e for e in events if e["kind"] == "epoch"]
        assert [e["data"]["train_loss"] for e in epoch_events] == history.train_loss
        assert [e["data"]["val_loss"] for e in epoch_events] == history.val_loss

    def test_event_stream_structure(self, mini_dataset, tmp_path):
        _, report, events = fit_instrumented(mini_dataset, tmp_path, "structure")

        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("epoch") == len(report.epochs) == 2
        assert kinds.count("span") == 2  # one per epoch
        assert events[0]["data"]["config"]["epochs"] == 2

    def test_epoch_records_carry_throughput(self, mini_dataset, tmp_path):
        _, report, _ = fit_instrumented(mini_dataset, tmp_path, "throughput")
        for record in report.epochs:
            assert record.samples_per_sec > 0
            assert record.seconds > 0
            assert record.grad_norm >= 0
            assert record.learning_rate == 0.01

    def test_registry_metrics_in_report(self, mini_dataset, tmp_path):
        _, report, _ = fit_instrumented(mini_dataset, tmp_path, "metrics")
        # train epochs + validation both pass through _sample_loss
        assert report.metrics["trainer.samples"]["value"] > 0
        assert report.metrics["span.epoch.seconds"]["count"] == 2
        assert report.extra["buffer_pool"]["takes"] > 0

    def test_telemetry_off_by_default(self, mini_dataset, tmp_path):
        registry = default_registry()
        model = STGNNDJD.from_dataset(mini_dataset, seed=3)
        Trainer(model, mini_dataset, TrainingConfig(epochs=1, seed=0)).fit()
        assert not registry.enabled
        assert registry.counter("trainer.samples").value == 0
        assert list(tmp_path.iterdir()) == []

    def test_global_state_restored_after_fit(self, mini_dataset, tmp_path):
        from repro.obs import active_sink

        fit_instrumented(mini_dataset, tmp_path, "restore", epochs=1)
        assert not default_registry().enabled
        assert active_sink() is None


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestWorkerMergedMetrics:
    def test_worker_counters_equal_serial(self, mini_dataset, tmp_path):
        registry = default_registry()
        _, serial_report, _ = fit_instrumented(mini_dataset, tmp_path, "serial")
        registry.reset()
        _, worker_report, _ = fit_instrumented(
            mini_dataset, tmp_path, "workers", workers=2
        )

        serial_samples = serial_report.metrics["trainer.samples"]["value"]
        worker_samples = worker_report.metrics["trainer.samples"]["value"]
        assert serial_samples > 0
        assert worker_samples == serial_samples

        # Worker-only telemetry shows up through the merge.
        assert worker_report.metrics["parallel.worker_tasks"]["value"] > 0
        assert worker_report.metrics["parallel.worker_busy_seconds"]["value"] > 0
        assert worker_report.metrics["parallel.batches"]["value"] > 0
        assert worker_report.metrics["parallel.reduce_seconds"]["count"] > 0


class TestServingTelemetry:
    def test_predict_latency_histogram(self, mini_dataset, tmp_path):
        registry = default_registry()
        model = STGNNDJD.from_dataset(mini_dataset, seed=3)
        trainer = Trainer(model, mini_dataset, TrainingConfig(epochs=1, seed=0))
        t = int(mini_dataset.split_indices()[2][0])

        trainer.predict(t)  # disabled: nothing recorded
        assert registry.histogram("serving.predict_seconds",
                                  bounds=trainer._predict_timer.bounds).count == 0

        enable_metrics(True)
        trainer.predict(t)
        trainer.predict(t)
        enable_metrics(False)

        hist = trainer._predict_timer
        assert hist.count == 2
        assert hist.sum > 0
        assert registry.gauge("pool.takes").value == trainer._pool.takes
        assert registry.gauge("pool.peak_outstanding").value \
            == trainer._pool.peak_outstanding

    def test_predictions_unchanged_by_metrics(self, mini_dataset):
        t = int(mini_dataset.split_indices()[2][0])
        model = STGNNDJD.from_dataset(mini_dataset, seed=3)
        trainer = Trainer(model, mini_dataset, TrainingConfig(epochs=1, seed=0))
        demand_off, supply_off = trainer.predict(t)
        enable_metrics(True)
        demand_on, supply_on = trainer.predict(t)
        enable_metrics(False)
        np.testing.assert_array_equal(demand_off, demand_on)
        np.testing.assert_array_equal(supply_off, supply_on)

"""Op-level profiler: exact dispatch counting, restoration, coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import registry as backend_registry
from repro.obs import FUSED_OPS, profile
from repro.tensor import Tensor, ops


class TestDispatchCounting:
    def test_counts_sum_to_dispatched_ops(self):
        """One forward+backward over a hand-countable graph: exactly one
        matmul, one add, one relu and one sum are dispatched (backward
        closures run raw numpy and must not be counted)."""
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        w = Tensor(np.ones((4, 2)), requires_grad=True)
        with profile() as prof:
            loss = (x @ w).relu().sum()
            loss.backward()
        assert {name: s.calls for name, s in prof.stats.items()} == {
            "matmul": 1, "relu": 1, "sum": 1,
        }
        assert prof.total_calls == 3
        assert prof.total_calls == sum(s.calls for s in prof.stats.values())

    def test_internal_dispatch_counted(self):
        # softmax routes its last-axis case to the fused row_softmax:
        # both genuinely ran, both are counted.
        a = Tensor(np.random.default_rng(0).random((4, 4)), requires_grad=True)
        with profile() as prof:
            ops.softmax(a, axis=-1)
        assert prof.stats["softmax"].calls == 1
        assert prof.stats["row_softmax"].calls == 1

    def test_bytes_and_seconds_recorded(self):
        a = Tensor(np.ones((64, 64)))
        with profile() as prof:
            b = a + a
        assert prof.stats["add"].bytes == b.data.nbytes
        assert prof.stats["add"].seconds >= 0
        assert prof.total_bytes == b.data.nbytes

    def test_model_step_counts_are_deterministic(self, mini_dataset):
        """Profiling a real forward+backward twice over the same graph
        yields identical per-op counts — the tally tracks dispatches,
        not timing noise."""
        from repro import STGNNDJD, Trainer

        trainer = Trainer(STGNNDJD.from_dataset(mini_dataset, seed=0), mini_dataset)
        t = int(mini_dataset.split_indices()[0][0])

        def profiled_step():
            with profile() as prof:
                loss = trainer._sample_loss(t)
                loss.backward(np.asarray(1.0))
            trainer.optimizer.zero_grad()
            return {name: s.calls for name, s in prof.stats.items()}

        first, second = profiled_step(), profiled_step()
        assert first == second
        assert sum(first.values()) > 0


class TestFusedCoverage:
    def test_coverage_ratio(self):
        x = Tensor(np.ones((3, 4)))
        w = Tensor(np.ones((4, 2)))
        with profile() as prof:
            ops.linear(x, w)     # fused
            _ = x + x            # not fused
        assert prof.fused_coverage() == pytest.approx(0.5)
        assert "linear" in FUSED_OPS

    def test_empty_profile_coverage_zero(self):
        with profile() as prof:
            pass
        assert prof.fused_coverage() == 0.0
        assert prof.stats == {}


class TestInstallation:
    def test_wrappers_installed_and_removed(self):
        original = backend_registry.get_op("matmul")
        with profile():
            wrapped = backend_registry.get_op("matmul")
            assert wrapped is not original
            assert wrapped.__wrapped__ is original
            assert ops.matmul is wrapped
        assert backend_registry.get_op("matmul") is original
        assert ops.matmul is original

    def test_from_import_bindings_rebound(self):
        # flow_convolution holds `gated_fusion` by from-import; the
        # profiler must intercept (and then restore) that binding too.
        from repro.graphs import flow_convolution

        original = flow_convolution.gated_fusion
        with profile():
            assert flow_convolution.gated_fusion is not original
            assert flow_convolution.gated_fusion.__wrapped__ is original
        assert flow_convolution.gated_fusion is original

    def test_nesting_rejected(self):
        with profile():
            with pytest.raises(RuntimeError, match="nest"):
                with profile():
                    pass
        # the guard resets: profiling works again afterwards
        with profile() as prof:
            Tensor(np.ones(2)) + 1
        assert prof.stats["add"].calls == 1

    def test_restores_on_exception(self):
        original = ops.add
        with pytest.raises(RuntimeError):
            with profile():
                raise RuntimeError("boom")
        assert ops.add is original

    def test_table_renders(self):
        with profile() as prof:
            Tensor(np.ones(4)).sum()
        table = prof.table()
        assert "sum" in table and "total" in table

"""Metrics registry: semantics, disabled no-op, snapshot/merge/drain."""

from __future__ import annotations

import pytest

from repro.obs import Registry, metrics_scope, prometheus_text
from repro.obs.registry import TIME_BUCKETS


def enabled_registry() -> Registry:
    return Registry(enabled=True)


class TestCounter:
    def test_accumulates(self):
        reg = enabled_registry()
        counter = reg.counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_same_object(self):
        reg = enabled_registry()
        assert reg.counter("a") is reg.counter("a")

    def test_negative_increment_rejected(self):
        reg = enabled_registry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_kind_mismatch_raises(self):
        reg = enabled_registry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")


class TestGauge:
    def test_last_write_wins(self):
        reg = enabled_registry()
        gauge = reg.gauge("utilisation")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75


class TestHistogram:
    def test_bucketing(self):
        reg = enabled_registry()
        hist = reg.histogram("latency", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 50.0):
            hist.observe(value)
        # <=1, <=10, +Inf (bounds are inclusive upper edges)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(56.5)
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.mean == pytest.approx(56.5 / 4)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            enabled_registry().histogram("h", bounds=(2.0, 1.0))

    def test_conflicting_bounds_rejected(self):
        reg = enabled_registry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_timer_uses_time_buckets(self):
        reg = enabled_registry()
        timer = reg.timer("step")
        assert timer.bounds == TIME_BUCKETS
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.sum >= 0


class TestDisabled:
    def test_recording_is_a_noop(self):
        reg = Registry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 0.0
        assert snap["g"]["value"] == 0.0
        assert snap["h"]["count"] == 0

    def test_flag_flip_reactivates_existing_metrics(self):
        reg = Registry(enabled=False)
        counter = reg.counter("c")
        counter.inc()
        reg.enabled = True
        counter.inc()
        assert counter.value == 1.0

    def test_metrics_scope_restores(self):
        from repro.obs import default_registry, metrics_enabled

        assert not metrics_enabled()
        with metrics_scope(True) as reg:
            assert reg is default_registry()
            assert metrics_enabled()
        assert not metrics_enabled()


class TestSnapshotMerge:
    def test_merge_adds_counters_and_histograms(self):
        a, b = enabled_registry(), enabled_registry()
        for reg, n in ((a, 2), (b, 3)):
            for _ in range(n):
                reg.counter("samples").inc()
                reg.histogram("h", bounds=(1.0,)).observe(0.5)
        a.merge(b.snapshot())
        assert a.counter("samples").value == 5
        hist = a.histogram("h", bounds=(1.0,))
        assert hist.count == 5
        assert hist.bucket_counts == [5, 0]
        assert hist.min == 0.5 and hist.max == 0.5

    def test_merge_creates_missing_metrics(self):
        a, b = enabled_registry(), enabled_registry()
        b.counter("only.in.b").inc(4)
        a.merge(b.snapshot())
        assert a.counter("only.in.b").value == 4

    def test_merge_gauge_takes_incoming(self):
        a, b = enabled_registry(), enabled_registry()
        a.gauge("g").set(1)
        b.gauge("g").set(2)
        a.merge(b.snapshot())
        assert a.gauge("g").value == 2

    def test_drain_resets(self):
        reg = enabled_registry()
        reg.counter("c").inc(7)
        delta = reg.drain()
        assert delta["c"]["value"] == 7
        assert reg.counter("c").value == 0
        assert reg.drain()["c"]["value"] == 0

    def test_empty_histogram_min_max_none(self):
        reg = enabled_registry()
        reg.histogram("h")
        snap = reg.snapshot()["h"]
        assert snap["min"] is None and snap["max"] is None

    def test_worker_delta_protocol_equals_serial(self):
        """The fork-merge contract, in miniature: local drains summed in
        the parent equal one process doing all the work."""
        serial = enabled_registry()
        for _ in range(10):
            serial.counter("samples").inc()

        parent = enabled_registry()
        workers = [enabled_registry() for _ in range(3)]
        shards = (4, 3, 3)
        for worker, shard in zip(workers, shards):
            for _ in range(shard):
                worker.counter("samples").inc()
            parent.merge(worker.drain())
        assert parent.counter("samples").value == serial.counter("samples").value


class TestPrometheus:
    def test_exposition_format(self):
        reg = enabled_registry()
        reg.counter("trainer.samples").inc(5)
        reg.gauge("pool.hit-rate").set(0.5)
        hist = reg.histogram("latency", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = prometheus_text(reg)
        assert "# TYPE trainer_samples_total counter" in text
        assert "trainer_samples_total 5.0" in text
        assert "pool_hit_rate 0.5" in text
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(Registry()) == ""

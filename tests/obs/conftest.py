"""Obs test fixtures: keep the process-global telemetry state clean."""

from __future__ import annotations

import pytest

from repro.obs import default_registry, enable_metrics, set_sink


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Reset the default registry and sink around every obs test."""
    registry = default_registry()
    previous = enable_metrics(False)
    registry.reset()
    prev_sink = set_sink(None)
    yield registry
    enable_metrics(previous)
    registry.reset()
    set_sink(prev_sink)

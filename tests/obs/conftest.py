"""Obs test fixtures: keep the process-global telemetry state clean."""

from __future__ import annotations

import pytest

from repro.obs import default_registry, enable_metrics, enable_tracing, set_sink
from repro.obs.trace import end_worker_spans


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Reset the registry, sink and trace state around every obs test."""
    registry = default_registry()
    previous = enable_metrics(False)
    registry.reset()
    prev_sink = set_sink(None)
    prev_trace = enable_tracing(False)
    end_worker_spans()
    yield registry
    enable_metrics(previous)
    registry.reset()
    set_sink(prev_sink)
    enable_tracing(prev_trace if prev_trace is not None else False)
    end_worker_spans()

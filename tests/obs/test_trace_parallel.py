"""Tracing across the fork boundary: worker spans, crash recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import STGNNDJD, Trainer, TrainingConfig
from repro.core.parallel import GradientWorkerPool, fork_available
from repro.faults import FaultPlan, injected
from repro.obs import JsonlExporter, ObservabilityConfig, read_events, set_sink
from repro.obs.trace import TraceConfig, trace_scope, trace_span, trace_spans

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def traced_fit(dataset, tmp_path, run_id: str, workers: int):
    model = STGNNDJD.from_dataset(dataset, seed=3)
    config = TrainingConfig(
        epochs=2, batch_size=8, seed=0, workers=workers,
        metrics=ObservabilityConfig(out_dir=str(tmp_path), run_id=run_id,
                                    trace=True),
    )
    Trainer(model, dataset, config).fit()
    return trace_spans(read_events(tmp_path / f"{run_id}.events.jsonl"))


class TestWorkerSpanMerge:
    def test_worker_spans_nest_under_their_epoch(self, mini_dataset, tmp_path):
        spans = traced_fit(mini_dataset, tmp_path, "traced", workers=2)
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span["data"])

        [fit] = by_name["trainer.fit"]
        epochs = by_name["trainer.epoch"]
        assert len(epochs) == 2
        assert all(e["parent_span_id"] == fit["span_id"] for e in epochs)
        assert by_name["trainer.batch"]

        workers = by_name["parallel.worker"]
        assert workers  # forked spans came home and were emitted
        epoch_span_ids = {e["span_id"] for e in epochs}
        for worker in workers:
            assert worker["trace_id"] == fit["trace_id"]
            assert worker["parent_span_id"] in epoch_span_ids
            assert worker["attrs"]["samples"] > 0

        # one trace end to end, every span id minted exactly once
        assert {s["data"]["trace_id"] for s in spans} == {fit["trace_id"]}
        span_ids = [s["data"]["span_id"] for s in spans]
        assert len(span_ids) == len(set(span_ids))

    def test_tracing_off_ships_no_spans(self, mini_dataset, tmp_path):
        model = STGNNDJD.from_dataset(mini_dataset, seed=3)
        config = TrainingConfig(
            epochs=1, batch_size=8, seed=0, workers=2,
            metrics=ObservabilityConfig(out_dir=str(tmp_path), run_id="dark"),
        )
        Trainer(model, mini_dataset, config).fit()
        assert trace_spans(read_events(tmp_path / "dark.events.jsonl")) == []


class TestWorkerCrashRecovery:
    def test_no_orphan_or_duplicate_spans_after_crash(
        self, mini_dataset, tmp_path
    ):
        trainer = Trainer(
            STGNNDJD.from_dataset(mini_dataset, seed=3, fcg_layers=1,
                                  pcg_layers=1, num_heads=2, dropout=0.0),
            mini_dataset,
            TrainingConfig(epochs=1, batch_size=8, seed=5, workers=2),
        )
        batch = mini_dataset.split_indices()[0][:6]
        plan = FaultPlan(seed=0).on(
            "parallel.worker0.sample", action="crash", at=1
        )
        sink = JsonlExporter(tmp_path / "crash.jsonl")
        prev_sink = set_sink(sink)
        try:
            with trace_scope(TraceConfig()):
                trainer.optimizer.zero_grad()
                with trace_span("test.batch") as root:
                    # Arm before the fork so workers inherit the plan.
                    with injected(plan):
                        pool = GradientWorkerPool(trainer, 2)
                        pool.accumulate_gradients(batch, 1.0 / len(batch))
                    pool.close()
        finally:
            set_sink(prev_sink)
            sink.close()

        spans = trace_spans(read_events(sink.path))
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span["data"])

        # the crashed worker's buffered spans were discarded, the
        # surviving worker's were emitted once, and the parent recovered
        # the lost shard under its own span — every sample traced
        # exactly once, no orphans, no duplicates.
        [recover] = by_name["parallel.recover"]
        workers = by_name.get("parallel.worker", [])
        traced = recover["attrs"]["samples"] + sum(
            w["attrs"]["samples"] for w in workers
        )
        assert traced == len(batch)
        root_data = by_name["test.batch"][0]
        for data in workers + [recover]:
            assert data["trace_id"] == root_data["trace_id"]
        span_ids = [s["data"]["span_id"] for s in spans]
        assert len(span_ids) == len(set(span_ids))

    def test_clean_run_traces_every_sample_once(self, mini_dataset, tmp_path):
        trainer = Trainer(
            STGNNDJD.from_dataset(mini_dataset, seed=3, fcg_layers=1,
                                  pcg_layers=1, num_heads=2, dropout=0.0),
            mini_dataset,
            TrainingConfig(epochs=1, batch_size=8, seed=5, workers=2),
        )
        batch = mini_dataset.split_indices()[0][:6]
        sink = JsonlExporter(tmp_path / "clean.jsonl")
        prev_sink = set_sink(sink)
        try:
            with trace_scope(TraceConfig()):
                trainer.optimizer.zero_grad()
                with trace_span("test.batch"):
                    pool = GradientWorkerPool(trainer, 2)
                    pool.accumulate_gradients(batch, 1.0 / len(batch))
                pool.close()
        finally:
            set_sink(prev_sink)
            sink.close()
        spans = trace_spans(read_events(sink.path))
        workers = [s["data"] for s in spans if s["name"] == "parallel.worker"]
        assert len(workers) == 2
        assert sum(w["attrs"]["samples"] for w in workers) == len(batch)
        assert not any(s["name"] == "parallel.recover" for s in spans)

"""Span nesting, metric recording and event emission."""

from __future__ import annotations

import pytest

from repro.obs import (
    JsonlExporter,
    current_span,
    enable_metrics,
    read_events,
    sink_scope,
    span,
    span_stack,
)


class TestNesting:
    def test_paths_nest_and_unwind(self):
        assert current_span() is None
        with span("epoch"):
            assert current_span() == "epoch"
            with span("batch"):
                assert current_span() == "epoch/batch"
                assert span_stack() == ("epoch", "batch")
            assert current_span() == "epoch"
        assert current_span() is None

    def test_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        assert current_span() is None

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError):
            with span("a/b"):
                pass


class TestRecording:
    def test_records_timer_metric_when_enabled(self, clean_telemetry):
        enable_metrics(True)
        with span("epoch"):
            with span("backward"):
                pass
        metrics = clean_telemetry.metrics()
        assert metrics["span.epoch.seconds"].count == 1
        assert metrics["span.epoch/backward.seconds"].count == 1
        assert (metrics["span.epoch.seconds"].sum
                >= metrics["span.epoch/backward.seconds"].sum)

    def test_no_metrics_when_disabled(self, clean_telemetry):
        with span("quiet"):
            pass
        assert "span.quiet.seconds" not in clean_telemetry

    def test_emits_span_events(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with sink_scope(JsonlExporter(path)) as sink:
            with span("epoch", epoch=3):
                with span("batch"):
                    pass
            sink.close()
        events = read_events(path)
        # Inner span closes (and is emitted) first.
        assert [e["name"] for e in events] == ["epoch/batch", "epoch"]
        assert events[0]["data"]["depth"] == 2
        assert events[1]["data"]["epoch"] == 3
        assert events[1]["data"]["duration_seconds"] >= 0

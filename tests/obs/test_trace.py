"""Distributed tracing: header parsing, spans, sampling, CLI."""

from __future__ import annotations

import pytest

from repro.obs import set_sink
from repro.obs.events import JsonlExporter, read_events
from repro.obs.trace import (
    NULL_SPAN,
    TraceConfig,
    TraceContext,
    begin_worker_spans,
    current_context,
    discard_spans,
    drain_spans,
    emit_spans,
    enable_tracing,
    end_worker_spans,
    format_traceparent,
    group_traces,
    main as trace_main,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    record_span,
    render_trace,
    seed_trace_ids,
    trace_scope,
    trace_span,
    trace_spans,
    trace_status,
    tracing_enabled,
)

VALID = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


@pytest.fixture(autouse=True)
def tracing_off():
    """Every test starts from tracing-disabled, worker mode cleared."""
    previous = enable_tracing(False)
    end_worker_spans()
    yield
    enable_tracing(previous if previous is not None else False)
    end_worker_spans()


class TestTraceparent:
    def test_round_trip(self):
        ctx = parse_traceparent(VALID)
        assert ctx == TraceContext(
            "0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331", True
        )
        assert format_traceparent(ctx) == VALID

    def test_unsampled_flags(self):
        ctx = parse_traceparent(VALID[:-2] + "00")
        assert ctx is not None and ctx.sampled is False
        assert format_traceparent(ctx).endswith("-00")

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",  # wrong field lengths
        VALID.replace("-01", ""),  # missing flags
        "ff-" + VALID[3:],  # version ff is forbidden
        "zz-" + VALID[3:],  # non-hex version
        "00-" + "0" * 32 + "-b7ad6b7169203331-01",  # all-zero trace id
        "00-0af7651916cd43dd8448eb211c80319c-" + "0" * 16 + "-01",
        VALID + "-extra",
        VALID.replace("b7ad", "B7AD") + "x",  # trailing junk
    ])
    def test_malformed_parses_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_case_insensitive(self):
        assert parse_traceparent(VALID.upper()) is not None


class TestIds:
    def test_deterministic_after_seeding(self):
        seed_trace_ids(99)
        first = (new_trace_id(), new_span_id())
        seed_trace_ids(99)
        assert (new_trace_id(), new_span_id()) == first

    def test_shapes(self):
        seed_trace_ids(1)
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16


class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        assert trace_span("anything") is NULL_SPAN
        with trace_span("nested") as span:
            span.set(key="value")
            assert span.ctx is None
        assert current_context() is None

    def test_nesting_builds_parent_chain(self, tmp_path):
        sink = JsonlExporter(tmp_path / "t.jsonl")
        set_sink(sink)
        with trace_scope(TraceConfig()):
            seed_trace_ids(5)
            with trace_span("outer") as outer:
                assert current_context() == outer.ctx
                with trace_span("inner") as inner:
                    assert inner.ctx.trace_id == outer.ctx.trace_id
                    assert inner.parent_span_id == outer.ctx.span_id
            assert current_context() is None
        sink.close()
        spans = trace_spans(read_events(sink.path))
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[1]["data"]["parent_span_id"] is None

    def test_explicit_parent_and_links(self, tmp_path):
        sink = JsonlExporter(tmp_path / "t.jsonl")
        set_sink(sink)
        parent = TraceContext("ab" * 16, "cd" * 8, True)
        with trace_scope(TraceConfig()):
            with trace_span("child", parent=parent):
                assert current_context().trace_id == parent.trace_id
            with trace_span("batch", parent=None, links=(parent,)) as batch:
                assert batch.ctx.trace_id != parent.trace_id
        sink.close()
        spans = {s["name"]: s["data"] for s in trace_spans(read_events(sink.path))}
        assert spans["child"]["parent_span_id"] == parent.span_id
        assert spans["batch"]["links"] == [[parent.trace_id, parent.span_id]]

    def test_exception_marks_span_errored(self, tmp_path):
        sink = JsonlExporter(tmp_path / "t.jsonl")
        set_sink(sink)
        with trace_scope(TraceConfig()):
            with pytest.raises(ValueError):
                with trace_span("boom"):
                    raise ValueError("nope")
        sink.close()
        [span] = trace_spans(read_events(sink.path))
        assert span["data"]["attrs"]["status"] == "error"
        assert span["data"]["attrs"]["error"] == "ValueError"

    def test_sample_rate_zero_records_nothing(self, tmp_path):
        sink = JsonlExporter(tmp_path / "t.jsonl")
        set_sink(sink)
        with trace_scope(TraceConfig(sample_rate=0.0)):
            with trace_span("root") as root:
                assert root.recorded is False
                # children inherit the negative decision
                with trace_span("child") as child:
                    assert child.recorded is False
            assert record_span("after", root.ctx, 0.0, 1.0) is None
        sink.close()
        assert trace_spans(read_events(sink.path)) == []

    def test_unsampled_links_keep_batch_unrecorded(self):
        with trace_scope(TraceConfig()):
            unsampled = TraceContext("ab" * 16, "cd" * 8, False)
            with trace_span("batch", parent=None, links=(unsampled,)) as span:
                assert span.recorded is False

    def test_record_span_after_the_fact(self, tmp_path):
        sink = JsonlExporter(tmp_path / "t.jsonl")
        set_sink(sink)
        parent = TraceContext("ab" * 16, "cd" * 8, True)
        with trace_scope(TraceConfig()):
            ctx = record_span("queue.wait", parent, 123.0, 0.25, depth=3)
            assert ctx.trace_id == parent.trace_id
        sink.close()
        [span] = trace_spans(read_events(sink.path))
        assert span["data"]["start_ts"] == 123.0
        assert span["data"]["duration_seconds"] == 0.25
        assert span["data"]["parent_span_id"] == parent.span_id

    def test_status_reports_config(self):
        assert trace_status() == {"enabled": False}
        with trace_scope(TraceConfig(sample_rate=0.5, profile_ops=False)):
            assert tracing_enabled()
            status = trace_status()
            assert status["sample_rate"] == 0.5
            assert status["profile_ops"] is False


class TestWorkerSpanBuffer:
    def test_spans_buffer_then_emit_in_parent(self, tmp_path):
        sink = JsonlExporter(tmp_path / "t.jsonl")
        set_sink(sink)
        parent = TraceContext("ab" * 16, "cd" * 8, True)
        with trace_scope(TraceConfig()):
            begin_worker_spans(seed=7)
            assert current_context() is None  # inherited context cleared
            with trace_span("work", parent=parent):
                pass
            spans = drain_spans()
            assert len(spans) == 1
            assert drain_spans() is None  # buffer swapped out, now empty
            # nothing hit the sink while buffered
            sink._file.flush()
            assert trace_spans(read_events(sink.path)) == []
            emit_spans(spans)
        sink.close()
        [span] = trace_spans(read_events(sink.path))
        assert span["name"] == "work"
        assert span["data"]["parent_span_id"] == parent.span_id

    def test_discard_drops_buffered_spans(self):
        with trace_scope(TraceConfig()):
            begin_worker_spans(seed=8)
            with trace_span("doomed", parent=TraceContext("ab" * 16, "cd" * 8)):
                pass
            discard_spans()
            assert drain_spans() is None

    def test_reseeded_ids_diverge_between_workers(self):
        begin_worker_spans(seed=1)
        id_a = new_span_id()
        begin_worker_spans(seed=2)
        assert new_span_id() != id_a
        drain_spans()


class TestCli:
    @pytest.fixture
    def stream(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        sink = JsonlExporter(path)
        set_sink(sink)
        with trace_scope(TraceConfig()):
            seed_trace_ids(11)
            with trace_span("http.predict", method="GET") as request:
                record_span("serve.queue", request.ctx, request.start_ts, 0.001)
            with trace_span("serve.batch", parent=None,
                            links=(request.ctx,), batch_size=1):
                with trace_span("serve.forward", slot=9):
                    pass
        sink.close()
        return path

    def test_render_inlines_linked_batch(self, stream):
        traces = group_traces(trace_spans(read_events(stream)))
        request_id = next(
            tid for tid, group in traces.items()
            if any(e["name"] == "http.predict" for e in group)
        )
        text = render_trace(traces, request_id)
        assert "http.predict" in text
        assert "serve.queue" in text
        assert "↳ serve.batch" in text  # linked from the other trace
        assert "serve.forward" in text

    def test_cli_list_and_render(self, stream, capsys):
        assert trace_main([str(stream), "--list"]) == 0
        assert "http.predict" in capsys.readouterr().out
        assert trace_main([str(stream)]) == 0
        assert "serve.forward" in capsys.readouterr().out

    def test_cli_errors(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "missing.jsonl")]) == 1
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trace_main([str(empty)]) == 1
        capsys.readouterr()

"""Classical baselines: HA, ARIMA, GBRT components."""

import numpy as np
import pytest

from repro.baselines import (
    ArimaBaseline,
    ArimaModel,
    ArimaOrder,
    GBRTBaseline,
    GBRTConfig,
    GradientBoostedTrees,
    HistoricalAverage,
    RegressionTree,
)


class TestHistoricalAverage:
    def test_predicts_profile_mean(self, tiny_dataset):
        ha = HistoricalAverage(tiny_dataset).fit()
        train_idx, _, _ = tiny_dataset.split_indices()
        spd = tiny_dataset.slots_per_day
        t = int(train_idx[0])
        slot = t % spd
        same_slot = train_idx[train_idx % spd == slot]
        expected = tiny_dataset.demand[same_slot].mean(axis=0)
        demand, _ = ha.predict(t)
        np.testing.assert_allclose(demand, expected)

    def test_periodicity(self, tiny_dataset):
        ha = HistoricalAverage(tiny_dataset).fit()
        spd = tiny_dataset.slots_per_day
        d1, s1 = ha.predict(spd * 8)
        d2, s2 = ha.predict(spd * 9)
        np.testing.assert_allclose(d1, d2)

    def test_unfitted_rejected(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            HistoricalAverage(tiny_dataset).predict(0)


class TestArimaModel:
    def test_learns_ar1_process(self):
        """Fit to a strongly AR(1) series; forecast must track it."""
        rng = np.random.default_rng(0)
        series = np.zeros(400)
        for i in range(1, 400):
            series[i] = 0.8 * series[i - 1] + rng.normal(0, 0.1)
        model = ArimaModel(ArimaOrder(p=2, d=0, q=0)).fit(series)
        prediction = model.forecast_next(series)
        assert prediction == pytest.approx(0.8 * series[-1], abs=0.3)

    def test_differencing_handles_trend(self):
        series = np.arange(200, dtype=float)  # deterministic trend
        model = ArimaModel(ArimaOrder(p=2, d=1, q=0)).fit(series)
        prediction = model.forecast_next(series)
        assert prediction == pytest.approx(200.0, abs=1.0)

    def test_short_series_falls_back_to_mean(self):
        model = ArimaModel(ArimaOrder()).fit(np.array([3.0, 3.0, 3.0]))
        assert np.isfinite(model.forecast_next(np.array([3.0, 3.0, 3.0])))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ArimaOrder(p=0)

    def test_unfitted_forecast_rejected(self):
        with pytest.raises(RuntimeError):
            ArimaModel(ArimaOrder()).forecast_next(np.zeros(10))


class TestArimaBaseline:
    def test_predictions_nonnegative(self, tiny_dataset):
        arima = ArimaBaseline(tiny_dataset).fit()
        _, _, test_idx = tiny_dataset.split_indices()
        demand, supply = arima.predict(int(test_idx[0]))
        assert (demand >= 0).all() and (supply >= 0).all()

    def test_shapes(self, tiny_dataset):
        arima = ArimaBaseline(tiny_dataset).fit()
        _, _, test_idx = tiny_dataset.split_indices()
        demand, supply = arima.predict(int(test_idx[0]))
        assert demand.shape == (tiny_dataset.num_stations,)


class TestRegressionTree:
    def test_fits_step_function(self, rng):
        x = rng.uniform(0, 1, size=(400, 1))
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        tree = RegressionTree(max_depth=2, min_samples_leaf=5, rng=rng).fit(x, y)
        pred = tree.predict(np.array([[0.25], [0.75]]))
        assert pred[0] == pytest.approx(0.0, abs=0.5)
        assert pred[1] == pytest.approx(10.0, abs=0.5)

    def test_depth_zero_like_behavior(self, rng):
        x = rng.uniform(0, 1, size=(50, 2))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=1, min_samples_leaf=100, rng=rng).fit(x, y)
        # min_samples_leaf too large to split -> constant prediction.
        np.testing.assert_allclose(tree.predict(x), np.full(50, y.mean()))

    def test_respects_min_samples_leaf(self, rng):
        x = np.linspace(0, 1, 40).reshape(-1, 1)
        y = (x[:, 0] > 0.05).astype(float)  # split would isolate 2 points
        tree = RegressionTree(max_depth=3, min_samples_leaf=10, rng=rng).fit(x, y)
        # The best valid split keeps >= 10 per side.
        root = tree._root
        if root.feature is not None:
            left_count = (x[:, 0] <= root.threshold).sum()
            assert left_count >= 10 and len(x) - left_count >= 10

    def test_unfitted_rejected(self, rng):
        with pytest.raises(RuntimeError):
            RegressionTree(2, 2, rng).predict(np.zeros((1, 1)))


class TestGradientBoosting:
    def test_reduces_training_error_over_rounds(self, rng):
        x = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
        few = GradientBoostedTrees(GBRTConfig(num_trees=2), seed=0).fit(x, y)
        many = GradientBoostedTrees(GBRTConfig(num_trees=60), seed=0).fit(x, y)
        err_few = np.mean((few.predict(x) - y) ** 2)
        err_many = np.mean((many.predict(x) - y) ** 2)
        assert err_many < err_few

    def test_learns_nonlinear_function(self, rng):
        x = rng.uniform(-2, 2, size=(500, 1))
        y = x[:, 0] ** 2
        model = GradientBoostedTrees(GBRTConfig(num_trees=80, max_depth=3), seed=0)
        model.fit(x, y)
        pred = model.predict(np.array([[0.0], [1.5]]))
        assert pred[0] == pytest.approx(0.0, abs=0.5)
        assert pred[1] == pytest.approx(2.25, abs=0.7)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GBRTConfig(num_trees=0)
        with pytest.raises(ValueError):
            GBRTConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            GBRTConfig(subsample=0.0)


class TestGBRTBaseline:
    def test_feature_recipe_width(self, tiny_dataset):
        baseline = GBRTBaseline(tiny_dataset, GBRTConfig(recent_lags=4, daily_lags=2))
        features = baseline._features_at(tiny_dataset.min_history)
        # 2*(recent + daily) + slot-of-day column.
        assert features.shape == (tiny_dataset.num_stations, 2 * (4 + 2) + 1)

    def test_fit_predict(self, tiny_dataset):
        config = GBRTConfig(num_trees=10, recent_lags=4, daily_lags=1)
        baseline = GBRTBaseline(tiny_dataset, config).fit()
        _, _, test_idx = tiny_dataset.split_indices()
        demand, supply = baseline.predict(int(test_idx[0]))
        assert demand.shape == (tiny_dataset.num_stations,)
        assert (demand >= 0).all()

    def test_unfitted_rejected(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            GBRTBaseline(tiny_dataset).predict(50)

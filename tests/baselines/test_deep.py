"""Deep baselines: shared interface, shapes, trainability, graph builders."""

import numpy as np
import pytest

from repro.baselines import (
    DEEP_BASELINES,
    ASTGCNBaseline,
    BaselineDims,
    GBikeBaseline,
    GCNNBaseline,
    STSGCNBaseline,
    build_block_adjacency,
    correlation_adjacency,
    distance_adjacency,
    interaction_adjacency,
    normalized_adjacency,
)
from repro.core import Trainer, TrainingConfig
from repro.tensor import no_grad


class TestBaselineDims:
    def test_from_dataset_clamps_windows(self, tiny_dataset):
        dims = BaselineDims.from_dataset(tiny_dataset, history=1000, daily=1000)
        assert dims.history == tiny_dataset.config.short_window
        assert dims.daily == tiny_dataset.config.long_days

    def test_positive_scale(self, tiny_dataset):
        assert BaselineDims.from_dataset(tiny_dataset).input_scale > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BaselineDims(1, 4, 2, 1.0)
        with pytest.raises(ValueError):
            BaselineDims(4, 0, 2, 1.0)
        with pytest.raises(ValueError):
            BaselineDims(4, 4, 2, 0.0)


class TestGraphBuilders:
    def test_normalized_adjacency_symmetric(self, tiny_dataset):
        a = normalized_adjacency(distance_adjacency(tiny_dataset))
        np.testing.assert_allclose(a, a.T, atol=1e-12)

    def test_normalized_adjacency_spectral_bound(self, tiny_dataset):
        a = normalized_adjacency(distance_adjacency(tiny_dataset))
        eigenvalues = np.linalg.eigvalsh(a)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_normalized_adjacency_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_distance_adjacency_locality(self, tiny_dataset):
        a = distance_adjacency(tiny_dataset)
        d = tiny_dataset.registry.distance_matrix()
        # Nonzero entries must correspond to smaller distances than the
        # largest zeroed entry (threshold monotone in distance).
        if (a > 0).any() and (a == 0).any():
            off = ~np.eye(len(a), dtype=bool)
            assert d[off][a[off] > 0].mean() <= d[off][a[off] == 0].mean()

    def test_correlation_adjacency_bounded(self, tiny_dataset):
        a = correlation_adjacency(tiny_dataset)
        assert (a >= 0).all() and (a <= 1.0).all()
        assert np.diag(a).sum() == 0

    def test_interaction_adjacency_normalised(self, tiny_dataset):
        a = interaction_adjacency(tiny_dataset)
        assert a.max() <= 1.0
        assert (a >= 0).all()

    def test_block_adjacency_structure(self):
        spatial = np.array([[0.0, 1.0], [1.0, 0.0]])
        block = build_block_adjacency(spatial, window=3)
        assert block.shape == (6, 6)
        np.testing.assert_allclose(block[0:2, 0:2], spatial)  # diagonal block
        np.testing.assert_allclose(block[0:2, 2:4], np.eye(2))  # temporal link
        np.testing.assert_allclose(block[0:2, 4:6], np.zeros((2, 2)))  # 2 hops

    def test_block_adjacency_rejects_bad_window(self):
        with pytest.raises(ValueError):
            build_block_adjacency(np.zeros((2, 2)), window=0)


class TestDeepBaselineInterface:
    @pytest.mark.parametrize("name", sorted(DEEP_BASELINES))
    def test_forward_shapes(self, name, tiny_dataset):
        model = DEEP_BASELINES[name](tiny_dataset, seed=0)
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        demand, supply = model(sample)
        n = tiny_dataset.num_stations
        assert demand.shape == (n,)
        assert supply.shape == (n,)
        assert np.isfinite(demand.data).all()

    @pytest.mark.parametrize("name", sorted(DEEP_BASELINES))
    def test_gradients_flow(self, name, tiny_dataset):
        model = DEEP_BASELINES[name](tiny_dataset, seed=0)
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        demand, supply = model(sample)
        (demand.sum() + supply.sum()).backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    @pytest.mark.parametrize("name", ["MLP", "GCNN", "GBike"])
    def test_one_epoch_reduces_loss(self, name, mini_dataset):
        model = DEEP_BASELINES[name](mini_dataset, seed=0)
        trainer = Trainer(
            model, mini_dataset,
            TrainingConfig(epochs=3, max_batches_per_epoch=3, seed=0, patience=10),
        )
        history = trainer.fit()
        assert history.train_loss[-1] < history.train_loss[0]

    @pytest.mark.parametrize("name", sorted(DEEP_BASELINES))
    def test_eval_deterministic(self, name, tiny_dataset):
        model = DEEP_BASELINES[name](tiny_dataset, seed=0)
        model.eval()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        with no_grad():
            d1, _ = model(sample)
            d2, _ = model(sample)
        np.testing.assert_allclose(d1.data, d2.data)


class TestGBikeLocalityPrior:
    def test_dependency_decays_with_distance(self, tiny_dataset):
        """GBike's dependency must correlate negatively with distance —
        the locality prior STGNN-DJD's case study contrasts against."""
        model = GBikeBaseline.from_dataset(tiny_dataset, seed=0, decay_km=0.5)
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        alpha = model.dependency_matrix(sample)
        d = tiny_dataset.registry.distance_matrix()
        off = ~np.eye(len(d), dtype=bool)
        corr = np.corrcoef(d[off], alpha[off])[0, 1]
        assert corr < -0.2

    def test_rows_sum_to_one(self, tiny_dataset):
        model = GBikeBaseline.from_dataset(tiny_dataset, seed=0)
        alpha = model.dependency_matrix(tiny_dataset.sample(tiny_dataset.min_history))
        np.testing.assert_allclose(alpha.sum(axis=1), 1.0, atol=1e-9)

    def test_invalid_decay(self, tiny_dataset):
        with pytest.raises(ValueError):
            GBikeBaseline.from_dataset(tiny_dataset, seed=0, decay_km=0.0)


class TestSpecificArchitectures:
    def test_astgcn_daily_branch_optional(self, tiny_dataset):
        dims = BaselineDims.from_dataset(tiny_dataset, daily=0)
        model = ASTGCNBaseline(dims, distance_adjacency(tiny_dataset),
                               rng=np.random.default_rng(0))
        assert model.daily_branch is None
        demand, _ = model(tiny_dataset.sample(tiny_dataset.min_history))
        assert np.isfinite(demand.data).all()

    def test_stsgcn_window_validation(self, tiny_dataset):
        dims = BaselineDims.from_dataset(tiny_dataset, history=2)
        with pytest.raises(ValueError):
            STSGCNBaseline(dims, distance_adjacency(tiny_dataset), window=5)

    def test_gcnn_layer_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            GCNNBaseline(
                BaselineDims.from_dataset(tiny_dataset),
                distance_adjacency(tiny_dataset),
                num_layers=0,
            )

"""Property-based tests of the tree/boosting substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import GBRTConfig, GradientBoostedTrees, RegressionTree


@st.composite
def regression_data(draw):
    rows = draw(st.integers(20, 60))
    cols = draw(st.integers(1, 4))
    x = draw(
        arrays(np.float64, (rows, cols),
               elements=st.floats(-10, 10, allow_nan=False))
    )
    y = draw(
        arrays(np.float64, (rows,),
               elements=st.floats(-100, 100, allow_nan=False))
    )
    return x, y


class TestTreeProperties:
    @given(regression_data())
    @settings(max_examples=30, deadline=None)
    def test_predictions_within_target_range(self, data):
        """Leaf values are means of target subsets, so predictions can
        never escape [min(y), max(y)]."""
        x, y = data
        tree = RegressionTree(3, 2, np.random.default_rng(0)).fit(x, y)
        predictions = tree.predict(x)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(regression_data())
    @settings(max_examples=30, deadline=None)
    def test_training_sse_not_worse_than_constant(self, data):
        """A fitted tree is at least as good as the constant mean."""
        x, y = data
        tree = RegressionTree(3, 2, np.random.default_rng(0)).fit(x, y)
        tree_sse = np.sum((tree.predict(x) - y) ** 2)
        const_sse = np.sum((y - y.mean()) ** 2)
        assert tree_sse <= const_sse + 1e-6

    @given(st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_constant_targets_predicted_exactly(self, value):
        x = np.linspace(0, 1, 30).reshape(-1, 1)
        y = np.full(30, value)
        tree = RegressionTree(3, 2, np.random.default_rng(0)).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y, atol=1e-9)


class TestBoostingProperties:
    @given(regression_data())
    @settings(max_examples=10, deadline=None)
    def test_boosting_never_diverges_on_training_data(self, data):
        x, y = data
        config = GBRTConfig(num_trees=10, subsample=1.0, feature_subsample=1.0)
        model = GradientBoostedTrees(config, seed=0).fit(x, y)
        sse = np.sum((model.predict(x) - y) ** 2)
        const_sse = np.sum((y - y.mean()) ** 2)
        assert sse <= const_sse * 1.01 + 1e-6

"""Rebalancing planner."""

import numpy as np
import pytest

from repro.rebalance import forecast_shortages, plan_rebalancing


def line_distances(n):
    """Stations on a line: distance = |i - j| km."""
    idx = np.arange(n)
    return np.abs(idx[:, None] - idx[None, :]).astype(float)


class TestPlanRebalancing:
    def test_simple_match(self):
        # Station 0 needs 3, station 2 has 3 spare.
        net = np.array([3.0, 0.0, -3.0])
        plan = plan_rebalancing(net, line_distances(3))
        assert plan.total_bikes_moved == 3
        assert plan.unmet_shortage == 0.0
        assert plan.moves[0].source == 2
        assert plan.moves[0].destination == 0

    def test_prefers_nearest_source(self):
        # Deficit at 0; surpluses at 1 (near) and 3 (far).
        net = np.array([4.0, -4.0, 0.0, -4.0])
        plan = plan_rebalancing(net, line_distances(4))
        assert plan.moves[0].source == 1  # nearest first
        assert plan.total_bikes_moved == 4

    def test_worst_shortage_served_first(self):
        net = np.array([2.0, 5.0, -4.0])
        plan = plan_rebalancing(net, line_distances(3))
        assert plan.moves[0].destination == 1  # bigger deficit first
        # Only 4 bikes available for 7 needed.
        assert plan.unmet_shortage == pytest.approx(3.0)

    def test_unmet_when_no_surplus(self):
        net = np.array([5.0, 0.0, 0.0])
        plan = plan_rebalancing(net, line_distances(3))
        assert plan.moves == ()
        assert plan.unmet_shortage == pytest.approx(5.0)

    def test_min_move_threshold(self):
        net = np.array([0.4, -0.4])
        plan = plan_rebalancing(net, line_distances(2), min_move=1)
        assert plan.total_bikes_moved == 0

    def test_capacity_splits_moves(self):
        net = np.array([6.0, -6.0])
        plan = plan_rebalancing(net, line_distances(2), capacity_per_move=2)
        assert len(plan.moves) == 3
        assert all(m.bikes == 2 for m in plan.moves)
        assert plan.total_bikes_moved == 6

    def test_bike_km_accounting(self):
        net = np.array([2.0, 0.0, -2.0])
        plan = plan_rebalancing(net, line_distances(3))
        assert plan.total_bike_km == pytest.approx(2 * 2.0)

    def test_conservation(self):
        """Bikes moved never exceed total surplus or total deficit."""
        rng = np.random.default_rng(0)
        net = rng.normal(0, 5, size=10)
        plan = plan_rebalancing(net, line_distances(10))
        surplus = -net[net < 0].sum()
        deficit = net[net > 0].sum()
        assert plan.total_bikes_moved <= surplus + 1e-9
        assert plan.total_bikes_moved <= deficit + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_rebalancing(np.zeros(3), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            plan_rebalancing(np.zeros(2), np.zeros((2, 2)), min_move=0)

    def test_str(self):
        plan = plan_rebalancing(np.array([1.0, -1.0]), line_distances(2))
        assert "1 moves" in str(plan)


class TestForecastShortages:
    def test_sums_predictions(self, tiny_dataset):
        class Oracle:
            def predict(self, t):
                return tiny_dataset.demand[t].copy(), tiny_dataset.supply[t].copy()

        times = np.arange(tiny_dataset.min_history, tiny_dataset.min_history + 3)
        net = forecast_shortages(Oracle(), tiny_dataset, times)
        expected = (tiny_dataset.demand[times] - tiny_dataset.supply[times]).sum(axis=0)
        np.testing.assert_allclose(net, expected)

    def test_empty_times_rejected(self, tiny_dataset):
        class Oracle:
            def predict(self, t):
                return tiny_dataset.demand[t], tiny_dataset.supply[t]

        with pytest.raises(ValueError):
            forecast_shortages(Oracle(), tiny_dataset, np.array([]))

"""Tests of the Tensor class itself: graph recording, backward, modes."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_data_is_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x + x
        y.backward()
        assert y.item() == 6.0
        assert x.grad == pytest.approx(5.0)  # 2x + 1

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(3.0, requires_grad=True)
        (x * x).backward()
        (x * x).backward()
        assert x.grad == pytest.approx(12.0)

    def test_zero_grad(self):
        x = Tensor(3.0, requires_grad=True)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_rejects_wrong_gradient_shape(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError):
            y.backward(np.zeros(3))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x: gradient should be 4x, exercising fan-out.
        x = Tensor(3.0, requires_grad=True)
        a = x * x
        b = x * x
        (a + b).backward()
        assert x.grad == pytest.approx(12.0)

    def test_shared_subexpression(self):
        x = Tensor(2.0, requires_grad=True)
        shared = x * 3.0
        y = shared * shared  # (3x)^2 -> dy/dx = 18x
        y.backward()
        assert x.grad == pytest.approx(36.0)

    def test_deep_chain_does_not_recurse(self):
        # Depth beyond Python's default recursion limit.
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_no_grad_through_constant_branch(self):
        x = Tensor(2.0, requires_grad=True)
        c = Tensor(5.0)  # constant
        y = x * c
        y.backward()
        assert x.grad == pytest.approx(5.0)
        assert c.grad is None


class TestNoGrad:
    def test_flag_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_graph_recorded(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * x
        assert not y.requires_grad

    def test_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_tensor_created_inside_no_grad_is_detached(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestDetach:
    def test_detach_shares_data_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        assert d.data is x.data
        assert not d.requires_grad

    def test_detach_blocks_gradient(self):
        x = Tensor(2.0, requires_grad=True)
        y = x.detach() * x
        y.backward()
        assert x.grad == pytest.approx(2.0)  # only the non-detached path


class TestGradBuffers:
    """Persistent grad buffers and in-place fan-in accumulation."""

    def test_buffer_reused_across_steps(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        first_buffer = x._grad_buffer
        assert x.grad is first_buffer
        x.zero_grad()
        assert x.grad is None
        (x * 5.0).sum().backward()
        # Same storage, fresh values: no allocation on the second pass.
        assert x._grad_buffer is first_buffer
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_scalar_fanin_accumulates(self):
        # Regression: 0-d fan-in sums are numpy scalars, for which +=
        # rebinds; the dispatch loop must re-store the result.
        x = Tensor(2.0, requires_grad=True)
        y = x * x + x
        y.backward()
        np.testing.assert_allclose(x.grad, 5.0)

    def test_fanin_does_not_mutate_closure_arrays(self):
        # add's backward hands the *same* upstream array to both parents;
        # accumulation into one parent must never corrupt the other's
        # contribution (in-place adds are restricted to owned arrays).
        x = Tensor([1.0, 1.0], requires_grad=True)
        y = Tensor([2.0, 2.0], requires_grad=True)
        s = x + y
        (s + s).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])
        np.testing.assert_allclose(y.grad, [2.0, 2.0])

    def test_upstream_gradient_array_not_mutated(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x + x  # both parents are the same leaf
        upstream = np.array([10.0, 20.0])
        y.backward(upstream)
        np.testing.assert_allclose(upstream, [10.0, 20.0])
        np.testing.assert_allclose(x.grad, [20.0, 40.0])

    def test_leaf_root_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        x.backward(np.array([3.0, 4.0]))
        np.testing.assert_allclose(x.grad, [3.0, 4.0])

    def test_mixed_interior_fanin_to_leaf(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0 + x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_grad_stable_until_next_backward(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        kept = x.grad.copy()
        x.zero_grad()
        (x * 7.0).sum().backward()
        np.testing.assert_allclose(kept, [2.0])  # copy unaffected
        np.testing.assert_allclose(x.grad, [7.0])

"""Property-based tests (hypothesis) of autograd invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor, ops

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


class TestAlgebraicIdentities:
    @given(small_arrays())
    def test_add_commutes(self, a):
        x, y = Tensor(a), Tensor(a * 2.0)
        np.testing.assert_allclose((x + y).data, (y + x).data)

    @given(small_arrays())
    def test_double_negation(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @given(small_arrays())
    def test_sub_self_is_zero_grad_two(self, a):
        # d/dx (x + x) = 2 everywhere.
        x = Tensor(a, requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(a, 2.0))

    @given(small_arrays())
    def test_relu_idempotent(self, a):
        once = Tensor(a).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)

    @given(small_arrays())
    def test_exp_always_positive(self, a):
        assert (Tensor(a).exp().data > 0).all()


class TestSoftmaxProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
            elements=finite_floats,
        )
    )
    def test_rows_sum_to_one(self, a):
        s = Tensor(a).softmax(axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(a.shape[0]), atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
            elements=finite_floats,
        ),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_shift_invariance(self, a, shift):
        s1 = Tensor(a).softmax(axis=-1)
        s2 = Tensor(a + shift).softmax(axis=-1)
        np.testing.assert_allclose(s1.data, s2.data, atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
            elements=finite_floats,
        )
    )
    def test_masked_softmax_zero_outside_mask(self, a):
        rng = np.random.default_rng(abs(int(a.sum() * 1000)) % (2**32))
        mask = rng.random(a.shape) > 0.4
        out = ops.masked_softmax(Tensor(a), mask).data
        assert (out[~mask] == 0.0).all()
        row_sums = out.sum(axis=-1)
        has_any = mask.any(axis=-1)
        np.testing.assert_allclose(row_sums[has_any], 1.0, atol=1e-9)
        np.testing.assert_allclose(row_sums[~has_any], 0.0)


class TestUnbroadcast:
    @given(small_arrays(max_dims=2, max_side=4))
    def test_unbroadcast_inverts_broadcast_shape(self, a):
        target = np.broadcast_to(a, (3,) + a.shape)
        reduced = ops.unbroadcast(np.ones_like(target), a.shape)
        assert reduced.shape == a.shape
        np.testing.assert_allclose(reduced, np.full(a.shape, 3.0))

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_unbroadcast_size_one_axes(self, rows, cols):
        grad = np.ones((rows, cols))
        reduced = ops.unbroadcast(grad, (rows, 1))
        np.testing.assert_allclose(reduced, np.full((rows, 1), float(cols)))


class TestGradientLinearity:
    @given(small_arrays(), st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
    @settings(max_examples=25)
    def test_backward_scales_linearly(self, a, scale):
        x1 = Tensor(a, requires_grad=True)
        (x1 * x1).sum().backward()
        x2 = Tensor(a, requires_grad=True)
        ((x2 * x2).sum() * scale).backward()
        np.testing.assert_allclose(x2.grad, x1.grad * scale, atol=1e-8, rtol=1e-8)

    @given(small_arrays())
    @settings(max_examples=25)
    def test_sum_grad_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))

"""Forward-pass correctness of every primitive op against numpy."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, maximum, minimum, ops, stack, where


def t(a, grad=False):
    return Tensor(np.asarray(a, dtype=np.float64), requires_grad=grad)


class TestArithmetic:
    def test_add(self):
        np.testing.assert_allclose((t([1, 2]) + t([3, 4])).data, [4, 6])

    def test_add_scalar_broadcast(self):
        np.testing.assert_allclose((t([1, 2]) + 5.0).data, [6, 7])

    def test_radd(self):
        np.testing.assert_allclose((5.0 + t([1, 2])).data, [6, 7])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((t([5, 5]) - t([1, 2])).data, [4, 3])
        np.testing.assert_allclose((10.0 - t([1, 2])).data, [9, 8])

    def test_mul_div(self):
        np.testing.assert_allclose((t([2, 3]) * t([4, 5])).data, [8, 15])
        np.testing.assert_allclose((t([8, 9]) / t([2, 3])).data, [4, 3])

    def test_rtruediv(self):
        np.testing.assert_allclose((6.0 / t([2, 3])).data, [3, 2])

    def test_neg(self):
        np.testing.assert_allclose((-t([1, -2])).data, [-1, 2])

    def test_pow(self):
        np.testing.assert_allclose((t([2, 3]) ** 2).data, [4, 9])

    def test_broadcast_row_plus_column(self):
        row = t(np.ones((1, 3)))
        col = t(np.ones((4, 1)))
        assert (row + col).shape == (4, 3)


class TestMatmul:
    def test_2d(self):
        a, b = np.ones((2, 3)), np.arange(6.0).reshape(3, 2)
        np.testing.assert_allclose((t(a) @ t(b)).data, a @ b)

    def test_vector_matrix(self):
        v, m = np.array([1.0, 2.0]), np.array([[3.0, 4.0], [5.0, 6.0]])
        np.testing.assert_allclose((t(v) @ t(m)).data, v @ m)

    def test_matrix_vector(self):
        v, m = np.array([1.0, 2.0]), np.array([[3.0, 4.0], [5.0, 6.0]])
        np.testing.assert_allclose((t(m) @ t(v)).data, m @ v)

    def test_inner_product(self):
        v = np.array([1.0, 2.0, 3.0])
        assert (t(v) @ t(v)).item() == pytest.approx(14.0)

    def test_batched(self):
        a = np.arange(12.0).reshape(2, 2, 3)
        b = np.arange(12.0).reshape(2, 3, 2)
        np.testing.assert_allclose((t(a) @ t(b)).data, a @ b)


class TestShape:
    def test_reshape(self):
        assert t(np.zeros(6)).reshape(2, 3).shape == (2, 3)

    def test_reshape_tuple_arg(self):
        assert t(np.zeros(6)).reshape((3, 2)).shape == (3, 2)

    def test_transpose_default(self):
        a = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(t(a).T.data, a.T)

    def test_transpose_axes(self):
        a = np.zeros((2, 3, 4))
        assert t(a).transpose((2, 0, 1)).shape == (4, 2, 3)

    def test_getitem_row(self):
        a = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(t(a)[1].data, a[1])

    def test_getitem_slice(self):
        a = np.arange(10.0)
        np.testing.assert_allclose(t(a)[2:5].data, a[2:5])

    def test_getitem_fancy(self):
        a = np.arange(10.0)
        np.testing.assert_allclose(t(a)[[0, 0, 3]].data, a[[0, 0, 3]])

    def test_concat(self):
        c = concat([t(np.ones((2, 2))), t(np.zeros((2, 3)))], axis=1)
        assert c.shape == (2, 5)

    def test_stack(self):
        s = stack([t([1.0, 2.0]), t([3.0, 4.0])], axis=0)
        np.testing.assert_allclose(s.data, [[1, 2], [3, 4]])


class TestReductions:
    def test_sum_all(self):
        assert t([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis_keepdims(self):
        s = t(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert s.shape == (2, 1)

    def test_mean(self):
        assert t([2.0, 4.0]).mean().item() == 3.0

    def test_mean_axis(self):
        m = t(np.arange(6.0).reshape(2, 3)).mean(axis=0)
        np.testing.assert_allclose(m.data, [1.5, 2.5, 3.5])

    def test_max(self):
        assert t([[1.0, 9.0], [3.0, 4.0]]).max().item() == 9.0

    def test_max_axis(self):
        m = t([[1.0, 9.0], [3.0, 4.0]]).max(axis=1)
        np.testing.assert_allclose(m.data, [9, 4])


class TestNonlinearities:
    def test_exp_log_roundtrip(self):
        x = t([0.5, 1.5])
        np.testing.assert_allclose(x.exp().log().data, x.data, atol=1e-12)

    def test_sqrt(self):
        np.testing.assert_allclose(t([4.0, 9.0]).sqrt().data, [2, 3])

    def test_abs(self):
        np.testing.assert_allclose(t([-2.0, 3.0]).abs().data, [2, 3])

    def test_relu(self):
        np.testing.assert_allclose(t([-1.0, 0.0, 2.0]).relu().data, [0, 0, 2])

    def test_elu_positive_is_identity(self):
        np.testing.assert_allclose(t([1.0, 2.0]).elu().data, [1, 2])

    def test_elu_negative(self):
        out = t([-1.0]).elu(alpha=1.0)
        assert out.data[0] == pytest.approx(np.exp(-1.0) - 1.0)

    def test_sigmoid_symmetric(self):
        s = t([0.0]).sigmoid()
        assert s.item() == pytest.approx(0.5)

    def test_tanh(self):
        np.testing.assert_allclose(t([0.0]).tanh().data, [0.0])

    def test_clip(self):
        np.testing.assert_allclose(
            t([-5.0, 0.5, 5.0]).clip(0.0, 1.0).data, [0, 0.5, 1.0]
        )

    def test_softmax_rows_sum_to_one(self):
        s = t(np.random.default_rng(0).normal(size=(4, 5))).softmax(axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4))

    def test_softmax_stability_large_values(self):
        s = t([1000.0, 1000.0]).softmax()
        np.testing.assert_allclose(s.data, [0.5, 0.5])

    def test_masked_softmax_respects_mask(self):
        x = t([[1.0, 2.0, 3.0]])
        mask = np.array([[True, False, True]])
        out = ops.masked_softmax(x, mask)
        assert out.data[0, 1] == 0.0
        assert out.data[0].sum() == pytest.approx(1.0)

    def test_masked_softmax_all_false_row_is_zero(self):
        x = t([[1.0, 2.0]])
        out = ops.masked_softmax(x, np.array([[False, False]]))
        np.testing.assert_allclose(out.data, [[0.0, 0.0]])


class TestSelection:
    def test_where(self):
        cond = np.array([True, False, True])
        out = where(cond, t([1.0, 1.0, 1.0]), t([9.0, 9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1, 9, 1])

    def test_maximum_minimum(self):
        a, b = t([1.0, 5.0]), t([3.0, 2.0])
        np.testing.assert_allclose(maximum(a, b).data, [3, 5])
        np.testing.assert_allclose(minimum(a, b).data, [1, 2])


class TestDropoutMask:
    def test_rate_zero_is_ones(self):
        mask = ops.dropout_mask((10,), 0.0, np.random.default_rng(0))
        np.testing.assert_allclose(mask, np.ones(10))

    def test_mask_values(self):
        mask = ops.dropout_mask((1000,), 0.5, np.random.default_rng(0))
        assert set(np.unique(mask)).issubset({0.0, 2.0})

    def test_mask_preserves_expectation(self):
        mask = ops.dropout_mask((100_000,), 0.3, np.random.default_rng(0))
        assert mask.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ops.dropout_mask((3,), 1.0, np.random.default_rng(0))

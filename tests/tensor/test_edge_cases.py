"""Edge cases of the tensor engine: odd indexing, empty-ish shapes."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, ops


class TestIndexingEdgeCases:
    def test_boolean_mask_getitem(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        mask = np.array([True, False, True, False, True])
        (x[mask] ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 4.0, 0.0, 8.0])

    def test_negative_index(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[-1].backward()
        np.testing.assert_allclose(x.grad, [0, 0, 0, 1])

    def test_2d_row_and_column(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x[:, 1]).sum().backward()
        expected = np.zeros((2, 3))
        expected[:, 1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_step_slice(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x[::2].sum().backward()
        np.testing.assert_allclose(x.grad, [1, 0, 1, 0, 1, 0])


class TestDegenerateShapes:
    def test_scalar_tensor_ops(self):
        x = Tensor(2.0, requires_grad=True)
        ((x + 1.0) * 3.0).backward()
        assert x.grad == pytest.approx(3.0)

    def test_single_element_softmax(self):
        s = Tensor([[5.0]]).softmax(axis=-1)
        np.testing.assert_allclose(s.data, [[1.0]])

    def test_single_row_concat(self):
        out = concat([Tensor([[1.0]]), Tensor([[2.0]])], axis=0)
        assert out.shape == (2, 1)

    def test_sum_of_empty_axis_result(self):
        x = Tensor(np.ones((3, 1)))
        assert x.sum(axis=1).shape == (3,)


class TestNumericalEdges:
    def test_sigmoid_extreme_values_no_overflow(self):
        s = Tensor([-1000.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(s.data, [0.0, 1.0], atol=1e-12)
        assert np.isfinite(s.data).all()

    def test_elu_large_negative_saturates(self):
        out = Tensor([-500.0]).elu()
        assert out.data[0] == pytest.approx(-1.0)

    def test_softmax_one_dominant_entry(self):
        s = Tensor([0.0, 500.0]).softmax()
        np.testing.assert_allclose(s.data, [0.0, 1.0], atol=1e-12)

    def test_clip_gradient_at_boundaries_is_zero_outside(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_masked_softmax_single_allowed_entry(self):
        out = ops.masked_softmax(
            Tensor([[5.0, -3.0, 2.0]]), np.array([[False, True, False]])
        )
        np.testing.assert_allclose(out.data, [[0.0, 1.0, 0.0]])

"""Numerical gradient checks: autograd vs central finite differences.

Each case builds a scalar function of one input tensor and compares the
backward-pass gradient to a finite-difference estimate. This is the
ground-truth test of the engine — if these pass, every model gradient
in the repo is trustworthy.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, maximum, minimum, ops, stack, where


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check(fn_tensor, fn_numpy, x: np.ndarray, atol: float = 1e-6):
    tensor = Tensor(x.copy(), requires_grad=True)
    out = fn_tensor(tensor)
    out.backward()
    expected = numerical_grad(fn_numpy, x.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(2024)


class TestUnaryGrads:
    @pytest.mark.parametrize(
        "name,tensor_fn,numpy_fn,domain",
        [
            ("exp", lambda x: x.exp().sum(), lambda x: np.exp(x).sum(), (-1, 1)),
            ("log", lambda x: x.log().sum(), lambda x: np.log(x).sum(), (0.5, 2)),
            ("sqrt", lambda x: x.sqrt().sum(), lambda x: np.sqrt(x).sum(), (0.5, 2)),
            ("neg", lambda x: (-x).sum(), lambda x: (-x).sum(), (-1, 1)),
            ("sigmoid", lambda x: x.sigmoid().sum(), lambda x: (1 / (1 + np.exp(-x))).sum(), (-2, 2)),
            ("tanh", lambda x: x.tanh().sum(), lambda x: np.tanh(x).sum(), (-2, 2)),
            ("abs", lambda x: x.abs().sum(), lambda x: np.abs(x).sum(), (0.2, 2)),
            ("pow3", lambda x: (x**3).sum(), lambda x: (x**3).sum(), (-2, 2)),
            ("square", lambda x: (x * x).sum(), lambda x: (x * x).sum(), (-2, 2)),
        ],
    )
    def test_unary(self, name, tensor_fn, numpy_fn, domain):
        x = RNG.uniform(*domain, size=(3, 4))
        check(tensor_fn, numpy_fn, x)

    def test_relu_away_from_kink(self):
        x = RNG.uniform(0.2, 2.0, size=(3, 4)) * RNG.choice([-1.0, 1.0], size=(3, 4))
        check(lambda t: t.relu().sum(), lambda a: np.maximum(a, 0).sum(), x)

    def test_elu_away_from_kink(self):
        x = RNG.uniform(0.2, 2.0, size=(3, 4)) * RNG.choice([-1.0, 1.0], size=(3, 4))
        check(
            lambda t: t.elu(0.7).sum(),
            lambda a: np.where(a > 0, a, 0.7 * (np.exp(a) - 1)).sum(),
            x,
        )

    def test_clip_interior(self):
        x = RNG.uniform(-0.4, 0.4, size=(5,))
        check(lambda t: t.clip(-1, 1).sum(), lambda a: np.clip(a, -1, 1).sum(), x)


class TestBinaryGrads:
    def test_mul_broadcast(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numerical_grad(lambda x: (x * b).sum(), a.copy()), atol=1e-6
        )
        np.testing.assert_allclose(
            tb.grad, numerical_grad(lambda x: (a * x).sum(), b.copy()), atol=1e-6
        )

    def test_div_grads_both_sides(self):
        a = RNG.uniform(0.5, 2.0, size=(3,))
        b = RNG.uniform(0.5, 2.0, size=(3,))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b, atol=1e-8)
        np.testing.assert_allclose(tb.grad, -a / b**2, atol=1e-8)

    def test_sub_broadcast_column(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(3, 1))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        ((ta - tb) ** 2).sum().backward()
        expected_b = numerical_grad(lambda x: ((a - x) ** 2).sum(), b.copy())
        np.testing.assert_allclose(tb.grad, expected_b, atol=1e-5)

    def test_maximum_minimum(self):
        a = RNG.normal(size=(6,))
        b = RNG.normal(size=(6,))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (maximum(ta, tb).sum() + minimum(ta, tb).sum()).backward()
        # max + min = a + b, so both grads are 1 everywhere.
        np.testing.assert_allclose(ta.grad, np.ones(6))
        np.testing.assert_allclose(tb.grad, np.ones(6))

    def test_where(self):
        cond = RNG.random(5) > 0.5
        a = RNG.normal(size=(5,))
        ta = Tensor(a, requires_grad=True)
        where(cond, ta * 2.0, ta * 3.0).sum().backward()
        np.testing.assert_allclose(ta.grad, np.where(cond, 2.0, 3.0))


class TestMatmulGrads:
    def test_2d(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numerical_grad(lambda x: (x @ b).sum(), a.copy()), atol=1e-6
        )
        np.testing.assert_allclose(
            tb.grad, numerical_grad(lambda x: (a @ x).sum(), b.copy()), atol=1e-6
        )

    def test_vector_matrix(self):
        v = RNG.normal(size=(4,))
        m = RNG.normal(size=(4, 3))
        tv, tm = Tensor(v, requires_grad=True), Tensor(m, requires_grad=True)
        (tv @ tm).sum().backward()
        np.testing.assert_allclose(
            tv.grad, numerical_grad(lambda x: (x @ m).sum(), v.copy()), atol=1e-6
        )
        np.testing.assert_allclose(
            tm.grad, numerical_grad(lambda x: (v @ x).sum(), m.copy()), atol=1e-6
        )

    def test_matrix_vector(self):
        v = RNG.normal(size=(4,))
        m = RNG.normal(size=(3, 4))
        tv, tm = Tensor(v, requires_grad=True), Tensor(m, requires_grad=True)
        (tm @ tv).sum().backward()
        np.testing.assert_allclose(
            tv.grad, numerical_grad(lambda x: (m @ x).sum(), v.copy()), atol=1e-6
        )
        np.testing.assert_allclose(
            tm.grad, numerical_grad(lambda x: (x @ v).sum(), m.copy()), atol=1e-6
        )

    def test_batched(self):
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(2, 4, 2))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numerical_grad(lambda x: (x @ b).sum(), a.copy()), atol=1e-6
        )

    def test_inner_product(self):
        v = RNG.normal(size=(5,))
        w = RNG.normal(size=(5,))
        tv, tw = Tensor(v, requires_grad=True), Tensor(w, requires_grad=True)
        (tv @ tw).backward()
        np.testing.assert_allclose(tv.grad, w)
        np.testing.assert_allclose(tw.grad, v)


class TestShapeGrads:
    def test_reshape(self):
        x = RNG.normal(size=(2, 6))
        check(
            lambda t: (t.reshape(3, 4) ** 2).sum(),
            lambda a: (a.reshape(3, 4) ** 2).sum(),
            x,
        )

    def test_transpose(self):
        x = RNG.normal(size=(2, 3, 4))
        check(
            lambda t: (t.transpose((1, 2, 0)) ** 3).sum(),
            lambda a: (np.transpose(a, (1, 2, 0)) ** 3).sum(),
            x,
        )

    def test_getitem_slice(self):
        x = RNG.normal(size=(6,))
        check(lambda t: (t[1:4] ** 2).sum(), lambda a: (a[1:4] ** 2).sum(), x)

    def test_getitem_fancy_repeated_indices(self):
        x = RNG.normal(size=(5,))
        idx = [0, 0, 2]
        check(
            lambda t: (t[idx] ** 2).sum(),
            lambda a: (a[idx] ** 2).sum(),
            x,
        )

    def test_concat(self):
        x = RNG.normal(size=(2, 3))
        check(
            lambda t: (concat([t, t * 2.0], axis=1) ** 2).sum(),
            lambda a: (np.concatenate([a, a * 2.0], axis=1) ** 2).sum(),
            x,
        )

    def test_stack(self):
        x = RNG.normal(size=(3,))
        check(
            lambda t: (stack([t, t * 3.0]) ** 2).sum(),
            lambda a: (np.stack([a, a * 3.0]) ** 2).sum(),
            x,
        )


class TestReductionGrads:
    def test_sum_axis(self):
        x = RNG.normal(size=(3, 4))
        check(
            lambda t: (t.sum(axis=0) ** 2).sum(),
            lambda a: (a.sum(axis=0) ** 2).sum(),
            x,
        )

    def test_mean_axis_keepdims(self):
        x = RNG.normal(size=(3, 4))
        check(
            lambda t: (t - t.mean(axis=1, keepdims=True)).abs().sum(),
            lambda a: np.abs(a - a.mean(axis=1, keepdims=True)).sum(),
            x,
            atol=1e-5,
        )

    def test_max_axis_unique(self):
        x = RNG.normal(size=(3, 4))  # ties have measure zero
        check(
            lambda t: (t.max(axis=1) ** 2).sum(),
            lambda a: (a.max(axis=1) ** 2).sum(),
            x,
        )

    def test_max_ties_split_gradient(self):
        x = Tensor([2.0, 2.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])


class TestSoftmaxGrads:
    def test_softmax(self):
        x = RNG.normal(size=(2, 5))
        weight = RNG.normal(size=(2, 5))

        def fn_tensor(t):
            return (t.softmax(axis=-1) * Tensor(weight)).sum()

        def fn_numpy(a):
            e = np.exp(a - a.max(axis=-1, keepdims=True))
            return (e / e.sum(axis=-1, keepdims=True) * weight).sum()

        check(fn_tensor, fn_numpy, x)

    def test_masked_softmax(self):
        x = RNG.normal(size=(2, 5))
        mask = RNG.random((2, 5)) > 0.3
        mask[:, 0] = True  # no empty rows
        weight = RNG.normal(size=(2, 5))

        def fn_tensor(t):
            return (ops.masked_softmax(t, mask) * Tensor(weight)).sum()

        def fn_numpy(a):
            logits = np.where(mask, a, -1e30)
            e = np.exp(logits - logits.max(axis=-1, keepdims=True)) * mask
            return (e / e.sum(axis=-1, keepdims=True) * weight).sum()

        check(fn_tensor, fn_numpy, x)


class TestFusedOpGrads:
    """Numerical checks for the fused multi-input kernels."""

    def test_gated_fusion_all_inputs(self):
        short = RNG.normal(size=(3, 3))
        long = RNG.normal(size=(3, 3))
        gate = RNG.normal(size=(3, 3))
        weight = RNG.normal(size=(3, 3))

        def reference(s, lng, g):
            beta = 1.0 / (1.0 + np.exp(-(g * s - g * lng)))
            return ((beta * s + (1.0 - beta) * lng) * weight).sum()

        for index, arrays in enumerate([short, long, gate]):
            def fn_tensor(t, index=index):
                inputs = [Tensor(short), Tensor(long), Tensor(gate)]
                inputs[index] = t
                return (ops.gated_fusion(*inputs) * Tensor(weight)).sum()

            def fn_numpy(a, index=index):
                inputs = [short, long, gate]
                inputs[index] = a
                return reference(*inputs)

            check(fn_tensor, fn_numpy, arrays.copy())

    def test_joint_rmse_both_predictions(self):
        demand_true = RNG.normal(size=5)
        supply_true = RNG.normal(size=5)
        other_pred = RNG.normal(size=5)

        def check_side(demand_side: bool):
            def fn_tensor(t):
                dp = t if demand_side else Tensor(other_pred)
                sp = Tensor(other_pred) if demand_side else t
                return ops.joint_rmse(dp, Tensor(demand_true), sp, Tensor(supply_true))

            def fn_numpy(a):
                dp = a if demand_side else other_pred
                sp = other_pred if demand_side else a
                return np.sqrt(
                    np.mean((dp - demand_true) ** 2)
                    + np.mean((sp - supply_true) ** 2)
                    + 1e-12
                )

            check(fn_tensor, fn_numpy, RNG.normal(size=5))

        check_side(True)
        check_side(False)

    def test_joint_rmse_matches_unfused_value(self):
        from repro.nn import joint_demand_supply_loss

        dp, dt = Tensor(RNG.normal(size=4)), Tensor(RNG.normal(size=4))
        sp, st = Tensor(RNG.normal(size=4)), Tensor(RNG.normal(size=4))
        fused = joint_demand_supply_loss(dp, dt, sp, st).item()
        unfused = np.sqrt(
            np.mean((dp.data - dt.data) ** 2)
            + np.mean((sp.data - st.data) ** 2)
            + 1e-12
        )
        np.testing.assert_allclose(fused, unfused, rtol=0, atol=0)

    def test_conv1x1_fused_relu_weight_and_input(self):
        x = RNG.normal(size=(4, 3, 3))
        w = RNG.normal(size=4)
        b = RNG.normal(size=(3, 3))

        def fn_tensor(t):
            return ops.conv1x1(t, Tensor(w), Tensor(b), relu=True).sum()

        def fn_numpy(a):
            pre = np.tensordot(w, a, axes=1) + b
            return (pre * (pre > 0)).sum()

        check(fn_tensor, fn_numpy, x.copy())

        def fn_tensor_w(t):
            return ops.conv1x1(Tensor(x), t, Tensor(b), relu=True).sum()

        def fn_numpy_w(a):
            pre = np.tensordot(a, x, axes=1) + b
            return (pre * (pre > 0)).sum()

        check(fn_tensor_w, fn_numpy_w, w.copy())

    def test_conv1x1_leaf_input_gets_no_gradient_compute(self):
        # Windows fed to conv1x1 are constants; backward must return
        # None for them (skipping the largest array of the pass) while
        # still producing weight/bias gradients.
        x = Tensor(RNG.normal(size=(4, 3, 3)))  # requires_grad=False
        w = Tensor(RNG.normal(size=4), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)
        out = ops.conv1x1(x, w, b, relu=True)
        out.sum().backward()
        assert x.grad is None
        assert w.grad is not None and b.grad is not None

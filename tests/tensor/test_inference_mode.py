"""``inference_mode`` semantics: grad gating, dtype scoping, detach.

These tests pin the contract the serving path relies on: inside the
context no graph state is allocated, tensors adopt the scoped dtype,
and the global flags are restored even when the body raises.
"""

import numpy as np
import pytest

from repro import backend
from repro.tensor import Tensor, inference_mode, is_grad_enabled, no_grad


class TestGradGating:
    def test_requires_grad_forced_off(self):
        with inference_mode():
            t = Tensor([1.0, 2.0], requires_grad=True)
        assert not t.requires_grad

    def test_ops_record_no_graph(self):
        w = Tensor(np.ones((3, 3)), requires_grad=True)
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        with inference_mode():
            out = (w @ x).relu().sum()
        assert not out.requires_grad
        assert out._backward is None
        assert out._parents == ()

    def test_flag_restored_on_exception(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with inference_mode():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_equivalence(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        with no_grad():
            a = (x * 2.0).sum()
        with inference_mode():
            b = (x * 2.0).sum()
        assert a.item() == b.item()
        assert a._parents == b._parents == ()

    def test_nested_restores_outer_state(self):
        with inference_mode():
            with inference_mode():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestDtypeScoping:
    def test_tensors_adopt_scoped_dtype(self):
        with inference_mode(dtype="float32"):
            t = Tensor(np.ones(3))
            assert t.dtype == np.float32
        assert Tensor(np.ones(3)).dtype == np.float64

    def test_dtype_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode(dtype="float32"):
                raise RuntimeError("boom")
        assert backend.default_dtype() == np.float64
        assert is_grad_enabled()

    def test_scalar_operand_adopts_tensor_dtype(self):
        x = Tensor(np.ones(3), dtype="float32")
        assert (x * 2).dtype == np.float32
        assert (2.0 + x).dtype == np.float32
        assert (x / 3).dtype == np.float32

    def test_float32_chain_stays_float32(self):
        w = Tensor(np.ones((3, 3)), dtype="float32")
        with inference_mode(dtype="float32"):
            out = (Tensor(np.ones((4, 3))) @ w.T).relu().sigmoid()
        assert out.dtype == np.float32

    def test_explicit_dtype_overrides_scope(self):
        with inference_mode(dtype="float32"):
            t = Tensor(np.ones(3), dtype=np.float64)
        assert t.dtype == np.float64


class TestDetach:
    def test_detach_shares_data_and_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).relu()
        d = y.detach()
        assert d.data is y.data
        assert not d.requires_grad
        assert d._parents == ()
        assert d._backward is None

    def test_from_data_keeps_dtype(self):
        raw = np.ones(3, dtype=np.float32)
        t = Tensor._from_data(raw)
        assert t.data is raw
        assert t.dtype == np.float32

"""Utilities: seeding, timing, logging."""

import logging
import time

import numpy as np
import pytest

from repro.utils import Timer, get_logger, seeded_rng, spawn_rngs


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = seeded_rng(5).random(10)
        b = seeded_rng(5).random(10)
        np.testing.assert_allclose(a, b)

    def test_spawned_rngs_independent(self):
        children = spawn_rngs(seeded_rng(1), 3)
        draws = [c.random(5) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_deterministic(self):
        a = [c.random(3) for c in spawn_rngs(seeded_rng(2), 2)]
        b = [c.random(3) for c in spawn_rngs(seeded_rng(2), 2)]
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_spawn_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_rngs(seeded_rng(0), 0)


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                time.sleep(0.001)
        assert timer.count == 3
        assert timer.total >= 0.003
        assert timer.mean == pytest.approx(timer.total / 3)

    def test_mean_of_unused_timer(self):
        assert Timer().mean == 0.0


class TestLogger:
    def test_namespaced(self):
        logger = get_logger("unit")
        assert logger.name == "repro.unit"

    def test_handler_attached_once(self):
        l1 = get_logger("once")
        l2 = get_logger("once")
        assert l1 is l2
        assert len(l1.handlers) == 1

    def test_level_configurable(self):
        logger = get_logger("lvl", level=logging.DEBUG)
        assert logger.level == logging.DEBUG

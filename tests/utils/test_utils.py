"""Utilities: seeding, timing, logging."""

import logging

import numpy as np
import pytest

from repro.utils import Timer, get_logger, seeded_rng, set_global_level, spawn_rngs


class FakeClock:
    """A deterministic injectable clock: no sleeps, no timing flakes."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = seeded_rng(5).random(10)
        b = seeded_rng(5).random(10)
        np.testing.assert_allclose(a, b)

    def test_spawned_rngs_independent(self):
        children = spawn_rngs(seeded_rng(1), 3)
        draws = [c.random(5) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_deterministic(self):
        a = [c.random(3) for c in spawn_rngs(seeded_rng(2), 2)]
        b = [c.random(3) for c in spawn_rngs(seeded_rng(2), 2)]
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_spawn_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_rngs(seeded_rng(0), 0)


class TestTimer:
    def test_accumulates(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        for seconds in (0.5, 1.25, 0.25):
            with timer:
                clock.advance(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(2.0)
        assert timer.mean == pytest.approx(timer.total / 3)

    def test_default_clock_is_wall_time(self):
        # Smoke-check the default: real perf_counter time, no fake.
        timer = Timer()
        with timer:
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_mean_of_unused_timer(self):
        assert Timer().mean == 0.0

    def test_nested_entry_raises(self):
        timer = Timer()
        with timer:
            with pytest.raises(RuntimeError, match="reentrant"):
                timer.__enter__()
        # The failed nested entry must not corrupt the accumulator.
        assert timer.count == 1
        assert not timer.running

    def test_usable_after_nested_entry_failure(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer:
                with timer:
                    pass  # pragma: no cover - never reached
        # The inner failure aborts the with-block; outer __exit__ already
        # ran, so the timer is back to a clean, reusable state.
        assert not timer.running
        with timer:
            pass
        assert timer.count == 2

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        with timer:
            assert timer.running
        assert not timer.running

    def test_exit_without_enter_raises(self):
        with pytest.raises(RuntimeError, match="without entering"):
            Timer().__exit__(None, None, None)


class TestLogger:
    def test_namespaced(self):
        logger = get_logger("unit")
        assert logger.name == "repro.unit"

    def test_handler_attached_once(self):
        l1 = get_logger("once")
        l2 = get_logger("once")
        assert l1 is l2
        assert len(l1.handlers) == 1

    def test_level_configurable(self):
        logger = get_logger("lvl", level=logging.DEBUG)
        assert logger.level == logging.DEBUG

    def test_repeat_calls_do_not_clobber_level(self):
        logger = get_logger("sticky")
        assert logger.level == logging.INFO
        # The host application tunes the level...
        logger.setLevel(logging.WARNING)
        # ...and a later import-time get_logger must leave it alone,
        # even when passing an explicit level.
        assert get_logger("sticky").level == logging.WARNING
        assert get_logger("sticky", level=logging.DEBUG).level == logging.WARNING

    def test_set_global_level(self):
        a = get_logger("global-a")
        b = get_logger("global-b")
        set_global_level(logging.ERROR)
        try:
            assert a.level == logging.ERROR
            assert b.level == logging.ERROR
            assert logging.getLogger("repro").level == logging.ERROR
        finally:
            set_global_level(logging.INFO)

    def test_set_global_level_skips_foreign_loggers(self):
        foreign = logging.getLogger("reproducibility.other")
        foreign.setLevel(logging.CRITICAL)
        set_global_level(logging.DEBUG)
        try:
            assert foreign.level == logging.CRITICAL
        finally:
            set_global_level(logging.INFO)

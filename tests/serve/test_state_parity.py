"""Incremental-vs-batch parity: the store's exact-equivalence guarantee.

Property test over randomized event streams — including out-of-order
delivery within the retained horizon, trips still in transit at the
window edge, dirty negative-duration records, and slot-boundary
rollover — asserting that :class:`FlowStateStore`'s retained slots are
**bitwise** equal to :func:`build_flow_tensors` over the same history.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.flows import build_flow_tensors
from repro.data.records import TripRecord
from repro.serve import FlowStateConfig, FlowStateStore

SLOT = 1800.0  # 30-minute slots keep slots_per_day (48) honest but small


@st.composite
def event_streams(draw):
    """A trip log plus a bounded-lateness delivery order."""
    num_stations = draw(st.integers(min_value=2, max_value=5))
    num_slots = draw(st.integers(min_value=8, max_value=120))
    num_trips = draw(st.integers(min_value=0, max_value=120))
    trips = []
    for trip_id in range(num_trips):
        origin = draw(st.integers(0, num_stations - 1))
        destination = draw(st.integers(0, num_stations - 1))
        start_slot = draw(st.integers(0, num_slots - 1))
        # Cap the offset below SLOT with margin: a float a hair under
        # SLOT can round start_slot*SLOT + offset up into the next slot.
        offset = draw(st.floats(min_value=0.0, max_value=SLOT - 1.0))
        start = start_slot * SLOT + offset
        # Durations from dirty-negative through in-transit-past-the-end.
        duration = draw(st.floats(min_value=-2 * SLOT, max_value=6 * SLOT))
        trips.append(TripRecord(trip_id, origin, destination, start,
                                float(start + duration)))
    # Deliver roughly in event-time order with local shuffling: sort by
    # start, then swap adjacent trips whose slot gap stays well inside
    # the retained horizon (>= 48 slots for 30-minute slots) — out of
    # order, but never late enough to trigger the drop policy.
    trips.sort(key=lambda t: t.start_time)
    for i in range(len(trips) - 1):
        gap = trips[i + 1].start_slot(SLOT) - trips[i].start_slot(SLOT)
        if gap <= 40 and draw(st.booleans()):
            trips[i], trips[i + 1] = trips[i + 1], trips[i]
    short_window = draw(st.integers(min_value=1, max_value=12))
    long_days = draw(st.integers(min_value=1, max_value=2))
    return num_stations, num_slots, trips, short_window, long_days


@given(event_streams())
@settings(max_examples=60, deadline=None)
def test_incremental_matches_batch_bitwise(stream):
    num_stations, num_slots, trips, short_window, long_days = stream
    batch_inflow, batch_outflow = build_flow_tensors(
        trips, num_stations, num_slots, SLOT
    )
    config = FlowStateConfig(
        num_stations=num_stations,
        slot_seconds=SLOT,
        short_window=short_window,
        long_days=long_days,
    )
    store = FlowStateStore(config)
    for trip in trips:
        assert store.ingest(trip)
    store.advance_to(num_slots)

    first, inflow, outflow = store.retained_tensors()
    finalized = num_slots - first  # the frontier row is the open slot
    assert np.array_equal(inflow[:finalized], batch_inflow[first:num_slots])
    assert np.array_equal(outflow[:finalized], batch_outflow[first:num_slots])


@given(event_streams())
@settings(max_examples=30, deadline=None)
def test_sample_windows_match_batch_dataset_windows(stream):
    """End-to-end: the FlowSample the store serves equals batch slicing."""
    num_stations, num_slots, trips, short_window, long_days = stream
    config = FlowStateConfig(
        num_stations=num_stations,
        slot_seconds=SLOT,
        short_window=short_window,
        long_days=long_days,
    )
    if num_slots < config.horizon:
        return  # not enough history for a full window; nothing to check
    batch_inflow, batch_outflow = build_flow_tensors(
        trips, num_stations, num_slots, SLOT
    )
    store = FlowStateStore(config)
    for trip in trips:
        store.ingest(trip)
    store.advance_to(num_slots)

    sample = store.sample()
    t, k, spd = num_slots, short_window, config.slots_per_day
    np.testing.assert_array_equal(sample.short_inflow, batch_inflow[t - k : t])
    np.testing.assert_array_equal(sample.short_outflow, batch_outflow[t - k : t])
    long_slots = np.arange(t - long_days * spd, t, spd)
    np.testing.assert_array_equal(sample.long_inflow, batch_inflow[long_slots])
    np.testing.assert_array_equal(sample.long_outflow, batch_outflow[long_slots])


def test_interleaved_ingest_and_rollover_matches_batch():
    """Slot-by-slot live operation: ingest, advance, repeat — vs batch."""
    rng = np.random.default_rng(7)
    num_stations, num_slots = 4, 72
    trips = []
    for trip_id in range(300):
        start = rng.uniform(0, num_slots * SLOT)
        trips.append(TripRecord(
            trip_id,
            int(rng.integers(num_stations)),
            int(rng.integers(num_stations)),
            float(start),
            float(start + rng.uniform(60.0, 4 * SLOT)),
        ))
    trips.sort(key=lambda t: t.start_time)

    config = FlowStateConfig(
        num_stations=num_stations, slot_seconds=SLOT,
        short_window=8, long_days=1,
    )
    store = FlowStateStore(config)
    queue = list(trips)
    for slot in range(num_slots + 1):
        store.advance_to(slot)  # the clock ticks even with no events
        while queue and queue[0].start_slot(SLOT) <= slot:
            assert store.ingest(queue.pop(0))

    batch_inflow, batch_outflow = build_flow_tensors(
        trips, num_stations, num_slots, SLOT
    )
    first, inflow, outflow = store.retained_tensors()
    finalized = num_slots - first
    assert np.array_equal(inflow[:finalized], batch_inflow[first:num_slots])
    assert np.array_equal(outflow[:finalized], batch_outflow[first:num_slots])

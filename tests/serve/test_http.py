"""HTTP front end: endpoints, error mapping, metrics exposition."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import STGNNDJD, save_checkpoint
from repro.obs import metrics_scope
from repro.serve import PredictionService, ServiceConfig, make_server
from repro.serve.service import _Request


@pytest.fixture
def server(tiny_dataset):
    model = STGNNDJD.from_dataset(tiny_dataset, seed=3)
    service = PredictionService.for_dataset(model, tiny_dataset)
    http_server = make_server(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    service.start()
    try:
        yield http_server
    finally:
        service.stop()
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10.0) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["warmed_up"] is True
        assert body["dispatcher_running"] is True

    def test_ingest_then_predict(self, server, tiny_dataset):
        slot_seconds = tiny_dataset.config.slot_seconds
        now = server.service.store.frontier * slot_seconds + 1.0
        status, body = _post(server, "/ingest", {"trips": [
            {"origin": 0, "destination": 3,
             "start_time": now, "end_time": now + 300.0},
            {"origin": 2, "destination": 1,
             "start_time": now + 5.0, "end_time": now + 900.0},
        ]})
        assert status == 200
        assert body["accepted"] == 2
        assert body["dropped_late"] == 0

        status, body = _get(server, "/predict?stations=0,3")
        assert status == 200
        assert body["stations"] == [0, 3]
        assert len(body["demand"]) == 2
        assert len(body["supply"]) == 2
        assert body["slot"] == server.service.store.frontier

    def test_predict_post_all_stations(self, server, tiny_dataset):
        status, body = _post(server, "/predict", {})
        assert status == 200
        assert len(body["demand"]) == tiny_dataset.num_stations

    def test_predict_bad_station_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/predict?stations=9999")
        assert excinfo.value.code == 400

    def test_ingest_malformed_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/ingest", {"trips": [{"origin": 0}]})
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_metrics_exposition(self, server):
        with metrics_scope():
            _get(server, "/predict")
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10.0
            ) as response:
                assert response.status == 200
                text = response.read().decode("utf-8")
        assert "serve_requests_total" in text
        assert "serve_request_seconds" in text

    def test_admin_reload(self, server, tiny_dataset, tmp_path):
        path = tmp_path / "next.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=9), path)
        status, body = _post(server, "/admin/reload", {"checkpoint": str(path)})
        assert status == 200
        assert body == {"reloaded": True, "model_version": 1}

    def test_admin_reload_failure_is_500_and_keeps_serving(
        self, server, tmp_path
    ):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/admin/reload", {"checkpoint": str(tmp_path / "x.npz")})
        assert excinfo.value.code == 500
        status, _ = _get(server, "/predict")  # old model still answers
        assert status == 200


class TestOverloadMapping:
    def test_503_with_retry_after(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=3)
        service = PredictionService.for_dataset(
            model, tiny_dataset,
            # max_batch=1: without it the dispatcher can coalesce all
            # six requests into one batch before the blocked forward
            # starts, leaving the queue empty and nothing to reject.
            config=ServiceConfig(queue_depth=1, retry_after_seconds=0.2,
                                 max_batch=1),
        )
        http_server = make_server(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        release = threading.Event()
        picked = threading.Event()
        original = service._full_forecast

        def blocking(model, version):
            picked.set()
            release.wait(timeout=10.0)
            return original(model, version)

        service._full_forecast = blocking
        service.start()
        try:
            results = []

            def call():
                try:
                    results.append(_get(http_server, "/predict"))
                except urllib.error.HTTPError as error:
                    results.append((error.code, dict(error.headers)))

            # Deterministic overload: wedge the dispatcher on one
            # request, fill the depth-1 queue synchronously, and only
            # then issue the request that must bounce with a 503.
            first = threading.Thread(target=call)
            first.start()
            assert picked.wait(timeout=10.0)
            backlog = _Request(None)
            service._queue.put_nowait(backlog)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(http_server, "/predict")
            assert excinfo.value.code == 503
            assert "Retry-After" in dict(excinfo.value.headers)
            release.set()
            first.join(timeout=10.0)
            assert backlog.done.wait(timeout=10.0)  # rejected != dropped
            assert results and results[0][0] == 200
        finally:
            service.stop()
            release.set()
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5.0)

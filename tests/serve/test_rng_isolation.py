"""Regression: the serving request path never touches global RNG state.

A prediction server handles requests concurrently with anything else the
process does (e.g. a notebook exploring data with ``np.random``); if the
request path consumed or reseeded the global stream, serving would make
unrelated code non-reproducible. The request path must also be
deterministic in itself: identical flow state + identical weights =>
identical forecasts, with no hidden stochastic dependence (dropout must
stay disabled in eval mode).
"""

import numpy as np

from repro.core import STGNNDJD
from repro.serve import PredictionService


def _fingerprint():
    """A comparable snapshot of numpy's *global* legacy RNG state."""
    kind, keys, pos, has_gauss, cached = np.random.get_state()
    return kind, tuple(keys), pos, has_gauss, cached


def _exercise(service, dataset):
    slot_seconds = dataset.config.slot_seconds
    service.predict()
    now = service.store.frontier * slot_seconds + 1.0
    service.store.ingest_event(0, 1, start_time=now, end_time=now + 300.0)
    service.store.advance_to(service.store.frontier + 1)
    service.predict(stations=[0, 2])
    return service.predict()


class TestRngIsolation:
    def test_request_path_leaves_global_rng_untouched(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=5)
        service = PredictionService.for_dataset(model, tiny_dataset)
        np.random.seed(1234)  # pin a recognisable global state
        before = _fingerprint()
        _exercise(service, tiny_dataset)
        assert _fingerprint() == before

    def test_request_path_leaves_global_rng_untouched_with_dispatcher(
        self, tiny_dataset
    ):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=5)
        service = PredictionService.for_dataset(model, tiny_dataset)
        np.random.seed(1234)
        before = _fingerprint()
        with service:
            service.predict()
            service.predict(stations=[1])
        assert _fingerprint() == before

    def test_forecasts_are_deterministic_across_service_instances(
        self, tiny_dataset
    ):
        # Dropout > 0 in the config; eval mode must make it inert on the
        # request path, so two services with the same weights agree bit
        # for bit even after identical ingest streams.
        first = PredictionService.for_dataset(
            STGNNDJD.from_dataset(tiny_dataset, seed=5), tiny_dataset
        )
        second = PredictionService.for_dataset(
            STGNNDJD.from_dataset(tiny_dataset, seed=5), tiny_dataset
        )
        a = _exercise(first, tiny_dataset)
        b = _exercise(second, tiny_dataset)
        np.testing.assert_array_equal(a.demand, b.demand)
        np.testing.assert_array_equal(a.supply, b.supply)

    def test_repeated_predicts_identical_without_ingest(self, tiny_dataset):
        service = PredictionService.for_dataset(
            STGNNDJD.from_dataset(tiny_dataset, seed=5), tiny_dataset
        )
        first = service.predict()
        second = service.predict()
        np.testing.assert_array_equal(first.demand, second.demand)
        assert second.cached

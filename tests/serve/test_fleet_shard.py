"""Shard parity: K-sharded ingest reassembles bitwise equal to one store.

The property test is the fleet tier's load-bearing guarantee — a dirty,
out-of-order trip stream routed through a :class:`ShardedFlowStore`
(K ∈ {1, 2, 7}) must leave retained tensors, samples, and realized
flows **bitwise** identical to a single :class:`FlowStateStore` fed the
same events in the same order. Plus deterministic coverage of the shard
map, coherent clocks, and the torn-rollover self-healing path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import TripRecord
from repro.serve import FlowStateConfig, FlowStateStore, ShardedFlowStore, ShardMap

SLOT = 1800.0


class TestShardMap:
    def test_balanced_contiguous_blocks(self):
        shard_map = ShardMap(10, 3)
        assert shard_map.sizes() == [4, 3, 3]
        assert [shard_map.shard_of(s) for s in range(10)] == [
            0, 0, 0, 0, 1, 1, 1, 2, 2, 2,
        ]
        np.testing.assert_array_equal(shard_map.stations(1), [4, 5, 6])

    def test_every_station_owned_exactly_once(self):
        shard_map = ShardMap(571, 7)  # the paper's Divvy city
        owned = np.concatenate([
            shard_map.stations(k) for k in range(7)
        ])
        np.testing.assert_array_equal(np.sort(owned), np.arange(571))
        assert sum(shard_map.sizes()) == 571
        assert max(shard_map.sizes()) - min(shard_map.sizes()) <= 1

    def test_rejects_more_shards_than_stations(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardMap(3, 4)
        with pytest.raises(ValueError, match="num_shards"):
            ShardMap(3, 0)

    def test_shard_of_rejects_out_of_range(self):
        shard_map = ShardMap(8, 2)
        with pytest.raises(ValueError, match="station"):
            shard_map.shard_of(8)
        with pytest.raises(ValueError, match="shard"):
            shard_map.stations(2)


@st.composite
def dirty_streams(draw):
    """A dirty trip log in bounded-lateness delivery order.

    Stations start at 7 so every K ∈ {1, 2, 7} yields non-empty shards;
    durations span dirty-negative through in-transit-past-the-end, and
    adjacent deliveries are swapped when their slot gap stays inside
    the retained horizon.
    """
    num_stations = draw(st.integers(min_value=7, max_value=12))
    num_slots = draw(st.integers(min_value=8, max_value=100))
    num_trips = draw(st.integers(min_value=0, max_value=120))
    trips = []
    for trip_id in range(num_trips):
        origin = draw(st.integers(0, num_stations - 1))
        destination = draw(st.integers(0, num_stations - 1))
        start_slot = draw(st.integers(0, num_slots - 1))
        offset = draw(st.floats(min_value=0.0, max_value=SLOT - 1.0))
        start = start_slot * SLOT + offset
        duration = draw(st.floats(min_value=-2 * SLOT, max_value=6 * SLOT))
        trips.append(TripRecord(trip_id, origin, destination, start,
                                float(start + duration)))
    trips.sort(key=lambda t: t.start_time)
    for i in range(len(trips) - 1):
        gap = trips[i + 1].start_slot(SLOT) - trips[i].start_slot(SLOT)
        if gap <= 40 and draw(st.booleans()):
            trips[i], trips[i + 1] = trips[i + 1], trips[i]
    return num_stations, num_slots, trips


@pytest.mark.parametrize("num_shards", [1, 2, 7])
@given(stream=dirty_streams())
@settings(max_examples=25, deadline=None)
def test_sharded_ingest_matches_single_store_bitwise(num_shards, stream):
    num_stations, num_slots, trips = stream
    config = FlowStateConfig(
        num_stations=num_stations, slot_seconds=SLOT,
        short_window=6, long_days=1,
    )
    single = FlowStateStore(config)
    fleet = ShardedFlowStore(config, num_shards=num_shards)
    for trip in trips:
        assert single.ingest(trip) == fleet.ingest(trip)
    single.advance_to(num_slots)
    fleet.advance_to(num_slots)

    assert fleet.frontier == single.frontier
    first_s, in_s, out_s = single.retained_tensors()
    first_f, in_f, out_f = fleet.retained_tensors()
    assert first_f == first_s
    assert np.array_equal(in_f, in_s)
    assert np.array_equal(out_f, out_s)

    for slot in (first_s, (first_s + num_slots) // 2, num_slots):
        demand_s, supply_s = single.realized(slot)
        demand_f, supply_f = fleet.realized(slot)
        assert np.array_equal(demand_f, demand_s)
        assert np.array_equal(supply_f, supply_s)

    if num_slots >= config.horizon:
        sample_s = single.sample()
        sample_f = fleet.sample()
        assert sample_f.t == sample_s.t
        assert np.array_equal(sample_f.short_inflow, sample_s.short_inflow)
        assert np.array_equal(sample_f.short_outflow, sample_s.short_outflow)
        assert np.array_equal(sample_f.long_inflow, sample_s.long_inflow)
        assert np.array_equal(sample_f.long_outflow, sample_s.long_outflow)


class TestCoherentClocks:
    def config(self, **overrides):
        defaults = dict(num_stations=8, slot_seconds=SLOT,
                        short_window=4, long_days=1)
        defaults.update(overrides)
        return FlowStateConfig(**defaults)

    def test_ingest_pre_advances_all_shards(self):
        fleet = ShardedFlowStore(self.config(), num_shards=2)
        fleet.ingest_event(0, 7, 10 * SLOT, 10 * SLOT + 60)
        assert fleet.coherent
        assert all(s.frontier == 10 for s in fleet.shards)

    def test_torn_rollover_heals_on_next_read(self):
        fleet = ShardedFlowStore(self.config(), num_shards=2)
        fleet.advance_to(10)
        # Tear the clocks: one shard advanced out-of-band (what an
        # injected rollover fault leaves behind).
        fleet.shards[0].advance_to(14)
        assert not fleet.coherent
        assert fleet.frontier == 10  # conservative: the laggard
        fleet.retained_tensors()  # any assembled read heals first
        assert fleet.coherent
        assert fleet.frontier == 14

    def test_torn_rollover_heals_on_next_advance(self):
        fleet = ShardedFlowStore(self.config(), num_shards=3)
        fleet.advance_to(10)
        fleet.shards[2].advance_to(20)
        fleet.advance_to(12)  # target below the runaway shard
        assert fleet.coherent
        assert fleet.frontier == 20  # raised to the max, never backwards

    def test_cannot_advance_backwards(self):
        fleet = ShardedFlowStore(self.config(), num_shards=2)
        fleet.advance_to(10)
        with pytest.raises(ValueError, match="backwards"):
            fleet.advance_to(9)

    def test_rollover_listener_fires_once_per_advance(self):
        fleet = ShardedFlowStore(self.config(), num_shards=2)
        calls = []
        fleet.add_rollover_listener(
            lambda store, closed: calls.append(list(closed))
        )
        fleet.advance_to(3)
        fleet.ingest_event(1, 2, 5 * SLOT, 5 * SLOT + 60)  # auto-advance
        assert calls == [[0, 1, 2], [3, 4]]

    def test_late_verdict_consistent_across_shards(self):
        config = self.config(late_policy="drop")
        fleet = ShardedFlowStore(config, num_shards=2)
        horizon = config.horizon
        fleet.advance_to(horizon + 60)
        # Cross-shard event far behind the horizon: dropped, not torn.
        accepted = fleet.ingest_event(0, 7, 0.0, 60.0)
        assert not accepted
        assert fleet.version == sum(s.version for s in fleet.shards)

    def test_partitioned_store_refuses_direct_sample(self):
        fleet = ShardedFlowStore(self.config(), num_shards=2)
        fleet.advance_to(fleet.config.horizon)
        with pytest.raises(ValueError, match="ShardedFlowStore.sample"):
            fleet.shards[0].sample()


def test_warm_start_matches_single_store(tiny_dataset):
    single = FlowStateStore.from_dataset(tiny_dataset)
    fleet = ShardedFlowStore.from_dataset(tiny_dataset, num_shards=3)
    assert fleet.frontier == single.frontier
    assert fleet.warmed_up
    first_s, in_s, out_s = single.retained_tensors()
    first_f, in_f, out_f = fleet.retained_tensors()
    assert first_f == first_s
    assert np.array_equal(in_f, in_s)
    assert np.array_equal(out_f, out_s)
    sample_s, sample_f = single.sample(), fleet.sample()
    assert np.array_equal(sample_f.short_inflow, sample_s.short_inflow)
    assert np.array_equal(sample_f.long_outflow, sample_s.long_outflow)

"""End-to-end request tracing and /status over the HTTP serving path."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import STGNNDJD
from repro.obs import JsonlExporter, read_events, set_sink
from repro.obs.quality import QualityConfig
from repro.obs.slo import SLOConfig
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    TraceConfig,
    enable_tracing,
    group_traces,
    parse_traceparent,
    render_trace,
    trace_spans,
)
from repro.serve import PredictionService, ServiceConfig, make_server
from repro.serve.service import _Request

CLIENT = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


@pytest.fixture
def telemetry(tmp_path):
    """Tracing on, spans routed to a JSONL file; state restored after."""
    path = tmp_path / "serve.events.jsonl"
    sink = JsonlExporter(path)
    prev_sink = set_sink(sink)
    prev_trace = enable_tracing(TraceConfig())
    try:
        yield path
    finally:
        enable_tracing(prev_trace if prev_trace is not None else False)
        set_sink(prev_sink)
        sink.close()


@pytest.fixture
def server(telemetry, tiny_dataset):
    model = STGNNDJD.from_dataset(tiny_dataset, seed=3)
    service = PredictionService.for_dataset(
        model, tiny_dataset,
        config=ServiceConfig(
            quality=QualityConfig(window=16, min_samples=1),
            slo=SLOConfig(p99_latency_seconds=30.0),
        ),
    )
    http_server = make_server(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    service.start()
    try:
        yield http_server
    finally:
        service.stop()
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path, traceparent=None):
    request = urllib.request.Request(_url(server, path))
    if traceparent is not None:
        request.add_header(TRACEPARENT_HEADER, traceparent)
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return (response.status, json.loads(response.read()),
                response.headers.get(TRACEPARENT_HEADER))


def _spans(path, expect="http.predict", count=1, timeout=5.0):
    """Spans from the stream, waiting for the server thread to finish
    emitting (the client's response returns before the request span
    closes)."""
    deadline = time.monotonic() + timeout
    while True:
        spans = trace_spans(read_events(path))
        if sum(s["name"] == expect for s in spans) >= count:
            return spans
        if time.monotonic() > deadline:
            return spans
        time.sleep(0.01)


class TestHttpTracePropagation:
    def test_client_context_parents_the_request_trace(self, server, telemetry):
        status, _, echoed = _get(server, "/predict", traceparent=CLIENT)
        assert status == 200
        client = parse_traceparent(CLIENT)
        # the response hands back a span on the *client's* trace
        echoed_ctx = parse_traceparent(echoed)
        assert echoed_ctx is not None
        assert echoed_ctx.trace_id == client.trace_id

        spans = {s["name"]: s["data"] for s in _spans(telemetry)}
        request = spans["http.predict"]
        assert request["trace_id"] == client.trace_id
        assert request["parent_span_id"] == client.span_id
        assert request["attrs"]["status"] == 200
        # queue wait + serialization are children on the same trace
        assert spans["serve.queue"]["trace_id"] == client.trace_id
        assert spans["serve.queue"]["parent_span_id"] == request["span_id"]
        assert spans["http.serialize"]["parent_span_id"] == request["span_id"]
        # the batch is its own trace root, *linking* the request span
        batch = spans["serve.batch"]
        assert batch["trace_id"] != client.trace_id
        assert batch["parent_span_id"] is None
        assert [client.trace_id, request["span_id"]] in batch["links"]
        assert spans["serve.forward"]["trace_id"] == batch["trace_id"]
        assert spans["serve.assemble"]["trace_id"] == batch["trace_id"]

    def test_malformed_traceparent_starts_fresh_root(self, server, telemetry):
        status, _, echoed = _get(server, "/predict", traceparent="garbage")
        assert status == 200
        assert parse_traceparent(echoed) is not None  # fresh, well-formed
        [request] = [s["data"] for s in _spans(telemetry)
                     if s["name"] == "http.predict"]
        assert request["parent_span_id"] is None

    def test_cache_hit_request_still_traces_completely(self, server, telemetry):
        _get(server, "/predict", traceparent=CLIENT)
        fresh = "00-" + "c" * 32 + "-" + "d" * 16 + "-01"
        status, body, _ = _get(server, "/predict", traceparent=fresh)
        assert status == 200
        assert body["cached"] is True
        spans = _spans(telemetry, count=2)
        batches = [s["data"] for s in spans if s["name"] == "serve.batch"]
        assert batches[-1]["attrs"]["cached"] is True
        # the cached request's trace is complete: request + queue + batch link
        request = next(s["data"] for s in spans
                       if s["name"] == "http.predict"
                       and s["data"]["trace_id"] == "c" * 32)
        queues = [s["data"] for s in spans if s["name"] == "serve.queue"
                  and s["data"]["trace_id"] == "c" * 32]
        assert len(queues) == 1
        assert ["c" * 32, request["span_id"]] in batches[-1]["links"]
        # no second forward ran for the cache hit
        assert len([s for s in spans if s["name"] == "serve.forward"]) == 1

    def test_cli_reconstructs_the_request_timeline(self, server, telemetry):
        _get(server, "/predict", traceparent=CLIENT)
        traces = group_traces(_spans(telemetry))
        client = parse_traceparent(CLIENT)
        text = render_trace(traces, client.trace_id)
        for name in ("http.predict", "serve.queue", "↳ serve.batch",
                     "serve.forward", "http.serialize"):
            assert name in text

    def test_status_endpoint_reports_slo_trace_quality(self, server):
        status, body, _ = _get(server, "/status")
        assert status == 200
        assert body["status"] in ("ok", "degraded")
        names = {obj["name"] for obj in body["slo"]["objectives"]}
        assert {"p99_latency_seconds", "staleness_ratio",
                "error_budget_burn", "drift_ratio"} <= names
        assert body["trace"]["enabled"] is True
        assert body["quality"]["pending"] >= 0


class TestOverloadTrace:
    def test_rejected_request_span_records_503(self, telemetry, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=3)
        service = PredictionService.for_dataset(
            model, tiny_dataset,
            config=ServiceConfig(queue_depth=1, retry_after_seconds=0.2,
                                 max_batch=1),
        )
        http_server = make_server(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        release = threading.Event()
        picked = threading.Event()
        original = service._full_forecast

        def blocking(model, version):
            picked.set()
            release.wait(timeout=10.0)
            return original(model, version)

        service._full_forecast = blocking
        service.start()
        try:
            first_done = threading.Event()
            first = threading.Thread(
                target=lambda: (_get(http_server, "/predict"),
                                first_done.set()))
            first.start()
            assert picked.wait(timeout=10.0)
            service._queue.put_nowait(_Request(None))  # fill depth-1 queue
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(http_server, "/predict", traceparent=CLIENT)
            assert excinfo.value.code == 503
            release.set()
            first.join(timeout=10.0)
        finally:
            service.stop()
            release.set()
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5.0)
        client = parse_traceparent(CLIENT)
        rejected = [
            s["data"] for s in _spans(telemetry, count=2)
            if s["name"] == "http.predict"
            and s["data"]["trace_id"] == client.trace_id
        ]
        assert len(rejected) == 1
        assert rejected[0]["attrs"]["status"] == 503

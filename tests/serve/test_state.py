"""Unit tests for the incremental flow-state store."""

import numpy as np
import pytest

from repro.data.records import TripRecord
from repro.serve import FlowStateConfig, FlowStateStore, LateEventError


def _config(**overrides):
    defaults = dict(
        num_stations=4, slot_seconds=3600.0, short_window=6, long_days=1
    )
    defaults.update(overrides)
    return FlowStateConfig(**defaults)


def _trip(origin, destination, start_slot, end_slot, slot=3600.0):
    return TripRecord(0, origin, destination, start_slot * slot + 1.0,
                      end_slot * slot + 1.0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            _config(num_stations=0)
        with pytest.raises(ValueError):
            _config(slot_seconds=-1.0)
        with pytest.raises(ValueError):
            _config(slot_seconds=7000.0)  # does not divide a day
        with pytest.raises(ValueError):
            _config(short_window=0)
        with pytest.raises(ValueError):
            _config(long_days=0)
        with pytest.raises(ValueError):
            _config(late_policy="buffer")

    def test_horizon_is_deepest_lookback(self):
        assert _config(short_window=6, long_days=1).horizon == 24
        assert _config(short_window=30, long_days=1).horizon == 30

    def test_for_dataset_matches_dimensions(self, tiny_dataset):
        config = FlowStateConfig.for_dataset(tiny_dataset)
        assert config.num_stations == tiny_dataset.num_stations
        assert config.short_window == tiny_dataset.config.short_window
        assert config.long_days == tiny_dataset.config.long_days
        assert config.slots_per_day == tiny_dataset.slots_per_day


class TestIngest:
    def test_outflow_lands_in_start_slot(self):
        store = FlowStateStore(_config())
        assert store.ingest(_trip(1, 2, start_slot=0, end_slot=0))
        _, inflow, outflow = store.retained_tensors()
        assert outflow[0, 1, 2] == 1.0
        assert inflow[0, 2, 1] == 1.0

    def test_frontier_auto_advances(self):
        store = FlowStateStore(_config())
        store.ingest(_trip(0, 1, start_slot=5, end_slot=5))
        assert store.frontier == 5

    def test_in_transit_inflow_waits_for_rollover(self):
        store = FlowStateStore(_config())
        store.ingest(_trip(0, 1, start_slot=0, end_slot=3))
        _, inflow, _ = store.retained_tensors()
        assert inflow.sum() == 0.0  # still in transit
        store.advance_to(3)
        first, inflow, _ = store.retained_tensors()
        assert inflow[3 - first, 1, 0] == 1.0

    def test_rollover_gap_applies_all_matured_inflow(self):
        store = FlowStateStore(_config())
        store.ingest(_trip(0, 1, start_slot=0, end_slot=2))
        store.ingest(_trip(2, 3, start_slot=0, end_slot=4))
        store.advance_to(10)
        first, inflow, _ = store.retained_tensors()
        assert inflow[2 - first, 1, 0] == 1.0
        assert inflow[4 - first, 3, 2] == 1.0

    def test_late_event_within_horizon_is_applied(self):
        store = FlowStateStore(_config())
        store.advance_to(10)
        version = store.version
        assert store.ingest(_trip(1, 0, start_slot=8, end_slot=9))
        first, inflow, outflow = store.retained_tensors()
        assert outflow[8 - first, 1, 0] == 1.0
        assert inflow[9 - first, 0, 1] == 1.0
        assert store.version > version  # forecast caches must invalidate

    def test_event_behind_horizon_dropped_by_default(self):
        store = FlowStateStore(_config())
        store.advance_to(100)
        assert not store.ingest(_trip(0, 1, start_slot=2, end_slot=3))
        _, inflow, outflow = store.retained_tensors()
        assert inflow.sum() == 0.0 and outflow.sum() == 0.0

    def test_event_behind_horizon_errors_when_configured(self):
        store = FlowStateStore(_config(late_policy="error"))
        store.advance_to(100)
        with pytest.raises(LateEventError):
            store.ingest(_trip(0, 1, start_slot=2, end_slot=3))

    def test_negative_return_time_ignored_like_batch(self):
        # build_flow_tensors drops inflow for end_slot < 0; so do we.
        store = FlowStateStore(_config())
        store.ingest_event(0, 1, start_time=10.0, end_time=-5000.0)
        _, inflow, outflow = store.retained_tensors()
        assert outflow[0, 0, 1] == 1.0
        assert inflow.sum() == 0.0

    def test_rejects_unknown_stations(self):
        store = FlowStateStore(_config())
        with pytest.raises(ValueError):
            store.ingest_event(9, 0, 0.0, 10.0)
        with pytest.raises(ValueError):
            store.ingest_event(0, -1, 0.0, 10.0)

    def test_rejects_prehistoric_start(self):
        store = FlowStateStore(_config())
        with pytest.raises(ValueError):
            store.ingest_event(0, 1, start_time=-10.0, end_time=10.0)


class TestRollover:
    def test_cannot_advance_backwards(self):
        store = FlowStateStore(_config())
        store.advance_to(5)
        with pytest.raises(ValueError):
            store.advance_to(4)

    def test_advance_is_idempotent_at_frontier(self):
        store = FlowStateStore(_config())
        store.advance_to(5)
        version = store.version
        store.advance_to(5)
        assert store.version == version

    def test_eviction_zeroes_recycled_slots(self):
        config = _config()
        store = FlowStateStore(config)
        store.ingest(_trip(0, 1, start_slot=0, end_slot=0))
        # Push slot 0 off the horizon; its ring row is recycled clean.
        store.advance_to(config.horizon + 1)
        _, inflow, outflow = store.retained_tensors()
        assert inflow.sum() == 0.0 and outflow.sum() == 0.0

    def test_version_bumps_on_rollover(self):
        store = FlowStateStore(_config())
        before = store.version
        store.advance_to(1)
        assert store.version > before


class TestSample:
    def test_requires_full_history(self):
        store = FlowStateStore(_config())
        with pytest.raises(IndexError):
            store.sample()

    def test_warm_start_matches_dataset_sample(self, tiny_dataset):
        t = tiny_dataset.min_history + 3
        store = FlowStateStore.from_dataset(tiny_dataset, frontier=t)
        ours, theirs = store.sample(), tiny_dataset.sample(t)
        assert ours.t == theirs.t == t
        np.testing.assert_array_equal(ours.short_inflow, theirs.short_inflow)
        np.testing.assert_array_equal(ours.short_outflow, theirs.short_outflow)
        np.testing.assert_array_equal(ours.long_inflow, theirs.long_inflow)
        np.testing.assert_array_equal(ours.long_outflow, theirs.long_outflow)

    def test_windows_follow_the_frontier(self, tiny_dataset):
        t = tiny_dataset.min_history + 2
        store = FlowStateStore.from_dataset(tiny_dataset, frontier=t)
        store.advance_to(t + 1)
        reference = tiny_dataset.sample(t + 1)
        ours = store.sample()
        # Slot t was never ingested online, so it reads as zeros; all
        # other window rows must match the dataset exactly.
        np.testing.assert_array_equal(ours.short_inflow[:-1],
                                      reference.short_inflow[:-1])
        assert ours.short_inflow[-1].sum() == 0.0

    def test_targets_are_zero(self, tiny_dataset):
        store = FlowStateStore.from_dataset(tiny_dataset)
        sample = store.sample()
        assert sample.target_demand.sum() == 0.0
        assert sample.target_supply.sum() == 0.0

    def test_warm_started_store_reports_warmed_up(self, tiny_dataset):
        assert FlowStateStore.from_dataset(tiny_dataset).warmed_up

    def test_cold_store_warms_after_one_horizon(self):
        config = _config()
        store = FlowStateStore(config, frontier=50)
        assert not store.warmed_up
        store.advance_to(50 + config.horizon)
        assert store.warmed_up

"""FleetRouter: dispatch policy, failover, staged reload, aggregation."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core import STGNNDJD, save_checkpoint
from repro.faults import FaultPlan, injected
from repro.serve import (
    FleetConfig,
    FleetReloadError,
    FleetRouter,
    ReplicaCrash,
    ServiceConfig,
    ServiceError,
    make_fleet_server,
)
from repro.serve.service import _Request


@pytest.fixture(scope="module")
def served_model(tiny_dataset):
    return STGNNDJD.from_dataset(tiny_dataset, seed=3)


def build_fleet(model, dataset, **kwargs) -> FleetRouter:
    return FleetRouter.for_dataset(model, dataset, num_shards=2,
                                   num_replicas=2, **kwargs)


def count_dispatches(router) -> list[int]:
    """Wrap each replica's predict so tests can see who served what."""
    counts = [0] * len(router.replicas)
    for i, replica in enumerate(router.replicas):
        original = replica.predict

        def counting(stations=None, timeout=None, _i=i, _original=original):
            counts[_i] += 1
            return _original(stations, timeout=timeout)

        replica.predict = counting
    return counts


class TestConstruction:
    def test_replica_names_and_isolated_models(self, served_model,
                                               tiny_dataset):
        router = build_fleet(served_model, tiny_dataset)
        assert [r.name for r in router.replicas] == [
            "fleet.replica0", "fleet.replica1",
        ]
        # Same weights, distinct storage: a staged reload must be able
        # to swap one replica without moving the other.
        p0 = list(router.replicas[0]._model.parameters())
        p1 = list(router.replicas[1]._model.parameters())
        for a, b in zip(p0, p1):
            assert np.array_equal(a.data, b.data)
            assert a.data is not b.data

    def test_replicas_share_one_store(self, served_model, tiny_dataset):
        router = build_fleet(served_model, tiny_dataset)
        assert all(r.store is router.store for r in router.replicas)
        assert router.store.num_shards == 2

    def test_validation(self, served_model, tiny_dataset):
        with pytest.raises(ValueError, match="at least one replica"):
            FleetRouter([])
        with pytest.raises(ValueError, match="num_replicas"):
            FleetRouter.for_dataset(served_model, tiny_dataset,
                                    num_replicas=0)
        a = build_fleet(served_model, tiny_dataset)
        b = build_fleet(served_model, tiny_dataset)
        with pytest.raises(ValueError, match="share one flow store"):
            FleetRouter([a.replicas[0], b.replicas[1]])
        with pytest.raises(ValueError, match="strategy"):
            FleetConfig(strategy="random")
        with pytest.raises(ValueError, match="shadow_tolerance"):
            FleetConfig(shadow_tolerance=0.0)


class TestDispatch:
    def test_round_robin_alternates(self, served_model, tiny_dataset):
        router = build_fleet(served_model, tiny_dataset,
                             config=FleetConfig(strategy="round_robin"),
                             service_config=ServiceConfig(cache=False))
        counts = count_dispatches(router)
        with router:
            for _ in range(4):
                router.predict()
        assert counts == [2, 2]

    def test_least_loaded_avoids_the_backlogged_replica(
        self, served_model, tiny_dataset
    ):
        router = build_fleet(served_model, tiny_dataset)
        counts = count_dispatches(router)
        # Replica 0 is never started; its queue holds a synthetic
        # backlog, so the load signal steers every request to replica 1.
        for _ in range(3):
            router.replicas[0]._queue.put_nowait(_Request(None))
        for _ in range(3):
            router.predict()
        assert counts == [0, 3]
        assert not router.replicas[0].running
        router.stop()

    def test_crashed_replica_reroutes_and_restarts(self, served_model,
                                                   tiny_dataset):
        router = build_fleet(served_model, tiny_dataset,
                             service_config=ServiceConfig(cache=False))
        plan = FaultPlan(seed=0).on(
            "fleet.replica0.dispatch", "raise", at=1,
            exception=ReplicaCrash("injected replica crash"),
        )
        with router:
            with injected(plan):
                forecast = router.predict()  # rerouted within the call
            assert forecast is not None
            assert plan.fired
            # The crash killed replica 0's dispatcher mid-fleet.
            router.replicas[0]._dispatcher.join(timeout=5.0)
            assert not router.replicas[0].running
            assert router.running  # replica 1 carries the fleet
            # The next dispatch that picks replica 0 revives it.
            for _ in range(4):
                router.predict()
            assert router.replicas[0].running

    def test_auto_restart_off_leaves_the_replica_down(self, served_model,
                                                      tiny_dataset):
        router = build_fleet(served_model, tiny_dataset,
                             config=FleetConfig(auto_restart=False),
                             service_config=ServiceConfig(cache=False))
        plan = FaultPlan(seed=0).on(
            "fleet.replica0.dispatch", "raise", at=1,
            exception=ReplicaCrash("injected replica crash"),
        )
        with router:
            with injected(plan):
                router.predict()
            router.replicas[0]._dispatcher.join(timeout=5.0)
            for _ in range(4):
                router.predict()  # still served, by replica 1 alone
            assert not router.replicas[0].running


class TestStagedReload:
    def test_fan_out_after_healthy_canary(self, served_model, tiny_dataset,
                                          tmp_path):
        path = tmp_path / "next.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=9), path)
        router = build_fleet(served_model, tiny_dataset)
        assert router.reload(path) == 1
        assert [r.model_version for r in router.replicas] == [1, 1]
        assert not router.reload_failed
        assert router.quarantined == frozenset()

    def test_concurrent_reloads_serialize_canary_phases(
        self, served_model, tiny_dataset, tmp_path
    ):
        """An operator reload racing a continual promotion must not
        interleave canary → shadow-check → fan-out phases: the promotion
        lock admits one full staged rollout at a time."""
        import time

        path = tmp_path / "next.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=9), path)
        router = build_fleet(served_model, tiny_dataset)
        log: list[tuple[int, str]] = []
        log_lock = threading.Lock()
        for i, replica in enumerate(router.replicas):
            original = replica.reload

            def recording(p=None, _i=i, _original=original):
                with log_lock:
                    log.append((threading.get_ident(), f"reload{_i}"))
                time.sleep(0.02)  # widen any interleaving window
                return _original(p)

            replica.reload = recording

        threads = [
            threading.Thread(target=router.reload, args=(path,))
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Each rollout is the contiguous pair (canary, fan-out) from one
        # thread; a second rollout's canary never lands mid-rollout.
        assert len(log) == 6
        for j in range(0, 6, 2):
            (tid_a, phase_a), (tid_b, phase_b) = log[j], log[j + 1]
            assert tid_a == tid_b
            assert (phase_a, phase_b) == ("reload0", "reload1")
        assert [r.model_version for r in router.replicas] == [3, 3]

    def test_failed_canary_is_quarantined_and_incumbents_serve(
        self, served_model, tiny_dataset, tmp_path
    ):
        path = tmp_path / "next.npz"
        save_checkpoint(STGNNDJD.from_dataset(tiny_dataset, seed=9), path)
        router = build_fleet(
            served_model, tiny_dataset,
            # An impossibly tight shadow band: any real weight change
            # fails the canary check, standing in for a bad checkpoint.
            config=FleetConfig(shadow_tolerance=1e-12),
        )
        before = router.predict()
        with pytest.raises(FleetReloadError, match="quarantined"):
            router.reload(path)
        assert router.quarantined == {0}
        assert router.reload_failed
        # Incumbent still serves the old weights to all traffic.
        assert router.replicas[1].model_version == 0
        assert router.model_version == 0
        after = router.predict()
        np.testing.assert_array_equal(after.demand, before.demand)

        router.restore_replica(0)
        assert router.quarantined == frozenset()
        assert router.predict() is not None  # back in the rotation

    def test_unreadable_checkpoint_fails_without_quarantine(
        self, served_model, tiny_dataset, tmp_path
    ):
        router = build_fleet(served_model, tiny_dataset)
        with pytest.raises(FleetReloadError, match="rejected"):
            router.reload(tmp_path / "missing.npz")
        # Reload failed atomically: old weights intact, nothing to bench.
        assert router.quarantined == frozenset()
        assert [r.model_version for r in router.replicas] == [0, 0]

    def test_all_quarantined_refuses_to_route_or_reload(
        self, served_model, tiny_dataset
    ):
        router = build_fleet(served_model, tiny_dataset)
        router._quarantine(0)
        router._quarantine(1)
        with pytest.raises(ServiceError, match="quarantined"):
            router.predict()
        with pytest.raises(ServiceError, match="quarantined"):
            router.reload()


class TestAggregation:
    def test_status_shape(self, served_model, tiny_dataset):
        router = build_fleet(served_model, tiny_dataset)
        router.predict()
        status = router.status()
        assert status["status"] in ("ok", "degraded")
        assert status["shards"] == 2
        assert len(status["replicas"]) == 2
        slo = status["slo"]
        assert set(slo) >= {"healthy", "fleet", "replicas", "worst_replica"}
        assert slo["worst_replica"] in ("fleet.replica0", "fleet.replica1")
        assert set(slo["replicas"]) == {"fleet.replica0", "fleet.replica1"}

    def test_replica_health_snapshot(self, served_model, tiny_dataset):
        router = build_fleet(served_model, tiny_dataset)
        router._quarantine(1)
        health = router.replica_health()
        assert [h["name"] for h in health] == [
            "fleet.replica0", "fleet.replica1",
        ]
        assert [h["quarantined"] for h in health] == [False, True]
        assert all(h["model_version"] == 0 for h in health)

    def test_retry_after_jitter_is_decorrelated_across_replicas(
        self, served_model, tiny_dataset
    ):
        # Each replica seeds its jitter stream from its name, so a
        # synchronized herd of rejected clients never gets handed one
        # identical wall-clock retry time by every replica.
        router = build_fleet(served_model, tiny_dataset)
        hints0 = [router.replicas[0]._next_retry_after() for _ in range(8)]
        hints1 = [router.replicas[1]._next_retry_after() for _ in range(8)]
        assert hints0 != hints1
        base = router.replicas[0].config.retry_after_seconds
        jitter = router.replicas[0].config.retry_jitter
        for hint in hints0 + hints1:
            assert base <= hint <= base * (1.0 + jitter)


class TestFleetHTTP:
    @pytest.fixture
    def fleet_server(self, served_model, tiny_dataset):
        router = build_fleet(served_model, tiny_dataset)
        http_server = make_fleet_server(router, port=0)
        thread = threading.Thread(target=http_server.serve_forever,
                                  daemon=True)
        thread.start()
        router.start()
        try:
            yield http_server
        finally:
            router.stop()
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5.0)

    def _get(self, server, path):
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10.0
        ) as response:
            return response.status, json.loads(response.read())

    def test_predict_and_replicas_endpoint(self, fleet_server, tiny_dataset):
        status, body = self._get(fleet_server, "/predict")
        assert status == 200
        assert len(body["demand"]) == tiny_dataset.num_stations

        status, body = self._get(fleet_server, "/replicas")
        assert status == 200
        assert [r["name"] for r in body["replicas"]] == [
            "fleet.replica0", "fleet.replica1",
        ]
        assert all(r["running"] for r in body["replicas"])

    def test_status_aggregates_fleet(self, fleet_server):
        status, body = self._get(fleet_server, "/status")
        assert status == 200
        assert body["shards"] == 2
        assert "worst_replica" in body["slo"]

"""``python -m repro.serve`` flag validation: clear errors, no tracebacks.

Bad flag combinations must die at parse time via ``parser.error`` —
SystemExit(2) with the offending flag named on stderr — instead of
surfacing minutes later as a config ``__post_init__`` traceback or a
wedged fleet. ``build_service`` picks the single-service or fleet tier
from the same flags.
"""

import pytest

from repro.serve.__main__ import build_service, main
from repro.serve.fleet import FleetRouter
from repro.serve.service import PredictionService


def expect_flag_error(capsys, argv: list[str], fragment: str) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2  # argparse's usage-error exit code
    stderr = capsys.readouterr().err
    assert fragment in stderr
    assert "Traceback" not in stderr


class TestFleetFlagValidation:
    def test_zero_replicas(self, capsys):
        expect_flag_error(capsys, ["--replicas", "0"],
                          "--replicas must be >= 1")

    def test_negative_shards(self, capsys):
        expect_flag_error(capsys, ["--shards", "-2"],
                          "--shards must be >= 1")

    def test_more_shards_than_stations(self, capsys):
        # The deploy city has 12 stations; each shard needs at least one.
        expect_flag_error(capsys, ["--shards", "13"],
                          "exceeds the 12 stations")

    def test_shards_checked_against_selected_city(self, capsys):
        expect_flag_error(capsys, ["--city", "tiny", "--shards", "100"],
                          "--city tiny")


class TestServiceFlagValidation:
    def test_zero_max_batch(self, capsys):
        expect_flag_error(capsys, ["--max-batch", "0"],
                          "--max-batch must be >= 1")

    def test_negative_batch_wait(self, capsys):
        expect_flag_error(capsys, ["--batch-wait", "-0.1"],
                          "--batch-wait must be >= 0")

    def test_zero_queue_depth(self, capsys):
        expect_flag_error(capsys, ["--queue-depth", "0"],
                          "--queue-depth must be >= 1")

    def test_zero_reload_poll(self, capsys):
        expect_flag_error(capsys, ["--reload-poll", "0"],
                          "--reload-poll must be > 0")

    def test_trace_sample_out_of_range(self, capsys):
        expect_flag_error(capsys, ["--trace-sample", "1.5"],
                          "--trace-sample must be in 0..1")

    def test_nonpositive_slo(self, capsys):
        expect_flag_error(capsys, ["--slo-p99", "0"],
                          "--slo-p99 must be > 0")


class TestCrossFlagValidation:
    def test_quality_window_requires_quality(self, capsys):
        expect_flag_error(capsys, ["--quality-window", "64"],
                          "--quality-window requires --quality")

    def test_quality_window_must_be_positive(self, capsys):
        expect_flag_error(capsys, ["--quality", "--quality-window", "0"],
                          "--quality-window must be >= 1")

    def test_trace_requires_events_sink(self, capsys):
        expect_flag_error(capsys, ["--trace"], "--trace requires --events")


class TestBuildService:
    def _args(self, *extra):
        import argparse

        from repro.serve.__main__ import _validate_args

        namespace = argparse.Namespace(
            host="127.0.0.1", port=0, checkpoint=None, city="tiny",
            seed=13, replicas=1, shards=1, max_batch=64, batch_wait=0.002,
            queue_depth=256, reload_poll=2.0, events=None,
            events_max_mb=64.0, trace=False, trace_sample=1.0,
            quality=False, quality_window=None, slo_p99=0.25,
            verbose=False,
        )
        for key, value in zip(extra[::2], extra[1::2]):
            setattr(namespace, key, value)
        _validate_args(argparse.ArgumentParser(), namespace)
        return namespace

    def test_single_service_without_fleet_flags(self):
        service = build_service(self._args())
        assert isinstance(service, PredictionService)

    def test_fleet_router_when_sharded(self):
        router = build_service(self._args("shards", 2, "replicas", 2))
        assert isinstance(router, FleetRouter)
        assert len(router.replicas) == 2
        assert router.store.num_shards == 2

    def test_replicas_alone_still_builds_a_fleet(self):
        router = build_service(self._args("replicas", 3))
        assert isinstance(router, FleetRouter)
        assert len(router.replicas) == 3
        assert router.store.num_shards == 1

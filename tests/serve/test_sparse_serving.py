"""Serving on the sparse graph representation.

The prediction service is representation-agnostic: a model configured
for top-k sparse graphs must serve /predict round trips unchanged, and
at full coverage its forecasts must be bitwise identical to the dense
model's (the parity tier of ``repro/graphs/sparse.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core import STGNNDJD
from repro.data import TripRecord
from repro.serve import PredictionService


def sparse_model(dataset, top_k: int):
    return STGNNDJD.from_dataset(
        dataset, seed=3, graph_mode="sparse", graph_top_k=top_k,
        graph_block_rows=4,
    )


class TestSparsePredictRoundTrip:
    def test_genuinely_sparse_model_serves_predictions(self, tiny_dataset):
        # tiny_dataset has 8 stations; top_k=5 exercises real sparsity.
        service = PredictionService.for_dataset(
            sparse_model(tiny_dataset, top_k=5), tiny_dataset
        )
        forecast = service.predict()
        n = tiny_dataset.num_stations
        assert forecast.demand.shape == (n,)
        assert forecast.supply.shape == (n,)
        assert np.isfinite(forecast.demand).all()
        assert np.isfinite(forecast.supply).all()

    def test_ingest_then_predict_advances_frontier(self, tiny_dataset):
        service = PredictionService.for_dataset(
            sparse_model(tiny_dataset, top_k=5), tiny_dataset
        )
        slot_seconds = tiny_dataset.config.slot_seconds
        now = service.store.frontier * slot_seconds + 1.0
        accepted = service.store.ingest(TripRecord(
            trip_id=0, origin=0, destination=3,
            start_time=now, end_time=now + 300.0,
        ))
        assert accepted
        forecast = service.predict(stations=[0, 3])
        assert list(forecast.stations) == [0, 3]

    def test_full_coverage_forecast_bitwise_matches_dense(self, tiny_dataset):
        dense = PredictionService.for_dataset(
            STGNNDJD.from_dataset(tiny_dataset, seed=3), tiny_dataset
        )
        sparse = PredictionService.for_dataset(
            sparse_model(tiny_dataset, top_k=999), tiny_dataset
        )
        a, b = dense.predict(), sparse.predict()
        np.testing.assert_array_equal(b.demand, a.demand)
        np.testing.assert_array_equal(b.supply, a.supply)

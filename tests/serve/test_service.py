"""PredictionService: batching, caching, backpressure, hot-reload."""

import threading

import numpy as np
import pytest

from repro.core import STGNNDJD, Trainer, save_checkpoint
from repro.core.persistence import CheckpointSchemaError
from repro.serve import (
    FlowStateStore,
    PredictionService,
    ServiceConfig,
    ServiceError,
    ServiceOverloaded,
)
from repro.serve.service import _Request


@pytest.fixture(scope="module")
def served_model(tiny_dataset):
    """An untrained (but fully functional) model sized to the dataset."""
    return STGNNDJD.from_dataset(tiny_dataset, seed=3)


@pytest.fixture
def service(served_model, tiny_dataset):
    return PredictionService.for_dataset(served_model, tiny_dataset)


class TestSynchronousPath:
    def test_full_forecast_shapes(self, service, tiny_dataset):
        forecast = service.predict()
        n = tiny_dataset.num_stations
        assert forecast.slot == tiny_dataset.num_slots
        assert forecast.demand.shape == (n,)
        assert forecast.supply.shape == (n,)
        assert list(forecast.stations) == list(range(n))

    def test_station_subset(self, service):
        full = service.predict()
        subset = service.predict(stations=[2, 0])
        np.testing.assert_array_equal(subset.demand, full.demand[[2, 0]])
        np.testing.assert_array_equal(subset.supply, full.supply[[2, 0]])

    def test_unknown_station_rejected(self, service, tiny_dataset):
        with pytest.raises(ValueError):
            service.predict(stations=[tiny_dataset.num_stations])

    def test_matches_trainer_predict(self, served_model, tiny_dataset):
        """The serving path reproduces the offline prediction exactly."""
        t = tiny_dataset.min_history + 5
        service = PredictionService.for_dataset(
            served_model, tiny_dataset, frontier=t
        )
        offline_demand, offline_supply = Trainer(
            served_model, tiny_dataset
        ).predict(t)
        forecast = service.predict()
        np.testing.assert_allclose(forecast.demand, offline_demand, rtol=1e-12)
        np.testing.assert_allclose(forecast.supply, offline_supply, rtol=1e-12)

    def test_incompatible_model_rejected(self, tiny_dataset, mini_dataset):
        wrong = STGNNDJD.from_dataset(mini_dataset, seed=0)
        with pytest.raises(ServiceError):
            PredictionService.for_dataset(wrong, tiny_dataset)


class TestForecastCache:
    def test_second_request_is_cached(self, service):
        assert service.predict().cached is False
        assert service.predict().cached is True

    def test_cache_invalidated_by_rollover(self, service, tiny_dataset):
        service.predict()
        service.store.advance_to(service.store.frontier + 1)
        forecast = service.predict()
        assert forecast.cached is False
        assert forecast.slot == tiny_dataset.num_slots + 1

    def test_cache_invalidated_by_late_event(self, service, tiny_dataset):
        service.predict()
        # A late return lands in a closed slot inside the window.
        slot_seconds = tiny_dataset.config.slot_seconds
        late = (service.store.frontier - 1) * slot_seconds + 1.0
        service.store.ingest_event(0, 1, start_time=late, end_time=late + 60.0)
        assert service.predict().cached is False

    def test_open_slot_events_do_not_invalidate(self, service, tiny_dataset):
        service.predict()
        now = service.store.frontier * tiny_dataset.config.slot_seconds + 1.0
        service.store.ingest_event(0, 1, start_time=now, end_time=now + 60.0)
        assert service.predict().cached is True

    def test_cache_disabled(self, served_model, tiny_dataset):
        service = PredictionService.for_dataset(
            served_model, tiny_dataset, config=ServiceConfig(cache=False)
        )
        assert service.predict().cached is False
        assert service.predict().cached is False


class TestDispatcher:
    def test_concurrent_requests_coalesce_to_one_forward(
        self, served_model, tiny_dataset
    ):
        service = PredictionService.for_dataset(
            served_model, tiny_dataset,
            config=ServiceConfig(max_batch=32, batch_wait_seconds=0.05),
        )
        # store.sample() runs exactly once per actual model forward, so
        # counting it measures how many forwards 16 concurrent requests
        # cost. Batching + the forecast cache must collapse them to one.
        forwards = 0
        original_sample = service.store.sample

        def counting_sample():
            nonlocal forwards
            forwards += 1
            return original_sample()

        service.store.sample = counting_sample
        results = [None] * 16
        with service:
            def call(i):
                results[i] = service.predict()

            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert all(r is not None for r in results)
        assert forwards == 1
        reference = results[0]
        for result in results[1:]:
            np.testing.assert_array_equal(result.demand, reference.demand)

    def test_backpressure_rejects_when_queue_full(
        self, served_model, tiny_dataset
    ):
        service = PredictionService.for_dataset(
            served_model, tiny_dataset,
            config=ServiceConfig(
                max_batch=1, batch_wait_seconds=0.0, queue_depth=2,
                retry_after_seconds=0.123,
            ),
        )
        release = threading.Event()
        first_picked = threading.Event()
        original = service._full_forecast

        def blocking(model, version):
            first_picked.set()
            release.wait(timeout=10.0)
            return original(model, version)

        service._full_forecast = blocking
        errors: list[BaseException] = []
        done: list = []

        def call():
            try:
                done.append(service.predict(timeout=10.0))
            except BaseException as error:
                errors.append(error)

        with service:
            t1 = threading.Thread(target=call)
            t1.start()
            assert first_picked.wait(timeout=5.0)  # dispatcher is busy
            # Fill the queue (depth 2) synchronously behind the wedged
            # dispatcher — no polling, the state is deterministic.
            backlog = [_Request(None), _Request(None)]
            for request in backlog:
                service._queue.put_nowait(request)
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.predict()
            # The hint is jittered (thundering-herd decorrelation):
            # base <= hint <= base * (1 + retry_jitter).
            assert 0.123 <= excinfo.value.retry_after <= 0.123 * 1.5
            release.set()
            t1.join(timeout=10.0)
            for request in backlog:  # rejected != dropped: these finish
                assert request.done.wait(timeout=10.0)
                assert request.error is None
                assert request.forecast is not None
        assert not errors
        assert len(done) == 1

    def test_stop_fails_queued_requests(self, service):
        # Stopping is safe to call repeatedly and without starting.
        service.stop()
        service.start()
        service.stop()
        assert not service.running
        assert service.predict() is not None  # falls back to sync path


class TestHotReload:
    def _checkpoint(self, dataset, path, seed):
        model = STGNNDJD.from_dataset(dataset, seed=seed)
        save_checkpoint(model, path)
        return model

    def test_reload_swaps_weights_atomically(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        self._checkpoint(tiny_dataset, path, seed=1)
        service = PredictionService.from_checkpoint(
            path,
            FlowStateStore.from_dataset(tiny_dataset),
            tiny_dataset.demand_normalizer,
            tiny_dataset.supply_normalizer,
        )
        before = service.predict()
        assert service.model_version == 0

        self._checkpoint(tiny_dataset, path, seed=2)  # different weights
        version = service.reload()
        assert version == 1 == service.model_version
        after = service.predict()
        assert after.cached is False  # model version keys the cache
        assert not np.array_equal(before.demand, after.demand)

    def test_reload_requires_a_path(self, service):
        with pytest.raises(ServiceError):
            service.reload()

    def test_schema_mismatch_fails_loudly_and_keeps_old_model(
        self, service, tiny_dataset, tmp_path
    ):
        bad = tmp_path / "bad.npz"
        np.savez(bad, __schema_version__=np.asarray(99, dtype=np.int64))
        before = service.predict()
        with pytest.raises(CheckpointSchemaError):
            service.reload(bad)
        assert service.model_version == 0
        np.testing.assert_array_equal(service.predict().demand, before.demand)

    def test_dimension_mismatch_rejected(self, service, mini_dataset, tmp_path):
        path = tmp_path / "wrong.npz"
        save_checkpoint(STGNNDJD.from_dataset(mini_dataset, seed=0), path)
        with pytest.raises(ServiceError):
            service.reload(path)
        assert service.model_version == 0

    def test_watcher_reloads_on_file_change(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        self._checkpoint(tiny_dataset, path, seed=1)
        service = PredictionService.from_checkpoint(
            path,
            FlowStateStore.from_dataset(tiny_dataset),
            tiny_dataset.demand_normalizer,
            tiny_dataset.supply_normalizer,
            config=ServiceConfig(
                checkpoint_path=str(path), reload_poll_seconds=0.05
            ),
        )
        with service:
            self._checkpoint(tiny_dataset, path, seed=2)
            # Event-based wait: the service signals every reload outcome.
            assert service.reload_ok_event.wait(timeout=10.0)
        assert service.model_version >= 1

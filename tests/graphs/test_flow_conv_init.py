"""Initialization properties of the flow convolution (DESIGN.md §8.3)."""

import numpy as np
import pytest

from repro.graphs import FlowConvolution
from repro.tensor import Tensor


class TestFlowConvolutionInit:
    def test_conv_kernels_start_positive(self, rng):
        conv = FlowConvolution(6, short_window=8, long_days=3, rng=rng)
        for module in (conv.short_inflow_conv, conv.short_outflow_conv):
            assert (module.weight.data > 0).all()
            # Averaging filter: weights sum to ~1.
            assert module.weight.data.sum() == pytest.approx(1.0, abs=0.5)
        for module in (conv.long_inflow_conv, conv.long_outflow_conv):
            assert (module.weight.data > 0).all()

    def test_projection_starts_near_identity_stack(self, rng):
        n = 6
        conv = FlowConvolution(n, 4, 2, rng)
        w7 = conv.projection.data
        identity_stack = np.concatenate([np.eye(n), np.eye(n)], axis=0)
        # The identity component dominates the noise component.
        diag_mass = np.abs(w7 * identity_stack).sum()
        off_mass = np.abs(w7 * (1 - identity_stack)).sum()
        assert diag_mass > off_mass / 4

    def test_initial_features_reflect_flow_magnitudes(self, rng):
        """At init, larger flows should produce larger node features —
        the property the positive init exists to provide."""
        n = 5
        conv = FlowConvolution(n, 4, 2, rng)
        small = Tensor(np.full((4, n, n), 0.1))
        large = Tensor(np.full((4, n, n), 1.0))
        small_long = Tensor(np.full((2, n, n), 0.1))
        large_long = Tensor(np.full((2, n, n), 1.0))
        out_small = conv(small, small, small_long, small_long)
        out_large = conv(large, large, large_long, large_long)
        assert (
            out_large.node_features.data.sum()
            > out_small.node_features.data.sum()
        )

    def test_initial_fcg_mask_is_meaningful(self, rng):
        """With positive kernels, nonzero flows yield nonzero I_hat, so
        the FCG edge set is data-driven from the very first step."""
        from repro.graphs import build_fcg

        n = 5
        conv = FlowConvolution(n, 4, 2, rng)
        flows = np.zeros((4, n, n))
        flows[:, 0, 1] = 2.0  # the only observed flow: 0 -> 1
        zero = Tensor(np.zeros((2, n, n)))
        out = conv(Tensor(flows), Tensor(np.zeros((4, n, n))), zero, zero)
        graph = build_fcg(out)
        assert graph.mask[0, 1]  # inflow I_hat[0,1] > 0 => edge 1 -> 0
        assert not graph.mask[3, 4]  # no flow, no edge

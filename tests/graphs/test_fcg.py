"""Flow-convoluted graph construction (Def. 2 / Eq. 10)."""

import numpy as np
import pytest

from repro.graphs import FlowConvolution, FlowConvolutionOutput, build_fcg
from repro.tensor import Tensor


def output_from(features, inflow, outflow):
    return FlowConvolutionOutput(
        node_features=Tensor(np.asarray(features, dtype=float), requires_grad=True),
        temporal_inflow=Tensor(np.asarray(inflow, dtype=float)),
        temporal_outflow=Tensor(np.asarray(outflow, dtype=float)),
    )


class TestMask:
    def test_edge_from_inflow(self):
        inflow = np.zeros((3, 3))
        inflow[0, 2] = 1.0  # I_hat[0,2] > 0 -> edge 2 -> 0
        out = output_from(np.ones((3, 3)), inflow, np.zeros((3, 3)))
        graph = build_fcg(out)
        assert graph.mask[0, 2]
        assert not graph.mask[2, 0]  # direction matters

    def test_edge_from_outflow_transposed(self):
        outflow = np.zeros((3, 3))
        outflow[2, 0] = 1.0  # O_hat[2,0] > 0 -> edge 2 -> 0 (j=2, i=0)
        out = output_from(np.ones((3, 3)), np.zeros((3, 3)), outflow)
        graph = build_fcg(out)
        assert graph.mask[0, 2]

    def test_self_loops_always_present(self):
        out = output_from(np.ones((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)))
        graph = build_fcg(out)
        assert np.diag(graph.mask).all()

    def test_neighbor_counts(self):
        inflow = np.zeros((3, 3))
        inflow[0, 1] = inflow[0, 2] = 1.0
        out = output_from(np.ones((3, 3)), inflow, np.zeros((3, 3)))
        graph = build_fcg(out)
        assert graph.neighbor_counts()[0] == 3  # self + two in-edges


class TestWeights:
    def test_rows_with_positive_features_sum_to_one(self, rng):
        n = 5
        inflow = rng.random((n, n)) + 0.1  # dense graph
        features = rng.random((n, n)) + 0.1  # all positive
        graph = build_fcg(output_from(features, inflow, inflow))
        np.testing.assert_allclose(graph.weights.data.sum(axis=1), np.ones(n), atol=1e-9)

    def test_masked_pairs_get_zero_weight(self):
        inflow = np.zeros((3, 3))
        inflow[0, 1] = 1.0
        features = np.ones((3, 3))
        graph = build_fcg(output_from(features, inflow, np.zeros((3, 3))))
        assert graph.weights.data[0, 2] == 0.0  # no edge 2 -> 0

    def test_negative_features_clipped(self):
        features = -np.ones((3, 3))
        inflow = np.ones((3, 3))
        graph = build_fcg(output_from(features, inflow, inflow))
        assert (graph.weights.data == 0.0).all()

    def test_weight_proportional_to_feature(self):
        inflow = np.ones((3, 3))
        features = np.array([[1.0, 2.0, 1.0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        graph = build_fcg(output_from(features, inflow, inflow))
        row = graph.weights.data[0]
        assert row[1] == pytest.approx(0.5, abs=1e-9)
        assert row[0] == pytest.approx(0.25, abs=1e-9)

    def test_weights_differentiable_wrt_features(self, rng):
        out = output_from(rng.random((4, 4)) + 0.1, np.ones((4, 4)), np.ones((4, 4)))
        graph = build_fcg(out)
        graph.weights.sum().backward()
        assert out.node_features.grad is not None

    def test_integration_with_flow_convolution(self, rng):
        conv = FlowConvolution(4, 3, 2, rng)
        out = conv(
            Tensor(rng.poisson(3.0, (3, 4, 4)).astype(float)),
            Tensor(rng.poisson(3.0, (3, 4, 4)).astype(float)),
            Tensor(rng.poisson(3.0, (2, 4, 4)).astype(float)),
            Tensor(rng.poisson(3.0, (2, 4, 4)).astype(float)),
        )
        graph = build_fcg(out)
        assert graph.num_nodes == 4
        assert (graph.weights.data >= 0).all()

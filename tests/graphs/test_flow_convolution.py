"""Flow convolution (Eqs. 1-9): shapes, fusion semantics, dynamics."""

import numpy as np
import pytest

from repro.graphs import FlowConvolution
from repro.tensor import Tensor


@pytest.fixture
def flow_conv(rng):
    return FlowConvolution(num_stations=5, short_window=6, long_days=3, rng=rng)


def windows(rng, n=5, k=6, d=3):
    return (
        Tensor(rng.poisson(2.0, size=(k, n, n)).astype(float)),
        Tensor(rng.poisson(2.0, size=(k, n, n)).astype(float)),
        Tensor(rng.poisson(2.0, size=(d, n, n)).astype(float)),
        Tensor(rng.poisson(2.0, size=(d, n, n)).astype(float)),
    )


class TestFlowConvolution:
    def test_output_shapes(self, flow_conv, rng):
        out = flow_conv(*windows(rng))
        assert out.node_features.shape == (5, 5)
        assert out.temporal_inflow.shape == (5, 5)
        assert out.temporal_outflow.shape == (5, 5)

    def test_temporal_matrices_nonnegative(self, flow_conv, rng):
        """ReLU convs + convex fusion keep I_hat and O_hat >= 0."""
        out = flow_conv(*windows(rng))
        assert (out.temporal_inflow.data >= 0).all()
        assert (out.temporal_outflow.data >= 0).all()

    def test_fusion_between_short_and_long(self, rng):
        """The fused matrix lies elementwise between its two inputs."""
        short = Tensor(np.full((4, 4), 2.0))
        long = Tensor(np.full((4, 4), 6.0))
        gate = FlowConvolution(4, 2, 2, rng).gate_inflow
        fused = FlowConvolution._gated_fusion(short, long, gate)
        assert (fused.data >= 2.0 - 1e-12).all()
        assert (fused.data <= 6.0 + 1e-12).all()

    def test_fusion_identity_when_equal(self, rng):
        value = Tensor(np.full((3, 3), 5.0))
        gate = FlowConvolution(3, 2, 2, rng).gate_inflow
        fused = FlowConvolution._gated_fusion(value, value, gate)
        np.testing.assert_allclose(fused.data, 5.0)

    def test_features_are_dynamic(self, flow_conv, rng):
        """Different flow windows must give different node features."""
        out1 = flow_conv(*windows(rng))
        out2 = flow_conv(*windows(rng))
        assert not np.allclose(out1.node_features.data, out2.node_features.data)

    def test_gradients_reach_every_parameter(self, flow_conv, rng):
        out = flow_conv(*windows(rng))
        (out.node_features * Tensor(rng.normal(size=(5, 5)))).sum().backward()
        for name, param in flow_conv.named_parameters():
            assert param.grad is not None, name
            assert np.abs(param.grad).sum() > 0, name

    def test_parameter_count_matches_paper_inventory(self, flow_conv):
        """W1..W4 (k or d each), b1..b4 (n^2 each), W5, W6 (n^2), W7 (2n*n)."""
        n, k, d = 5, 6, 3
        expected = 2 * k + 2 * d + 4 * n * n + 2 * n * n + 2 * n * n
        assert flow_conv.num_parameters() == expected

    def test_invalid_station_count(self, rng):
        with pytest.raises(ValueError):
            FlowConvolution(0, 4, 2, rng)

"""Pattern correlation graph (Def. 3 / Eqs. 11-12)."""

import numpy as np
import pytest

from repro.graphs import build_pcg
from repro.nn import PairwiseAdditiveAttention
from repro.tensor import Tensor


class TestBuildPCG:
    def test_dense_attention_rows_sum_to_one(self, rng):
        attention = PairwiseAdditiveAttention(4, rng)
        graph = build_pcg(Tensor(rng.normal(size=(6, 4))), attention)
        np.testing.assert_allclose(graph.attention.data.sum(axis=1), np.ones(6))

    def test_all_weights_positive(self, rng):
        attention = PairwiseAdditiveAttention(4, rng)
        graph = build_pcg(Tensor(rng.normal(size=(6, 4))), attention)
        assert (graph.attention.data > 0).all()  # dense: global dependency

    def test_num_nodes(self, rng):
        attention = PairwiseAdditiveAttention(3, rng)
        graph = build_pcg(Tensor(rng.normal(size=(7, 3))), attention)
        assert graph.num_nodes == 7

    def test_identical_patterns_get_identical_attention_columns(self, rng):
        """Stations with identical features receive identical attention
        from everyone — the 'similar patterns correlate' mechanism."""
        attention = PairwiseAdditiveAttention(4, rng)
        features = rng.normal(size=(5, 4))
        features[3] = features[1]  # station 3 mirrors station 1
        graph = build_pcg(Tensor(features), attention)
        np.testing.assert_allclose(
            graph.attention.data[:, 1], graph.attention.data[:, 3], atol=1e-12
        )

    def test_attention_is_time_varying(self, rng):
        """Different node features (different t) change the edges."""
        attention = PairwiseAdditiveAttention(4, rng)
        g1 = build_pcg(Tensor(rng.normal(size=(5, 4))), attention)
        g2 = build_pcg(Tensor(rng.normal(size=(5, 4))), attention)
        assert not np.allclose(g1.attention.data, g2.attention.data)

    def test_rejects_non_2d_features(self, rng):
        attention = PairwiseAdditiveAttention(4, rng)
        with pytest.raises(ValueError):
            build_pcg(Tensor(np.zeros((2, 3, 4))), attention)

    def test_gradient_flows_to_attention_params(self, rng):
        attention = PairwiseAdditiveAttention(4, rng)
        graph = build_pcg(Tensor(rng.normal(size=(5, 4))), attention)
        (graph.attention * Tensor(rng.normal(size=(5, 5)))).sum().backward()
        assert attention.weight.grad is not None

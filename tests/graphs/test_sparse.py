"""Sparse top-k graph representation and its aggregation kernels.

Parity contract (see ``repro/graphs/sparse.py`` and DESIGN.md): with
full coverage (``k >= n``) every sparse path is **bitwise** identical to
its dense counterpart in float64 — gathers are identity copies and the
blocked kernels collapse to one dense matmul. Genuine ``k < n`` sparsity
is an approximation; those tests assert structural properties and tight
numerical agreement with an explicit reference, not bitwise equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    GraphSparsityConfig,
    SparseEdges,
    SparseFlowConvolutedGraph,
    build_fcg,
    build_pcg,
    topk_row_indices,
)
from repro.graphs.flow_convolution import FlowConvolutionOutput
from repro.nn import PairwiseAdditiveAttention, ScaledDotProductAttention
from repro.tensor import Tensor, inference_mode, ops


def flow_output(features, inflow, outflow, requires_grad=True):
    return FlowConvolutionOutput(
        node_features=Tensor(
            np.asarray(features, dtype=float), requires_grad=requires_grad
        ),
        temporal_inflow=Tensor(np.asarray(inflow, dtype=float)),
        temporal_outflow=Tensor(np.asarray(outflow, dtype=float)),
    )


class TestGraphSparsityConfig:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="graph mode"):
            GraphSparsityConfig(mode="blocked")

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="top_k"):
            GraphSparsityConfig(top_k=0)
        with pytest.raises(ValueError, match="block_rows"):
            GraphSparsityConfig(block_rows=0)

    def test_auto_switches_on_station_count(self):
        config = GraphSparsityConfig(mode="auto", top_k=64)
        assert not config.use_sparse(64)
        assert config.use_sparse(65)

    def test_forced_modes(self):
        assert not GraphSparsityConfig(mode="dense", top_k=2).use_sparse(1000)
        assert GraphSparsityConfig(mode="sparse", top_k=2).use_sparse(3)

    def test_row_k_capped_by_station_count(self):
        config = GraphSparsityConfig(top_k=64)
        assert config.row_k(8) == 8
        assert config.row_k(571) == 64


class TestTopkRowIndices:
    def test_full_coverage_is_identity_layout(self):
        priority = np.random.default_rng(0).random((5, 5))
        indices = topk_row_indices(priority, 7)
        np.testing.assert_array_equal(
            indices, np.broadcast_to(np.arange(5), (5, 5))
        )

    def test_selects_largest_per_row_ascending(self):
        priority = np.array([[3.0, 1.0, 2.0, 0.0], [0.0, 1.0, 2.0, 3.0]])
        indices = topk_row_indices(priority, 2)
        np.testing.assert_array_equal(indices, [[0, 2], [2, 3]])

    def test_inf_forces_a_column(self):
        priority = np.random.default_rng(1).random((6, 6))
        np.fill_diagonal(priority, np.inf)
        indices = topk_row_indices(priority, 2)
        assert all(i in indices[i] for i in range(6))


class TestSparseEdges:
    def build(self, n=4, k=2, seed=0):
        rng = np.random.default_rng(seed)
        indices = np.sort(
            np.stack([rng.choice(n, size=k, replace=False) for _ in range(n)]),
            axis=1,
        )
        valid = rng.random((n, k)) > 0.3
        weights = rng.random((n, k)) * valid
        return SparseEdges(
            indices=indices,
            weights=Tensor(weights),
            valid=valid,
            full_coverage=False,
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            SparseEdges(
                indices=np.zeros((3, 2), dtype=int),
                weights=Tensor(np.zeros((3, 3))),
                valid=np.ones((3, 2), dtype=bool),
                full_coverage=False,
            )

    def test_counts(self):
        edges = self.build()
        assert edges.num_nodes == 4
        assert edges.max_degree == 2
        assert edges.nnz == int(edges.valid.sum())
        np.testing.assert_array_equal(
            edges.neighbor_counts(), edges.valid.sum(axis=1)
        )

    def test_csr_round_trip(self):
        edges = self.build()
        indptr, cols, values = edges.to_csr()
        assert indptr[0] == 0 and indptr[-1] == edges.nnz
        dense = np.zeros((4, 4))
        for i in range(4):
            dense[i, cols[indptr[i]:indptr[i + 1]]] = values[indptr[i]:indptr[i + 1]]
        np.testing.assert_array_equal(dense, edges.to_dense_weights())

    def test_dense_mask_matches_valid(self):
        edges = self.build()
        mask = edges.to_dense_mask()
        assert mask.sum() == edges.nnz
        rows = np.broadcast_to(np.arange(4)[:, None], edges.indices.shape)
        assert mask[rows[edges.valid], edges.indices[edges.valid]].all()


class TestEdgeAggregate:
    """The blocked gather/matmul kernel vs an explicit reference."""

    def reference(self, w, v, indices):
        if indices.ndim == 1:
            return w @ v[indices]
        gathered = v[indices]  # (n, k, f)
        return np.einsum("nk,nkf->nf", w, gathered)

    @pytest.mark.parametrize("block_rows", [1, 2, 256])
    def test_forward_per_row_indices(self, rng, block_rows):
        n, k, f = 6, 3, 4
        w = rng.random((n, k))
        v = rng.random((n, f))
        indices = np.stack([rng.choice(n, size=k, replace=False) for _ in range(n)])
        out = ops.edge_aggregate(
            Tensor(w), Tensor(v), indices, block_rows=block_rows
        )
        np.testing.assert_allclose(
            out.data, self.reference(w, v, indices), rtol=1e-13
        )

    def test_forward_shared_columns(self, rng):
        n, k, f = 5, 3, 4
        w = rng.random((n, k))
        v = rng.random((n, f))
        columns = np.array([0, 2, 4])
        out = ops.edge_aggregate(Tensor(w), Tensor(v), columns)
        np.testing.assert_array_equal(out.data, w @ v[columns])  # bitwise

    def test_full_coverage_bitwise_dense_matmul(self, rng):
        n, f = 7, 5
        w = rng.random((n, n))
        v = rng.random((n, f))
        indices = np.broadcast_to(np.arange(n), (n, n))
        out = ops.edge_aggregate(
            Tensor(w), Tensor(v), indices, block_rows=2, full_coverage=True
        )
        np.testing.assert_array_equal(out.data, w @ v)  # bitwise

    @pytest.mark.parametrize("shared", [False, True])
    @pytest.mark.parametrize("block_rows", [2, 256])
    def test_gradients_match_recorded_reference(self, rng, shared, block_rows):
        n, k, f = 6, 3, 4
        w = rng.random((n, k))
        v = rng.random((n, f))
        if shared:
            indices = np.array([1, 3, 5])
        else:
            indices = np.stack(
                [rng.choice(n, size=k, replace=False) for _ in range(n)]
            )
        upstream = rng.random((n, f))

        w_t, v_t = Tensor(w, requires_grad=True), Tensor(v, requires_grad=True)
        out = ops.edge_aggregate(w_t, v_t, indices, block_rows=block_rows)
        (out * Tensor(upstream)).sum().backward()

        # Reference: the same contraction as a recorded gather chain
        # (indices select rows of ``values`` in both layouts).
        w_r, v_r = Tensor(w, requires_grad=True), Tensor(v, requires_grad=True)
        gathered = v_r[indices]  # (k, f) shared, (n, k, f) per-row
        if shared:
            ref = w_r @ gathered
        else:
            ref = (w_r.reshape((n, k, 1)) * gathered).sum(axis=1)
        (ref * Tensor(upstream)).sum().backward()

        np.testing.assert_allclose(w_t.grad, w_r.grad, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(v_t.grad, v_r.grad, rtol=1e-12, atol=1e-14)

    def test_no_grad_fast_path_matches_recorded(self, rng):
        n, k, f = 5, 2, 3
        w, v = rng.random((n, k)), rng.random((n, f))
        indices = np.stack([rng.choice(n, size=k, replace=False) for _ in range(n)])
        recorded = ops.edge_aggregate(
            Tensor(w, requires_grad=True), Tensor(v), indices
        )
        with inference_mode():
            fast = ops.edge_aggregate(Tensor(w), Tensor(v), indices)
        np.testing.assert_array_equal(fast.data, recorded.data)


class TestSdpAttention:
    def chain(self, q, k, v):
        """The unfused reference: scores -> shifted softmax -> mix."""
        scores = q @ k.T
        scores = scores - scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        return scores @ v

    def test_full_pass_bitwise_vs_reference(self, rng):
        n, d = 8, 5
        q, k, v = rng.random((n, d)), rng.random((n, d)), rng.random((n, d))
        out = ops.sdp_attention(Tensor(q), Tensor(k), Tensor(v))
        np.testing.assert_array_equal(out.data, self.chain(q, k, v))

    @pytest.mark.parametrize("block_rows", [1, 3, 7])
    def test_blocked_matches_full_within_tolerance(self, rng, block_rows):
        n, d = 9, 4
        q, k, v = rng.random((n, d)), rng.random((n, d)), rng.random((n, d))
        with inference_mode():
            full = ops.sdp_attention(Tensor(q), Tensor(k), Tensor(v))
            blocked = ops.sdp_attention(
                Tensor(q), Tensor(k), Tensor(v), block_rows=block_rows
            )
        np.testing.assert_allclose(blocked.data, full.data, rtol=1e-13)

    def test_gradients_match_recorded_reference(self, rng):
        n, d = 6, 4
        q, k, v = rng.random((n, d)), rng.random((n, d)), rng.random((n, d))
        upstream = rng.random((n, d))

        q_t = Tensor(q, requires_grad=True)
        k_t = Tensor(k, requires_grad=True)
        v_t = Tensor(v, requires_grad=True)
        out = ops.sdp_attention(q_t, k_t, v_t)
        (out * Tensor(upstream)).sum().backward()

        q_r = Tensor(q, requires_grad=True)
        k_r = Tensor(k, requires_grad=True)
        v_r = Tensor(v, requires_grad=True)
        ref = ops.row_softmax(q_r @ k_r.transpose()) @ v_r
        (ref * Tensor(upstream)).sum().backward()

        for got, want in ((q_t, q_r), (k_t, k_r), (v_t, v_r)):
            np.testing.assert_allclose(got.grad, want.grad, rtol=1e-12, atol=1e-14)

    def test_module_block_rows_inference_parity(self, rng):
        n, d = 10, 6
        x = Tensor(rng.random((n, d)))
        exact = ScaledDotProductAttention(d, np.random.default_rng(0))
        blocked = ScaledDotProductAttention(d, np.random.default_rng(0), block_rows=4)
        with inference_mode():
            np.testing.assert_allclose(
                blocked(x).data, exact(x).data, rtol=1e-12
            )


class TestSparseFCG:
    def build(self, rng, n=6, mode="sparse", top_k=3):
        inflow = rng.random((n, n)) + 0.1  # fully connected
        features = rng.standard_normal((n, n))
        out = flow_output(features, inflow, inflow)
        sparsity = GraphSparsityConfig(mode=mode, top_k=top_k)
        return out, build_fcg(out, sparsity)

    def test_full_coverage_bitwise_matches_dense(self, rng):
        n = 6
        inflow = (rng.random((n, n)) > 0.4) * 1.0
        features = rng.standard_normal((n, n))
        dense = build_fcg(flow_output(features, inflow, inflow))
        out, sparse = self.build_from(features, inflow, top_k=n)
        assert isinstance(sparse, SparseFlowConvolutedGraph)
        assert sparse.edges.full_coverage
        np.testing.assert_array_equal(
            sparse.edges.weights.data, dense.weights.data
        )
        np.testing.assert_array_equal(sparse.edges.to_dense_mask(), dense.mask)

    def build_from(self, features, inflow, top_k):
        out = flow_output(features, inflow, inflow)
        return out, build_fcg(out, GraphSparsityConfig(mode="sparse", top_k=top_k))

    def test_topk_keeps_self_loop_and_caps_degree(self, rng):
        out, graph = self.build(rng, n=6, top_k=3)
        assert graph.edges.max_degree == 3
        assert (graph.neighbor_counts() <= 3).all()
        # Self loop forced into every row's kept set.
        assert all(i in graph.edges.indices[i] for i in range(6))
        assert (graph.edges.indices == np.sort(graph.edges.indices, axis=1)).all()
        assert graph.edges.indices.shape == (6, 3)

    def test_topk_rows_normalised(self, rng):
        out, graph = self.build(rng, n=8, top_k=4)
        weights = graph.edges.weights.data
        sums = weights.sum(axis=1)
        assert ((sums < 1.0 + 1e-9) & (sums >= 0.0)).all()
        assert (weights >= 0.0).all()
        # Invalid (masked) slots carry weight exactly 0.
        assert (weights[~graph.edges.valid] == 0.0).all()

    def test_weights_differentiable_wrt_features(self, rng):
        out, graph = self.build(rng, n=6, top_k=3)
        graph.edges.weights.sum().backward()
        assert out.node_features.grad is not None
        assert np.isfinite(out.node_features.grad).all()

    def test_auto_mode_keeps_small_graphs_dense(self, rng):
        n = 6
        inflow = rng.random((n, n)) + 0.1
        out = flow_output(rng.standard_normal((n, n)), inflow, inflow)
        graph = build_fcg(out, GraphSparsityConfig(mode="auto", top_k=64))
        assert not isinstance(graph, SparseFlowConvolutedGraph)


class TestSparsePCG:
    def test_full_coverage_bitwise_matches_dense(self, rng):
        n = 7
        features = Tensor(rng.standard_normal((n, n)), requires_grad=True)
        attention = PairwiseAdditiveAttention(n, np.random.default_rng(5))
        dense = build_pcg(features, attention)
        sparse = build_pcg(
            features, attention, GraphSparsityConfig(mode="sparse", top_k=n)
        )
        assert sparse.edges is not None and sparse.edges.full_coverage
        np.testing.assert_array_equal(
            sparse.edges.weights.data, dense.attention.data
        )

    def test_topk_selects_exact_largest_scores(self, rng):
        n, k = 9, 4
        features = Tensor(rng.standard_normal((n, n)))
        attention = PairwiseAdditiveAttention(n, np.random.default_rng(5))
        sparse = build_pcg(
            features, attention, GraphSparsityConfig(mode="sparse", top_k=k)
        )
        # The monotone-dst shortcut must pick the same columns a dense
        # per-row top-k over the full score matrix would (shared across
        # rows because e(i, j) is strictly increasing in dst_j).
        dense_alpha = attention(features).data
        expected = set(np.argsort(dense_alpha[0])[n - k:])
        assert set(sparse.edges.indices[0]) == expected
        for row in sparse.edges.indices:
            assert set(row) == expected

    def test_topk_rows_sum_to_one(self, rng):
        n, k = 8, 3
        features = Tensor(rng.standard_normal((n, n)), requires_grad=True)
        attention = PairwiseAdditiveAttention(n, np.random.default_rng(5))
        sparse = build_pcg(
            features, attention, GraphSparsityConfig(mode="sparse", top_k=k)
        )
        np.testing.assert_allclose(
            sparse.edges.weights.data.sum(axis=1), np.ones(n), atol=1e-12
        )
        sparse.edges.weights.sum().backward()
        assert features.grad is not None

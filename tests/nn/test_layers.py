"""Layers: Linear, Conv1x1 (vs manual math), Dropout, LayerNorm."""

import numpy as np
import pytest

from repro.nn import Conv1x1, Dropout, LayerNorm, Linear
from repro.tensor import Tensor


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_gradients_flow_to_both_params(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_deterministic_from_seed(self):
        l1 = Linear(3, 2, rng=np.random.default_rng(9))
        l2 = Linear(3, 2, rng=np.random.default_rng(9))
        np.testing.assert_allclose(l1.weight.data, l2.weight.data)


class TestConv1x1:
    def test_forward_is_channel_weighted_sum(self, rng):
        conv = Conv1x1(channels=4, field_shape=(3, 3), rng=rng)
        x = rng.normal(size=(4, 3, 3))
        out = conv(Tensor(x))
        expected = np.tensordot(conv.weight.data, x, axes=(0, 0)) + conv.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_wrong_channel_count_rejected(self, rng):
        conv = Conv1x1(channels=4, field_shape=(3, 3), rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((5, 3, 3))))

    def test_wrong_field_shape_rejected(self, rng):
        conv = Conv1x1(channels=4, field_shape=(3, 3), rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((4, 2, 3))))

    def test_gradcheck_weight(self, rng):
        conv = Conv1x1(channels=3, field_shape=(2, 2), rng=rng)
        x = rng.normal(size=(3, 2, 2))
        conv(Tensor(x)).sum().backward()
        # d(sum)/dW[c] = sum of channel c of x.
        np.testing.assert_allclose(conv.weight.grad, x.sum(axis=(1, 2)), atol=1e-10)
        np.testing.assert_allclose(conv.bias.grad, np.ones((2, 2)))

    def test_needs_positive_channels(self):
        with pytest.raises(ValueError):
            Conv1x1(channels=0, field_shape=(2, 2))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_training_zeros_roughly_rate(self, rng):
        layer = Dropout(0.4, rng=rng)
        out = layer(Tensor(np.ones((200, 200))))
        zero_fraction = (out.data == 0).mean()
        assert zero_fraction == pytest.approx(0.4, abs=0.02)

    def test_scaling_preserves_expectation(self, rng):
        layer = Dropout(0.4, rng=rng)
        out = layer(Tensor(np.ones((300, 300))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_rate_zero_identity_even_in_training(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = Tensor(np.ones((4, 4)))
        assert layer(x) is x

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = LayerNorm(8)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(10, 8)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(10), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(10), atol=1e-2)

    def test_learnable_shift(self, rng):
        layer = LayerNorm(4)
        layer.beta.data[:] = 7.0
        out = layer(Tensor(rng.normal(size=(3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.full(3, 7.0), atol=1e-7)

"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, ReLU
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))
        self.child = Linear(2, 3, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.child(x @ self.w)


class TestRegistration:
    def test_parameters_discovered(self):
        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "w" in names
        assert "child.weight" in names
        assert "child.bias" in names

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 4 + 6 + 3

    def test_modules_walk(self):
        toy = Toy()
        assert len(list(toy.modules())) == 2

    def test_call_invokes_forward(self):
        toy = Toy()
        out = toy(Tensor(np.ones((1, 2))))
        assert out.shape == (1, 3)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(None)


class TestTrainEval:
    def test_eval_propagates(self):
        toy = Toy()
        toy.eval()
        assert not toy.training
        assert not toy.child.training

    def test_train_restores(self):
        toy = Toy().eval()
        toy.train()
        assert toy.child.training


class TestStateDict:
    def test_roundtrip(self):
        toy1, toy2 = Toy(), Toy()
        toy2.child.weight.data[:] = 99.0
        toy2.load_state_dict(toy1.state_dict())
        np.testing.assert_allclose(toy2.child.weight.data, toy1.child.weight.data)

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["w"][:] = 42.0
        assert not np.allclose(toy.w.data, 42.0)

    def test_missing_key_rejected(self):
        toy = Toy()
        state = toy.state_dict()
        del state["w"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        toy = Toy()
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        toy = Toy()
        state = toy.state_dict()
        state["w"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            toy.load_state_dict(state)


class TestZeroGrad:
    def test_clears_all_gradients(self):
        toy = Toy()
        out = toy(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert toy.w.grad is not None
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestContainers:
    def test_module_list_registers(self):
        layers = ModuleList([Linear(2, 2, rng=np.random.default_rng(i)) for i in range(3)])
        assert len(layers) == 3
        assert len(layers.parameters()) == 6

    def test_module_list_append_and_index(self):
        layers = ModuleList()
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layers.append(layer)
        assert layers[0] is layer

    def test_sequential_chains(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(2, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
        out = seq(Tensor(np.ones((5, 2))))
        assert out.shape == (5, 1)
        assert len(seq) == 3

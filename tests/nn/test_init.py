"""Weight initializers: bounds, determinism, fan computation."""

import numpy as np

from repro.nn import init


class TestXavier:
    def test_bound(self):
        w = init.xavier_uniform((100, 50), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_deterministic(self):
        w1 = init.xavier_uniform((5, 5), np.random.default_rng(3))
        w2 = init.xavier_uniform((5, 5), np.random.default_rng(3))
        np.testing.assert_allclose(w1, w2)

    def test_rank1_weight(self):
        w = init.xavier_uniform((16,), np.random.default_rng(0))
        assert w.shape == (16,)
        assert np.abs(w).max() <= np.sqrt(6.0 / 32)

    def test_gain_scales_bound(self):
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        w1 = init.xavier_uniform((4, 4), rng1, gain=1.0)
        w2 = init.xavier_uniform((4, 4), rng2, gain=2.0)
        np.testing.assert_allclose(w2, 2.0 * w1)


class TestHe:
    def test_bound(self):
        w = init.he_uniform((64, 32), np.random.default_rng(0))
        assert np.abs(w).max() <= np.sqrt(6.0 / 64)


class TestZeros:
    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 3)), np.zeros((3, 3)))

"""Inference-mode parity with the recorded-graph forward.

The forward-only fast path (``inference_mode``) must be *behaviour
preserving*: for every nn layer, the fused model components, and all
aggregators, its float64 output is bitwise identical to the
recorded-graph forward, its float32 output matches within single
precision, and no autograd state (``_parents`` / ``_backward`` /
``requires_grad``) is retained on any result.
"""

import numpy as np
import pytest

from repro.core import STGNNDJD
from repro.core.aggregators import FlowAggregator, MaxAggregator, MeanAggregator
from repro.core.gnn import FlowGNN, PatternGNN, _AttentionLayer
from repro.graphs import FlowConvolution, PatternCorrelationGraph, build_fcg
from repro.nn import (
    ELU,
    Conv1x1,
    Dropout,
    GRUEncoder,
    LayerNorm,
    Linear,
    LSTMEncoder,
    PairwiseAdditiveAttention,
    ReLU,
    RNNEncoder,
    ScaledDotProductAttention,
    Sigmoid,
    Tanh,
)
from repro.tensor import Tensor, inference_mode

# ----------------------------------------------------------------------
# Case registry: name -> builder(rng) -> (modules, call).
#
# ``call()`` creates its input tensors fresh (with requires_grad=True, so
# the recorded pass genuinely builds a graph) and returns a Tensor or a
# tuple of Tensors. ``modules`` lists every Module involved, so the
# float32 test can cast parameters with ``to`` and restore them after.
# ----------------------------------------------------------------------
CASES = {}


def case(fn):
    CASES[fn.__name__.removeprefix("case_")] = fn
    return fn


def _input(rng, *shape):
    data = rng.normal(size=shape)
    return lambda: Tensor(data, requires_grad=True)


@case
def case_linear(rng):
    layer = Linear(5, 3, rng=rng)
    x = _input(rng, 4, 5)
    return [layer], lambda: layer(x())


@case
def case_linear_no_bias(rng):
    layer = Linear(5, 3, bias=False, rng=rng)
    x = _input(rng, 4, 5)
    return [layer], lambda: layer(x())


@case
def case_conv1x1(rng):
    layer = Conv1x1(6, (4, 4), rng)
    x = _input(rng, 6, 4, 4)
    return [layer], lambda: layer(x())


@case
def case_dropout_eval(rng):
    layer = Dropout(0.5, rng=rng)
    x = _input(rng, 4, 5)
    return [layer], lambda: layer(x())


@case
def case_layer_norm(rng):
    layer = LayerNorm(5)
    x = _input(rng, 4, 5)
    return [layer], lambda: layer(x())


@case
def case_relu(rng):
    x = _input(rng, 4, 5)
    return [ReLU()], lambda: ReLU()(x())


@case
def case_elu(rng):
    x = _input(rng, 4, 5)
    return [ELU()], lambda: ELU()(x())


@case
def case_sigmoid(rng):
    x = _input(rng, 4, 5)
    return [Sigmoid()], lambda: Sigmoid()(x())


@case
def case_tanh(rng):
    x = _input(rng, 4, 5)
    return [Tanh()], lambda: Tanh()(x())


@case
def case_pairwise_attention(rng):
    layer = PairwiseAdditiveAttention(5, rng)
    x = _input(rng, 7, 5)
    return [layer], lambda: layer(x())


@case
def case_scaled_dot_attention(rng):
    layer = ScaledDotProductAttention(5, rng)
    x = _input(rng, 7, 5)
    return [layer], lambda: layer(x())


@case
def case_rnn_encoder(rng):
    layer = RNNEncoder(5, 4, rng)
    x = _input(rng, 6, 5)
    return [layer], lambda: layer(x())


@case
def case_lstm_encoder(rng):
    layer = LSTMEncoder(5, 4, rng)
    x = _input(rng, 6, 5)
    return [layer], lambda: layer(x())


@case
def case_gru_encoder(rng):
    layer = GRUEncoder(5, 4, rng)
    x = _input(rng, 6, 5)
    return [layer], lambda: layer(x())


def _graph_inputs(rng, n=5):
    """Non-negative features/weights/mask shaped like an FCG neighborhood."""
    features = rng.normal(size=(n, 4))
    raw = rng.uniform(size=(n, n))
    mask = raw > 0.3
    np.fill_diagonal(mask, True)
    weights = raw * mask
    weights = weights / weights.sum(axis=1, keepdims=True)
    return features, weights, mask


@case
def case_flow_aggregator(rng):
    features, weights, mask = _graph_inputs(rng)
    aggregator = FlowAggregator()
    return [aggregator], lambda: aggregator(
        Tensor(features, requires_grad=True), Tensor(weights), mask
    )


@case
def case_mean_aggregator(rng):
    features, weights, mask = _graph_inputs(rng)
    aggregator = MeanAggregator()
    return [aggregator], lambda: aggregator(
        Tensor(features, requires_grad=True), Tensor(weights), mask
    )


@case
def case_max_aggregator(rng):
    features, weights, mask = _graph_inputs(rng)
    aggregator = MaxAggregator(4, rng)
    return [aggregator], lambda: aggregator(
        Tensor(features, requires_grad=True), Tensor(weights), mask
    )


@case
def case_attention_layer(rng):
    layer = _AttentionLayer(6, 2, rng)
    x = _input(rng, 5, 6)
    return [layer], lambda: layer(x())


@case
def case_flow_convolution(rng):
    conv = FlowConvolution(5, 8, 3, rng)
    short_in = rng.uniform(size=(8, 5, 5))
    short_out = rng.uniform(size=(8, 5, 5))
    long_in = rng.uniform(size=(3, 5, 5))
    long_out = rng.uniform(size=(3, 5, 5))

    def call():
        out = conv(
            Tensor(short_in, requires_grad=True),
            Tensor(short_out, requires_grad=True),
            Tensor(long_in, requires_grad=True),
            Tensor(long_out, requires_grad=True),
        )
        return out.node_features, out.temporal_inflow, out.temporal_outflow

    return [conv], call


@case
def case_fcg_pipeline(rng):
    """FlowConvolution -> build_fcg -> FlowGNN, the full FCG branch."""
    conv = FlowConvolution(5, 8, 3, rng)
    gnn = FlowGNN(5, 2, rng)
    short_in = rng.uniform(size=(8, 5, 5))
    short_out = rng.uniform(size=(8, 5, 5))
    long_in = rng.uniform(size=(3, 5, 5))
    long_out = rng.uniform(size=(3, 5, 5))

    def call():
        out = conv(
            Tensor(short_in, requires_grad=True),
            Tensor(short_out, requires_grad=True),
            Tensor(long_in, requires_grad=True),
            Tensor(long_out, requires_grad=True),
        )
        graph = build_fcg(out)
        return gnn(graph), graph.weights

    return [conv, gnn], call


@case
def case_flow_gnn_max(rng):
    """FlowGNN's max-aggregator ablation goes through composed ops."""
    from repro.graphs import FlowConvolutedGraph

    gnn = FlowGNN(4, 2, rng, aggregator="max")
    features, weights, mask = _graph_inputs(rng)

    def call():
        graph = FlowConvolutedGraph(
            node_features=Tensor(features, requires_grad=True),
            weights=Tensor(weights),
            mask=mask,
        )
        return gnn(graph)

    return [gnn], call


@case
def case_pattern_gnn_attention(rng):
    gnn = PatternGNN(6, 2, 2, rng)
    features = rng.normal(size=(5, 6))

    def call():
        graph = PatternCorrelationGraph(
            node_features=Tensor(features, requires_grad=True), attention=None
        )
        return gnn(graph)

    return [gnn], call


@case
def case_pattern_gnn_mean(rng):
    gnn = PatternGNN(6, 2, 2, rng, aggregator="mean")
    features = rng.normal(size=(5, 6))

    def call():
        graph = PatternCorrelationGraph(
            node_features=Tensor(features, requires_grad=True), attention=None
        )
        return gnn(graph)

    return [gnn], call


def _as_tuple(result):
    return result if isinstance(result, tuple) else (result,)


def _assert_no_graph(tensor):
    assert not tensor.requires_grad
    assert tensor._backward is None
    assert tensor._parents == ()


@pytest.mark.parametrize("name", sorted(CASES))
def test_float64_bitwise_parity(name, rng):
    modules, call = CASES[name](rng)
    for module in modules:
        module.eval()
    recorded = [t.data.copy() for t in _as_tuple(call())]
    with inference_mode():
        fast = _as_tuple(call())
    for reference, result in zip(recorded, fast, strict=True):
        assert result.dtype == np.float64
        np.testing.assert_array_equal(result.data, reference)
    for result in fast:
        _assert_no_graph(result)


@pytest.mark.parametrize("name", sorted(CASES))
def test_float32_allclose_parity(name, rng):
    modules, call = CASES[name](rng)
    for module in modules:
        module.eval()
    recorded = [t.data.copy() for t in _as_tuple(call())]
    snapshots = [module.state_dict() for module in modules]
    for module in modules:
        module.to(np.float32)
    try:
        with inference_mode(dtype="float32"):
            fast = _as_tuple(call())
    finally:
        for module, snapshot in zip(modules, snapshots):
            module.to(np.float64)
            module.load_state_dict(snapshot)
    for reference, result in zip(recorded, fast, strict=True):
        assert result.dtype == np.float32
        np.testing.assert_allclose(result.data, reference, rtol=2e-4, atol=2e-5)
    for result in fast:
        _assert_no_graph(result)


class TestFullModel:
    """End-to-end parity on the real model over a real dataset sample."""

    def test_predict_matches_recorded_forward(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        model.eval()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        demand_ref, supply_ref = model(sample)
        with inference_mode():
            demand, supply = model(sample)
        np.testing.assert_array_equal(demand.data, demand_ref.data)
        np.testing.assert_array_equal(supply.data, supply_ref.data)
        _assert_no_graph(demand)
        _assert_no_graph(supply)

    def test_float32_predict_close(self, tiny_dataset):
        model = STGNNDJD.from_dataset(tiny_dataset, seed=0)
        model.eval()
        sample = tiny_dataset.sample(tiny_dataset.min_history)
        demand_ref, supply_ref = model(sample)
        snapshot = model.state_dict()
        model.to(np.float32)
        try:
            with inference_mode(dtype="float32"):
                demand, supply = model(sample)
        finally:
            model.to(np.float64)
            model.load_state_dict(snapshot)
        assert demand.dtype == np.float32
        np.testing.assert_allclose(demand.data, demand_ref.data, rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(supply.data, supply_ref.data, rtol=1e-3, atol=1e-4)

"""Loss functions, including the paper's joint loss (Eq. 21)."""

import numpy as np
import pytest

from repro.nn import joint_demand_supply_loss, mae_loss, mse_loss
from repro.tensor import Tensor


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([3.0, 2.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_zero_at_perfect(self):
        assert mse_loss(Tensor([1.0]), Tensor([1.0])).item() == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor([1.0]), Tensor([1.0, 2.0]))

    def test_gradient(self):
        pred = Tensor([2.0, 0.0], requires_grad=True)
        mse_loss(pred, Tensor([0.0, 0.0])).backward()
        np.testing.assert_allclose(pred.grad, [2.0, 0.0])


class TestMAE:
    def test_value(self):
        assert mae_loss(Tensor([1.0, -1.0]), Tensor([0.0, 0.0])).item() == 1.0

    def test_gradient_is_sign(self):
        pred = Tensor([2.0, -3.0], requires_grad=True)
        mae_loss(pred, Tensor([0.0, 0.0])).backward()
        np.testing.assert_allclose(pred.grad, [0.5, -0.5])


class TestJointLoss:
    def test_matches_equation_21(self):
        demand_pred, demand_true = Tensor([1.0, 2.0]), Tensor([2.0, 4.0])
        supply_pred, supply_true = Tensor([0.0, 0.0]), Tensor([3.0, 0.0])
        loss = joint_demand_supply_loss(demand_pred, demand_true, supply_pred, supply_true)
        expected = np.sqrt((1 + 4) / 2 + 9 / 2)
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_zero_residual_is_differentiable(self):
        pred = Tensor([1.0, 1.0], requires_grad=True)
        loss = joint_demand_supply_loss(pred, Tensor([1.0, 1.0]), pred, Tensor([1.0, 1.0]))
        loss.backward()
        assert np.isfinite(pred.grad).all()

    def test_symmetric_in_demand_and_supply(self):
        a, b = Tensor([1.0]), Tensor([4.0])
        zero = Tensor([0.0])
        l1 = joint_demand_supply_loss(a, b, zero, zero).item()
        l2 = joint_demand_supply_loss(zero, zero, a, b).item()
        assert l1 == pytest.approx(l2)

    def test_gradient_flows_to_both_heads(self):
        demand = Tensor([2.0], requires_grad=True)
        supply = Tensor([3.0], requires_grad=True)
        joint_demand_supply_loss(
            demand, Tensor([0.0]), supply, Tensor([0.0])
        ).backward()
        assert demand.grad is not None and supply.grad is not None
        assert demand.grad[0] != 0 and supply.grad[0] != 0

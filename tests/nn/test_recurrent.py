"""Recurrent cells and encoders: shapes, gates, gradient flow."""

import numpy as np
import pytest

from repro.nn import (
    GRUCell,
    GRUEncoder,
    LSTMCell,
    LSTMEncoder,
    RNNCell,
    RNNEncoder,
)
from repro.tensor import Tensor


class TestCells:
    def test_rnn_cell_shape(self, rng):
        cell = RNNCell(4, 8, rng)
        h = cell(Tensor(rng.normal(size=(3, 4))), Tensor(np.zeros((3, 8))))
        assert h.shape == (3, 8)

    def test_rnn_cell_bounded_by_tanh(self, rng):
        cell = RNNCell(4, 8, rng)
        h = cell(Tensor(rng.normal(size=(3, 4)) * 100), Tensor(np.zeros((3, 8))))
        assert (np.abs(h.data) <= 1.0).all()

    def test_lstm_cell_shapes(self, rng):
        cell = LSTMCell(4, 8, rng)
        h0, c0 = Tensor(np.zeros((3, 8))), Tensor(np.zeros((3, 8)))
        h, c = cell(Tensor(rng.normal(size=(3, 4))), (h0, c0))
        assert h.shape == (3, 8)
        assert c.shape == (3, 8)

    def test_lstm_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 8, rng)
        np.testing.assert_allclose(cell.bias.data[8:16], np.ones(8))
        np.testing.assert_allclose(cell.bias.data[:8], np.zeros(8))

    def test_gru_cell_shape(self, rng):
        cell = GRUCell(4, 8, rng)
        h = cell(Tensor(rng.normal(size=(3, 4))), Tensor(np.zeros((3, 8))))
        assert h.shape == (3, 8)

    def test_gru_zero_update_gate_keeps_state(self, rng):
        cell = GRUCell(2, 3, rng)
        # Force z ~ 0 by driving the update-gate logits very negative.
        cell.weight_x.data[:, :3] = 0.0
        cell.weight_h.data[:, :3] = 0.0
        cell.bias.data[:3] = -50.0
        h_prev = Tensor(rng.normal(size=(2, 3)))
        h = cell(Tensor(rng.normal(size=(2, 2))), h_prev)
        np.testing.assert_allclose(h.data, h_prev.data, atol=1e-8)


class TestEncoders:
    @pytest.mark.parametrize("encoder_cls", [RNNEncoder, LSTMEncoder, GRUEncoder])
    def test_final_state_shape(self, encoder_cls, rng):
        encoder = encoder_cls(2, 6, rng)
        out = encoder(Tensor(rng.normal(size=(7, 4, 2))))
        assert out.shape == (4, 6)

    @pytest.mark.parametrize("encoder_cls", [RNNEncoder, LSTMEncoder, GRUEncoder])
    def test_gradients_reach_all_parameters(self, encoder_cls, rng):
        encoder = encoder_cls(2, 4, rng)
        encoder(Tensor(rng.normal(size=(5, 3, 2)))).sum().backward()
        for param in encoder.parameters():
            assert param.grad is not None
            assert np.abs(param.grad).sum() > 0

    def test_encoder_deterministic(self):
        x = np.random.default_rng(0).normal(size=(5, 3, 2))
        outs = []
        for _ in range(2):
            encoder = LSTMEncoder(2, 4, np.random.default_rng(11))
            outs.append(encoder(Tensor(x)).data)
        np.testing.assert_allclose(outs[0], outs[1])

    def test_order_sensitivity(self, rng):
        """Recurrent encoders must care about sequence order."""
        encoder = LSTMEncoder(1, 4, rng)
        seq = rng.normal(size=(6, 1, 1))
        forward = encoder(Tensor(seq)).data
        backward = encoder(Tensor(seq[::-1].copy())).data
        assert not np.allclose(forward, backward)

"""Attention primitives vs naive reference implementations."""

import numpy as np

from repro.nn import PairwiseAdditiveAttention, ScaledDotProductAttention
from repro.tensor import Tensor


def naive_pairwise(attn: PairwiseAdditiveAttention, features: np.ndarray) -> np.ndarray:
    """Literal Eq. 11: e(i,j) = ELU([F_i W || F_j W] a), then softmax rows."""
    w = attn.weight.data
    a = np.concatenate([attn.attn_src.data, attn.attn_dst.data], axis=0)  # (2f, 1)
    n = len(features)
    raw = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            pair = np.concatenate([features[i] @ w, features[j] @ w])
            value = float((pair @ a)[0])
            raw[i, j] = value if value > 0 else np.exp(value) - 1.0  # ELU
    e = np.exp(raw - raw.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


class TestPairwiseAdditiveAttention:
    def test_matches_naive_pairwise_loop(self, rng):
        attn = PairwiseAdditiveAttention(4, rng)
        features = rng.normal(size=(5, 4))
        fast = attn(Tensor(features)).data
        np.testing.assert_allclose(fast, naive_pairwise(attn, features), atol=1e-10)

    def test_rows_sum_to_one(self, rng):
        attn = PairwiseAdditiveAttention(6, rng)
        out = attn(Tensor(rng.normal(size=(7, 6)))).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(7), atol=1e-12)

    def test_masked_rows(self, rng):
        attn = PairwiseAdditiveAttention(4, rng)
        mask = np.eye(5, dtype=bool)
        out = attn(Tensor(rng.normal(size=(5, 4))), mask=mask).data
        np.testing.assert_allclose(out, np.eye(5), atol=1e-12)

    def test_gradients_flow(self, rng):
        attn = PairwiseAdditiveAttention(4, rng)
        attn(Tensor(rng.normal(size=(5, 4)))).sum().backward()
        # Row-softmax makes the total sum constant (= n), but W8 still
        # receives gradient through individual entries in general use;
        # use a weighted sum instead to get a non-trivial objective.
        attn.zero_grad()
        weights = Tensor(rng.normal(size=(5, 5)))
        (attn(Tensor(rng.normal(size=(5, 4)))) * weights).sum().backward()
        for param in attn.parameters():
            assert param.grad is not None
            assert np.abs(param.grad).sum() > 0


class TestScaledDotProductAttention:
    def test_output_shape(self, rng):
        attn = ScaledDotProductAttention(6, rng)
        out = attn(Tensor(rng.normal(size=(4, 6))))
        assert out.shape == (4, 6)

    def test_attention_matrix_rows_sum_to_one(self, rng):
        attn = ScaledDotProductAttention(6, rng)
        alpha = attn.attention_matrix(Tensor(rng.normal(size=(4, 6)))).data
        np.testing.assert_allclose(alpha.sum(axis=1), np.ones(4), atol=1e-12)

    def test_matches_reference(self, rng):
        attn = ScaledDotProductAttention(3, rng)
        x = rng.normal(size=(4, 3))
        q, k, v = x @ attn.query.data, x @ attn.key.data, x @ attn.value.data
        logits = q @ k.T / np.sqrt(3)
        e = np.exp(logits - logits.max(axis=1, keepdims=True))
        expected = (e / e.sum(axis=1, keepdims=True)) @ v
        np.testing.assert_allclose(attn(Tensor(x)).data, expected, atol=1e-10)

"""``history_window()`` parity: training extraction equals the batch builder.

The continual loop trains on what ``history_window()`` hands it, so the
window must be **bitwise** equal to :func:`build_flow_tensors` over the
same trip log — dirty records, out-of-order delivery and in-transit
trips included — for the single store and for every sharding degree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.flows import build_flow_tensors
from repro.data.records import TripRecord
from repro.serve import FlowStateConfig, FlowStateStore
from repro.serve.fleet.shard import ShardedFlowStore

SLOT = 1800.0  # 30-minute slots: slots_per_day = 48


@st.composite
def event_streams(draw):
    """A dirty trip log plus a bounded-lateness delivery order."""
    num_stations = draw(st.integers(min_value=2, max_value=9))
    num_slots = draw(st.integers(min_value=8, max_value=120))
    num_trips = draw(st.integers(min_value=0, max_value=120))
    trips = []
    for trip_id in range(num_trips):
        origin = draw(st.integers(0, num_stations - 1))
        destination = draw(st.integers(0, num_stations - 1))
        start_slot = draw(st.integers(0, num_slots - 1))
        offset = draw(st.floats(min_value=0.0, max_value=SLOT - 1.0))
        start = start_slot * SLOT + offset
        duration = draw(st.floats(min_value=-2 * SLOT, max_value=6 * SLOT))
        trips.append(TripRecord(trip_id, origin, destination, start,
                                float(start + duration)))
    trips.sort(key=lambda t: t.start_time)
    for i in range(len(trips) - 1):
        gap = trips[i + 1].start_slot(SLOT) - trips[i].start_slot(SLOT)
        if gap <= 40 and draw(st.booleans()):
            trips[i], trips[i + 1] = trips[i + 1], trips[i]
    short_window = draw(st.integers(min_value=1, max_value=12))
    retained = draw(st.integers(min_value=1, max_value=130))
    return num_stations, num_slots, trips, short_window, retained


def _build_store(stream, num_shards):
    num_stations, num_slots, trips, short_window, retained = stream
    config = FlowStateConfig(
        num_stations=num_stations,
        slot_seconds=SLOT,
        short_window=short_window,
        long_days=1,
        retained_slots=retained,
    )
    if num_shards == 1:
        store = FlowStateStore(config)
    else:
        store = ShardedFlowStore(
            config, num_shards=min(num_shards, num_stations)
        )
    for trip in trips:
        store.ingest(trip)
    store.advance_to(num_slots)
    return store


def _assert_window_parity(store, stream):
    num_stations, num_slots, trips, _, _ = stream
    batch_inflow, batch_outflow = build_flow_tensors(
        trips, num_stations, num_slots, SLOT
    )
    # Full retained span, default bounds: finalized slots only.
    first, inflow, outflow = store.history_window()
    assert first == store.oldest_retained
    assert inflow.shape[0] == num_slots - first
    assert np.array_equal(inflow, batch_inflow[first:num_slots])
    assert np.array_equal(outflow, batch_outflow[first:num_slots])
    # A strict sub-window ending before the frontier.
    span = num_slots - first
    if span >= 2:
        sub = span // 2
        end = first + sub + (span - sub) // 2
        f2, in2, out2 = store.history_window(slots=sub, end=end)
        assert f2 == end - sub
        assert np.array_equal(in2, batch_inflow[f2:end])
        assert np.array_equal(out2, batch_outflow[f2:end])


@pytest.mark.parametrize("num_shards", [1, 2, 7])
@given(stream=event_streams())
@settings(max_examples=40, deadline=None)
def test_history_window_matches_batch_bitwise(num_shards, stream):
    store = _build_store(stream, num_shards)
    _assert_window_parity(store, stream)


@pytest.mark.parametrize("num_shards", [1, 2, 7])
def test_history_window_excludes_open_frontier(num_shards):
    config = FlowStateConfig(
        num_stations=7, slot_seconds=SLOT, short_window=4, long_days=1
    )
    if num_shards == 1:
        store = FlowStateStore(config)
    else:
        store = ShardedFlowStore(config, num_shards=num_shards)
    store.advance_to(5)
    # A trip in the open frontier slot must not appear in any window.
    store.ingest(TripRecord(0, 0, 1, 5 * SLOT + 1.0, 5 * SLOT + 2.0))
    _, inflow, outflow = store.history_window()
    assert inflow.sum() == 0.0 and outflow.sum() == 0.0
    store.advance_to(6)
    _, inflow, outflow = store.history_window(slots=1)
    # Outflow rows are origins, inflow rows are destinations (Def. 1).
    assert outflow[0, 0, 1] == 1.0 and inflow[0, 1, 0] == 1.0


def test_history_window_validates_bounds():
    config = FlowStateConfig(
        num_stations=3, slot_seconds=SLOT, short_window=4, long_days=1,
    )
    store = FlowStateStore(config)
    store.advance_to(60)  # retention = horizon = 48, so slots 12.. retained
    with pytest.raises(ValueError):
        store.history_window(slots=49)  # deeper than retention
    with pytest.raises(ValueError):
        store.history_window(end=61)  # beyond the frontier
    with pytest.raises(ValueError):
        store.history_window(slots=2, end=5)  # evicted slots
    first, inflow, _ = store.history_window(slots=0)
    assert inflow.shape == (0, 3, 3)

"""Chaos tests for the ``continual.*`` fault seams.

The invariants the continual loop must keep under injected failure:

* a crash at extract/retrain/evaluate leaves the live deployment —
  checkpoint file, training snapshot, store, model version — untouched;
* a failed promotion (canary quarantined by the fleet's shadow check)
  is rolled back: the previous checkpoint is restored byte-compatible,
  the canary reloads it, the quarantine is lifted;
* a corrupt candidate artifact (bit rot between write and rollout)
  never reaches a replica — the pre-flight schema/corruption gate from
  the checkpoint layer stops it and the rollback ladder runs.
"""

import shutil

import numpy as np
import pytest

from repro.core.persistence import load_state, load_training_snapshot
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.synthetic import SyntheticCityConfig, generate_city
from repro.core.model import STGNNDJD
from repro.core.persistence import save_checkpoint, save_training_snapshot
from repro.continual import (
    ContinualConfig,
    ContinualLearner,
    PromotionRolledBack,
)
from repro.faults import FaultPlan, InjectedFault, injected
from repro.obs.events import JsonlExporter, read_events, sink_scope
from repro.serve.fleet.router import FleetRouter
from repro.serve.fleet.shard import ShardedFlowStore
from repro.serve.service import PredictionService
from repro.serve.state import FlowStateStore

RETAINED = 9 * 24  # tiny-config slots: keep 9 days behind the frontier


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """One offline training run shared by every chaos scenario."""
    root = tmp_path_factory.mktemp("trained")
    dataset = generate_city(
        SyntheticCityConfig.tiny(days=10, num_stations=6), seed=42
    )
    model = STGNNDJD.from_dataset(
        dataset, seed=3, fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0
    )
    trainer = Trainer(
        model, dataset, TrainingConfig(epochs=1, batch_size=16, seed=0)
    )
    history = trainer.fit(1)
    save_checkpoint(model, root / "model.npz")
    save_training_snapshot(
        root / "snap.npz", trainer.capture_snapshot(epoch=0, history=history)
    )
    return dataset, root


def _learner(dataset, artifacts, tmp_path, *, fleet=False):
    ckpt = tmp_path / "model.npz"
    snap = tmp_path / "snap.npz"
    shutil.copy(artifacts / "model.npz", ckpt)
    shutil.copy(artifacts / "snap.npz", snap)
    from repro.core.persistence import load_stgnn

    model = load_stgnn(ckpt)
    if fleet:
        store = ShardedFlowStore.from_dataset(
            dataset, num_shards=2, retained_slots=RETAINED
        )
        deploy = FleetRouter.build(
            model, store,
            dataset.demand_normalizer, dataset.supply_normalizer,
            num_replicas=2,
        ).start()
    else:
        store = FlowStateStore.from_dataset(dataset, retained_slots=RETAINED)
        deploy = PredictionService(
            model, store,
            dataset.demand_normalizer, dataset.supply_normalizer,
        ).start()
    config = ContinualConfig(
        checkpoint_path=str(ckpt), snapshot_path=str(snap),
        train_days=7, retrain_epochs=1, holdback_slots=6,
    )
    learner = ContinualLearner(
        store, deploy, dataset.registry, config,
        demand_normalizer=dataset.demand_normalizer,
        supply_normalizer=dataset.supply_normalizer,
        flow_scale=dataset.flow_scale,
    )
    return learner, deploy, store, ckpt, snap


def _deployment_fingerprint(deploy, store, ckpt, snap):
    return (
        deploy.model_version,
        store.frontier,
        store.version,
        ckpt.read_bytes(),
        snap.read_bytes(),
    )


@pytest.mark.parametrize(
    "site", ["continual.extract", "continual.retrain", "continual.evaluate"]
)
def test_crash_before_promotion_leaves_deployment_untouched(
    trained, tmp_path, site
):
    dataset, artifacts = trained
    learner, deploy, store, ckpt, snap = _learner(dataset, artifacts, tmp_path)
    try:
        before = _deployment_fingerprint(deploy, store, ckpt, snap)
        with injected(FaultPlan(seed=0).on(site, at=1)):
            with pytest.raises(InjectedFault):
                learner.run_cycle()
        assert _deployment_fingerprint(deploy, store, ckpt, snap) == before
        assert learner.promotions == 0
        # The loop is not wedged: the next cycle runs clean.
        result = learner.run_cycle()
        assert result.eval_samples == 6
    finally:
        deploy.stop()


def test_crash_at_promote_seam_leaves_checkpoint_untouched(trained, tmp_path):
    """The promote seam fires before the checkpoint write."""
    dataset, artifacts = trained
    learner, deploy, store, ckpt, snap = _learner(dataset, artifacts, tmp_path)
    try:
        before = _deployment_fingerprint(deploy, store, ckpt, snap)
        with injected(FaultPlan(seed=0).on("continual.promote", at=1)):
            with pytest.raises(InjectedFault):
                learner.run_cycle()
        assert _deployment_fingerprint(deploy, store, ckpt, snap) == before
    finally:
        deploy.stop()


def test_failed_canary_promotion_rolls_back_through_quarantine(
    trained, tmp_path
):
    dataset, artifacts = trained
    learner, fleet, store, ckpt, snap = _learner(
        dataset, artifacts, tmp_path, fleet=True
    )
    try:
        old_state = load_state(ckpt)
        old_snapshot_bytes = snap.read_bytes()
        events_path = tmp_path / "events.jsonl"
        # The canary's post-reload shadow forecast raises -> the router
        # quarantines it and the promotion must roll back.
        plan = FaultPlan(seed=0).on("fleet.replica0.forecast", at=1)
        with sink_scope(JsonlExporter(events_path)) as sink:
            with injected(plan):
                with pytest.raises(PromotionRolledBack):
                    learner.run_cycle()
            sink.close()
        assert fleet.quarantined == frozenset()
        # Previous weights are back on disk and on every replica.
        restored = load_state(ckpt)
        assert restored.keys() == old_state.keys()
        for name in old_state:
            assert np.array_equal(restored[name], old_state[name]), name
        assert snap.read_bytes() == old_snapshot_bytes
        forecast = fleet.predict(None)
        assert np.all(np.isfinite(np.asarray(forecast.demand)))
        names = [e["name"] for e in read_events(events_path)]
        assert "continual.shadow_eval" in names
        assert "continual.rolled_back" in names
        assert "continual.promoted" not in names
    finally:
        fleet.stop()


def test_corrupt_candidate_never_reaches_the_fleet(trained, tmp_path):
    dataset, artifacts = trained
    learner, fleet, store, ckpt, snap = _learner(
        dataset, artifacts, tmp_path, fleet=True
    )
    try:
        old_state = load_state(ckpt)
        reloads_before = [r.model_version for r in fleet.replicas]

        def truncate(path):
            data = ckpt.read_bytes()
            ckpt.write_bytes(data[: len(data) // 2])
            return path

        plan = FaultPlan(seed=0).on(
            "continual.promote.artifact", action="call", callback=truncate
        )
        with injected(plan):
            with pytest.raises(PromotionRolledBack, match="corrupt"):
                learner.run_cycle()
        # No replica ever saw the corrupt artifact: versions unchanged,
        # and the restored checkpoint loads cleanly with the old weights.
        assert [r.model_version for r in fleet.replicas] == reloads_before
        assert fleet.quarantined == frozenset()
        restored = load_state(ckpt)
        for name in old_state:
            assert np.array_equal(restored[name], old_state[name]), name
        load_training_snapshot(snap)  # snapshot untouched and readable
    finally:
        fleet.stop()

"""Graph evolution: stations appear/disappear without a restart.

Covers the remap rules (kept values copied verbatim, new rows from the
deterministic donor init), flow-store surgery (pending inflow drained
for removed stations, parity between single and sharded stores), and
training-snapshot evolution (Adam moments follow their parameters;
new-station moments start at zero).
"""

import dataclasses

import numpy as np
import pytest

from repro.continual import (
    GraphEvolution,
    evolve_flow_store,
    evolve_model,
    evolve_registry,
    evolve_sharded_store,
    evolve_training_snapshot,
)
from repro.core.model import STGNNDJD
from repro.core.persistence import training_fingerprint
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.records import TripRecord
from repro.data.synthetic import SyntheticCityConfig, generate_city
from repro.serve.fleet.shard import ShardedFlowStore
from repro.serve.state import FlowStateStore


@pytest.fixture(scope="module")
def city():
    return generate_city(
        SyntheticCityConfig.tiny(days=10, num_stations=8), seed=42
    )


class TestGraphEvolution:
    def test_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            GraphEvolution(5, (2, 1), 0)
        with pytest.raises(ValueError, match="kept"):
            GraphEvolution(5, (0, 7), 0)
        with pytest.raises(ValueError):
            GraphEvolution(5, (), 1)
        with pytest.raises(ValueError):
            GraphEvolution.shrink(2, [0])  # would leave one station
        assert GraphEvolution.grow(5, 0).is_identity()

    def test_grow_and_shrink_helpers(self):
        grow = GraphEvolution.grow(4, 2)
        assert grow.kept == (0, 1, 2, 3)
        assert grow.num_stations == 6 and grow.removed == ()
        shrink = GraphEvolution.shrink(4, [1])
        assert shrink.kept == (0, 2, 3)
        assert shrink.num_stations == 3 and shrink.removed == (1,)
        assert GraphEvolution(4, (0, 1, 2, 3), 0).is_identity()
        assert not grow.is_identity()


class TestModelEvolution:
    def _model(self, n=6, seed=1):
        from repro.core.model import STGNNDJDConfig

        config = STGNNDJDConfig(
            num_stations=n, short_window=4, long_days=2,
            num_heads=2, dropout=0.0,
        )
        return STGNNDJD(config, rng=np.random.default_rng(seed))

    def test_kept_values_copied_verbatim(self):
        model = self._model()
        evolution = GraphEvolution(6, (0, 1, 3, 4, 5), 1)
        evolved = evolve_model(model, evolution, seed=3)
        assert evolved.config.num_stations == 6
        old = dict(model.named_parameters())
        new = dict(evolved.named_parameters())
        kept = np.array(evolution.kept)
        dst = np.arange(len(kept))
        gate_old = old["flow_conv.gate_inflow"].data
        gate_new = new["flow_conv.gate_inflow"].data
        assert np.array_equal(
            gate_new[np.ix_(dst, dst)], gate_old[np.ix_(kept, kept)]
        )
        # Temporal conv kernels have no station axis: copied verbatim.
        assert np.array_equal(
            new["flow_conv.short_inflow_conv.weight"].data,
            old["flow_conv.short_inflow_conv.weight"].data,
        )

    def test_new_rows_are_deterministic(self):
        model = self._model()
        evolution = GraphEvolution.grow(6, 2)
        a = evolve_model(model, evolution, seed=9)
        b = evolve_model(model, evolution, seed=9)
        for (name, pa), (_, pb) in zip(
            a.named_parameters(), b.named_parameters()
        ):
            assert np.array_equal(pa.data, pb.data), name

    def test_forward_works_after_evolution(self, city):
        model = STGNNDJD.from_dataset(
            city, seed=3, fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0
        )
        evolved = evolve_model(model, GraphEvolution.shrink(8, [2, 5]), seed=1)
        sample = city.sample(city.min_history)
        kept = np.array([0, 1, 3, 4, 6, 7])
        small = dataclasses.replace(
            sample,
            short_inflow=sample.short_inflow[:, kept][:, :, kept],
            short_outflow=sample.short_outflow[:, kept][:, :, kept],
            long_inflow=sample.long_inflow[:, kept][:, :, kept],
            long_outflow=sample.long_outflow[:, kept][:, :, kept],
            target_demand=sample.target_demand[kept],
            target_supply=sample.target_supply[kept],
        )
        from repro.tensor import inference_mode

        with inference_mode():
            demand, supply = evolved(small)
        assert demand.data.shape == (6,)
        assert np.all(np.isfinite(demand.data))
        assert np.all(np.isfinite(supply.data))


class TestStoreEvolution:
    def test_single_and_sharded_stores_stay_in_parity(self, city):
        single = FlowStateStore.from_dataset(city, retained_slots=80)
        fleet = ShardedFlowStore.from_dataset(
            city, num_shards=3, retained_slots=80
        )
        evolution = GraphEvolution(8, (0, 1, 3, 4, 6, 7), 1)
        evolve_flow_store(single, evolution)
        evolve_sharded_store(fleet, evolution)
        f1, in1, out1 = single.history_window(slots=40)
        f2, in2, out2 = fleet.history_window(slots=40)
        assert f1 == f2
        assert np.array_equal(in1, in2) and np.array_equal(out1, out2)
        # Kept stations preserved their history; new station is silent.
        kept = np.array(evolution.kept)
        assert np.array_equal(
            in1[:, :6, :6], city.inflow[f1 : f1 + 40][:, kept][:, :, kept]
        )
        assert np.all(in1[:, 6, :] == 0) and np.all(in1[:, :, 6] == 0)

    def test_pending_inflow_drained_for_removed_stations(self, city):
        store = FlowStateStore.from_dataset(city, retained_slots=80)
        slot_seconds = store.config.slot_seconds
        t0 = store.frontier * slot_seconds
        # Two in-transit trips: one into a surviving station, one into
        # the station about to be removed.
        store.ingest(TripRecord(900, 0, 1, t0 + 1.0, t0 + 3 * slot_seconds))
        store.ingest(TripRecord(901, 0, 2, t0 + 1.0, t0 + 3 * slot_seconds))
        drained = evolve_flow_store(store, GraphEvolution.shrink(8, [2]))
        assert drained == 1.0
        store.advance_to(store.frontier + 4)
        _, inflow, _ = store.history_window(slots=4)
        # Station 1 kept its in-transit arrival; station 2's is gone.
        assert inflow[:, 1, 0].sum() == 1.0
        assert inflow.sum() == 1.0

    def test_version_bumps_and_ingest_continues(self, city):
        fleet = ShardedFlowStore.from_dataset(
            city, num_shards=2, retained_slots=80
        )
        before = fleet.version
        evolve_sharded_store(fleet, GraphEvolution.grow(8, 1))
        assert fleet.version > before
        assert fleet.coherent
        slot_seconds = fleet.config.slot_seconds
        t0 = fleet.frontier * slot_seconds
        fleet.ingest(TripRecord(902, 8, 0, t0 + 1.0, t0 + 2.0))
        fleet.advance_to(fleet.frontier + 1)
        _, inflow, outflow = fleet.history_window(slots=1)
        assert outflow[0, 8, 0] == 1.0 and inflow[0, 0, 8] == 1.0


class TestSnapshotAndRegistryEvolution:
    def test_snapshot_moments_follow_parameters(self, city):
        model = STGNNDJD.from_dataset(
            city, seed=3, fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0
        )
        trainer = Trainer(
            model, city, TrainingConfig(epochs=1, batch_size=16, seed=0)
        )
        trainer.fit(1)
        snapshot = trainer.capture_snapshot()
        evolution = GraphEvolution.grow(8, 1)
        evolved = evolve_training_snapshot(
            snapshot, model.config, evolution, seed=5
        )
        donor = evolve_model(model, evolution, seed=5)
        assert evolved.fingerprint == training_fingerprint(donor)
        # Moments keep their kept-block values and zero the new rows.
        names = [name for name, _ in donor.named_parameters()]
        gate = names.index("flow_conv.gate_inflow")
        key = f"{gate:04d}"
        assert np.array_equal(
            evolved.adam_m[key][:8, :8], snapshot.adam_m[key]
        )
        assert np.all(evolved.adam_m[key][8, :] == 0)
        assert np.all(evolved.adam_v[key][:, 8] == 0)
        assert evolved.adam_step_count == snapshot.adam_step_count
        # The evolved snapshot warm-starts a trainer for the new city.
        new_trainer = Trainer(
            donor, city, TrainingConfig(epochs=1, batch_size=16, seed=0)
        )
        new_trainer.warm_start(evolved)

    def test_registry_evolution(self, city):
        evolution = GraphEvolution(8, (0, 1, 3, 4, 6, 7), 2)
        registry = evolve_registry(city.registry, evolution)
        assert len(registry) == 8
        stations = list(registry)
        originals = list(city.registry)
        assert stations[2].longitude == originals[3].longitude
        assert stations[2].station_id == 2
        assert stations[6].name.startswith("new-")

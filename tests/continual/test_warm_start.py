"""Warm-start parity: incremental epochs continue a fit bit-for-bit.

The continual loop's retrain stage is ``Trainer.warm_start(snapshot)``
followed by a short ``fit``. This pins the contract it relies on: one
epoch warm-started from an uninterrupted run's epoch-``e`` snapshot
produces *bitwise* the parameters, Adam moments and RNG state of that
run's epoch ``e + 1`` — serially and over both gradient transports.
"""

import numpy as np
import pytest

from repro.core.model import STGNNDJD
from repro.core.parallel import fork_available
from repro.core.persistence import (
    CheckpointSchemaError,
    load_training_snapshot,
)
from repro.core.trainer import Trainer, TrainingConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

MODEL_KWARGS = dict(fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0)


def _trainer(dataset, snapshot_path, *, workers=0, transport="auto"):
    model = STGNNDJD.from_dataset(dataset, seed=3, **MODEL_KWARGS)
    config = TrainingConfig(
        epochs=3,
        batch_size=16,
        seed=11,
        patience=100,  # no early stopping: every epoch must run
        workers=workers,
        transport=transport,
        snapshot_path=None if snapshot_path is None else str(snapshot_path),
        resume=False,
    )
    return Trainer(model, dataset, config)


def _assert_snapshots_bitwise_equal(a, b):
    assert a.model_state.keys() == b.model_state.keys()
    for name in a.model_state:
        assert np.array_equal(a.model_state[name], b.model_state[name]), name
    assert a.adam_step_count == b.adam_step_count
    for key in a.adam_m:
        assert np.array_equal(a.adam_m[key], b.adam_m[key])
        assert np.array_equal(a.adam_v[key], b.adam_v[key])
    assert a.rng_state == b.rng_state


@pytest.mark.parametrize(
    "workers,transport",
    [
        (0, "auto"),
        pytest.param(2, "shm", marks=needs_fork),
        pytest.param(2, "pipe", marks=needs_fork),
    ],
)
def test_warm_started_epoch_bitmatches_uninterrupted_fit(
    mini_dataset, tmp_path, workers, transport
):
    # Uninterrupted reference: 3 epochs, snapshotting each boundary.
    # After fit() the snapshot file holds the epoch-2 boundary state.
    full = _trainer(
        mini_dataset, tmp_path / "full.npz",
        workers=workers, transport=transport,
    )
    full.fit(3)
    reference = load_training_snapshot(tmp_path / "full.npz")
    assert reference.epoch == 2

    # Identical prefix run stopped after 2 epochs: its snapshot is the
    # epoch-1 boundary the continual loop would warm-start from.
    prefix = _trainer(
        mini_dataset, tmp_path / "prefix.npz",
        workers=workers, transport=transport,
    )
    prefix.fit(2)
    boundary = load_training_snapshot(tmp_path / "prefix.npz")
    assert boundary.epoch == 1

    # Warm start a *fresh* trainer (new model init, new optimizer, new
    # RNG) from the boundary and run one incremental epoch.
    warm = _trainer(
        mini_dataset, None, workers=workers, transport=transport,
    )
    warm.warm_start(boundary)
    warm.fit(1)
    _assert_snapshots_bitwise_equal(warm.capture_snapshot(), reference)


def test_warm_start_rejects_mismatched_fingerprint(mini_dataset, tmp_path):
    donor = _trainer(mini_dataset, None)
    snapshot = donor.capture_snapshot()
    other_model = STGNNDJD.from_dataset(
        mini_dataset, seed=3, fcg_layers=2, pcg_layers=1, num_heads=2,
        dropout=0.0,
    )
    other = Trainer(other_model, mini_dataset, TrainingConfig(epochs=1))
    with pytest.raises(CheckpointSchemaError, match="warm-start"):
        other.warm_start(snapshot)


def test_warm_start_resets_best_state_and_target_cache(mini_dataset):
    trainer = _trainer(mini_dataset, None)
    trainer.fit(1)
    assert trainer._best_state is not None
    snapshot = trainer.capture_snapshot()
    fresh = _trainer(mini_dataset, None)
    fresh.warm_start(snapshot)
    assert fresh._best_state is None
    assert not fresh._target_cache

"""Extraction bridge: live store history -> training-ready datasets.

The continual loop's candidate must train on exactly the tensors the
offline pipeline would have built from the same trips, in exactly the
input space the live model serves in. These tests pin that: extracted
windows match dataset slices bitwise, pinned normalizers are the
deployment's scalers (not refit on the window), and holdback samples
reproduce ``dataset.sample()`` for the same absolute slots.
"""

import numpy as np
import pytest

from repro.continual import (
    InsufficientHistoryError,
    extract_training_dataset,
    holdback_samples,
    window_bounds,
)
from repro.data.synthetic import SyntheticCityConfig, generate_city
from repro.serve.fleet.shard import ShardedFlowStore
from repro.serve.state import FlowStateStore


@pytest.fixture(scope="module")
def city():
    return generate_city(
        SyntheticCityConfig.tiny(days=10, num_stations=6), seed=42
    )


def _store(city, sharded=False, retained=9 * 24):
    if sharded:
        return ShardedFlowStore.from_dataset(
            city, num_shards=2, retained_slots=retained
        )
    return FlowStateStore.from_dataset(city, retained_slots=retained)


class TestWindowBounds:
    def test_day_aligned_and_holdback_separated(self, city):
        store = _store(city)
        spd = store.config.slots_per_day
        start, end = window_bounds(store, train_days=7, holdback_slots=6)
        assert end % spd == 0 and start % spd == 0
        assert end - start == 7 * spd
        assert end <= store.frontier - 6

    def test_insufficient_history_raises(self, city):
        store = _store(city)
        with pytest.raises(InsufficientHistoryError):
            window_bounds(store, train_days=30)
        shallow = _store(city, retained=48)
        with pytest.raises(InsufficientHistoryError):
            window_bounds(shallow, train_days=7)

    def test_validation(self, city):
        store = _store(city)
        with pytest.raises(ValueError):
            window_bounds(store, train_days=0)
        with pytest.raises(ValueError):
            window_bounds(store, train_days=1, holdback_slots=-1)


class TestExtractTrainingDataset:
    @pytest.mark.parametrize("sharded", [False, True])
    def test_tensors_match_source_dataset_bitwise(self, city, sharded):
        store = _store(city, sharded=sharded)
        dataset, start = extract_training_dataset(
            store, city.registry, train_days=7, holdback_slots=6,
            demand_normalizer=city.demand_normalizer,
            supply_normalizer=city.supply_normalizer,
            flow_scale=city.flow_scale,
        )
        end = start + dataset.inflow.shape[0]
        assert np.array_equal(dataset.inflow, city.inflow[start:end])
        assert np.array_equal(dataset.outflow, city.outflow[start:end])

    def test_pinned_normalizers_are_the_deployments(self, city):
        store = _store(city)
        dataset, _ = extract_training_dataset(
            store, city.registry, train_days=7, holdback_slots=6,
            demand_normalizer=city.demand_normalizer,
            supply_normalizer=city.supply_normalizer,
            flow_scale=city.flow_scale,
        )
        assert dataset.demand_normalizer is city.demand_normalizer
        assert dataset.supply_normalizer is city.supply_normalizer
        assert dataset.flow_scale == city.flow_scale

    def test_both_or_neither_normalizers(self, city):
        store = _store(city)
        with pytest.raises(ValueError, match="both"):
            extract_training_dataset(
                store, city.registry, train_days=7,
                demand_normalizer=city.demand_normalizer,
            )
        with pytest.raises(ValueError, match="flow_scale"):
            extract_training_dataset(
                store, city.registry, train_days=7,
                demand_normalizer=city.demand_normalizer,
                supply_normalizer=city.supply_normalizer,
            )


class TestHoldbackSamples:
    @pytest.mark.parametrize("sharded", [False, True])
    def test_samples_match_dataset_windows_bitwise(self, city, sharded):
        store = _store(city, sharded=sharded)
        samples = holdback_samples(store, 6)
        assert len(samples) == 6
        assert [s.t for s in samples] == list(
            range(store.frontier - 6, store.frontier)
        )
        for sample in samples:
            reference = city.sample(sample.t)
            assert np.array_equal(sample.short_inflow, reference.short_inflow)
            assert np.array_equal(sample.short_outflow, reference.short_outflow)
            assert np.array_equal(sample.long_inflow, reference.long_inflow)
            assert np.array_equal(sample.long_outflow, reference.long_outflow)
            assert np.array_equal(sample.target_demand, reference.target_demand)
            assert np.array_equal(sample.target_supply, reference.target_supply)

    def test_insufficient_retention_raises(self, city):
        store = _store(city, retained=50)
        with pytest.raises(InsufficientHistoryError):
            holdback_samples(store, 12)
        with pytest.raises(ValueError):
            holdback_samples(store, 0)

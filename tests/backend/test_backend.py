"""The compute backend: dtype policy, allocators, op registry, buffers."""

import numpy as np
import pytest

from repro import backend
from repro.backend import registry
from repro.backend.pool import BufferPool, active_pool, buffer_scope


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert backend.default_dtype() == np.float64

    def test_resolve_none_returns_default(self):
        assert backend.resolve_dtype(None) == backend.default_dtype()

    @pytest.mark.parametrize("spec", ["float32", np.float32, np.dtype(np.float32)])
    def test_resolve_spellings(self, spec):
        assert backend.resolve_dtype(spec) == np.float32

    @pytest.mark.parametrize("bad", ["int32", np.int64, "float16", "complex128"])
    def test_unsupported_dtype_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            backend.resolve_dtype(bad)

    def test_set_default_returns_previous(self):
        previous = backend.set_default_dtype(np.float32)
        try:
            assert previous == np.float64
            assert backend.default_dtype() == np.float32
        finally:
            backend.set_default_dtype(previous)
        assert backend.default_dtype() == np.float64

    def test_dtype_scope_nests_and_survives_exceptions(self):
        with backend.dtype_scope(np.float32):
            assert backend.default_dtype() == np.float32
            with backend.dtype_scope(np.float64):
                assert backend.default_dtype() == np.float64
            assert backend.default_dtype() == np.float32
        assert backend.default_dtype() == np.float64
        with pytest.raises(RuntimeError):
            with backend.dtype_scope(np.float32):
                raise RuntimeError("boom")
        assert backend.default_dtype() == np.float64


class TestAllocators:
    def test_asarray_casts_to_default(self):
        assert backend.asarray([1, 2, 3]).dtype == np.float64
        with backend.dtype_scope(np.float32):
            assert backend.asarray([1, 2, 3]).dtype == np.float32

    def test_asarray_explicit_dtype(self):
        assert backend.asarray(1.5, dtype="float32").dtype == np.float32

    def test_shaped_allocators(self):
        assert backend.zeros((2, 3)).shape == (2, 3)
        assert np.all(backend.ones((2, 3)) == 1.0)
        assert backend.empty((4,)).dtype == np.float64
        with backend.dtype_scope("float32"):
            assert backend.zeros((2,)).dtype == np.float32


class TestRegistry:
    def test_core_ops_registered(self):
        for name in ("add", "matmul", "relu", "linear", "row_softmax"):
            assert registry.has_op(name), name

    def test_get_unknown_op_raises(self):
        with pytest.raises(KeyError):
            registry.get_op("definitely-not-an-op")

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register("add")(lambda: None)

    def test_override_swaps_and_restores(self):
        def fake(*args, **kwargs):
            raise AssertionError("should not be called")

        original = registry.override("relu", fake)
        try:
            assert registry.get_op("relu") is fake
        finally:
            registry.override("relu", original)
        assert registry.get_op("relu") is original

    def test_override_unknown_op_raises(self):
        with pytest.raises(KeyError):
            registry.override("definitely-not-an-op", lambda: None)

    def test_list_ops_sorted(self):
        ops = registry.list_ops()
        assert ops == sorted(ops)
        assert len(ops) == len(set(ops))


class TestBufferPool:
    def test_take_allocates_shape_and_dtype(self):
        pool = BufferPool()
        buffer = pool.take((3, 4), np.float32)
        assert buffer.shape == (3, 4)
        assert buffer.dtype == np.float32
        assert pool.misses == 1 and pool.hits == 0
        assert pool.outstanding == 1

    def test_no_reuse_within_scope(self):
        pool = BufferPool()
        a = pool.take((2, 2))
        b = pool.take((2, 2))
        assert a is not b

    def test_reuse_across_release(self):
        pool = BufferPool()
        a = pool.take((2, 2))
        pool.release_all()
        assert pool.outstanding == 0
        b = pool.take((2, 2))
        assert b is a
        assert pool.hits == 1

    def test_dtype_keys_distinct(self):
        pool = BufferPool()
        pool.take((2, 2), np.float64)
        pool.release_all()
        other = pool.take((2, 2), np.float32)
        assert other.dtype == np.float32
        assert pool.misses == 2

    def test_clear_drops_free_list(self):
        pool = BufferPool()
        a = pool.take((2, 2))
        pool.release_all()
        pool.clear()
        b = pool.take((2, 2))
        assert b is not a

    def test_buffer_scope_activates_and_releases(self):
        pool = BufferPool()
        assert active_pool() is None
        with buffer_scope(pool) as active:
            assert active is pool
            assert active_pool() is pool
            pool.take((3,))
            assert pool.outstanding == 1
        assert active_pool() is None
        assert pool.outstanding == 0

    def test_buffer_scope_nesting(self):
        outer, inner = BufferPool(), BufferPool()
        with buffer_scope(outer):
            with buffer_scope(inner):
                assert active_pool() is inner
            assert active_pool() is outer
        assert active_pool() is None

    def test_default_scope_makes_throwaway_pool(self):
        with buffer_scope() as pool:
            assert isinstance(pool, BufferPool)
            assert active_pool() is pool
        assert active_pool() is None


class TestBufferPoolStats:
    def test_takes_and_hit_rate(self):
        pool = BufferPool()
        assert pool.takes == 0
        assert pool.hit_rate == 0.0
        pool.take((2, 2))
        pool.release_all()
        pool.take((2, 2))
        pool.take((3, 3))
        assert pool.takes == 3
        assert pool.hits == 1 and pool.misses == 2
        assert pool.hit_rate == pytest.approx(1 / 3)

    def test_peak_outstanding_high_water_mark(self):
        pool = BufferPool()
        pool.take((2,))
        pool.take((2,))
        pool.take((2,))
        assert pool.peak_outstanding == 3
        pool.release_all()
        pool.take((2,))
        # The mark is a high-water mark: release does not lower it.
        assert pool.outstanding == 1
        assert pool.peak_outstanding == 3

    def test_stats_dict(self):
        pool = BufferPool()
        pool.take((2, 2))
        pool.release_all()
        pool.take((2, 2))
        assert pool.stats() == {
            "takes": 2,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "outstanding": 1,
            "peak_outstanding": 1,
        }

    def test_repr_carries_reuse_statistics(self):
        pool = BufferPool()
        pool.take((2, 2))
        pool.release_all()
        pool.take((2, 2))
        assert repr(pool) == (
            "BufferPool(takes=2, hits=1, misses=1, "
            "outstanding=1, peak_outstanding=1)"
        )

"""Figure 7 — impact of the attention head count m on RMSE/MAE.

Sweeps m ∈ {1..5}. Reproduction target: error declines as heads are
added and the improvement flattens out for m > 4 (the paper's chosen
default) — more heads beyond that mostly duplicate patterns.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_FIG7_RMSE,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_series_table,
)

HEADS = [1, 2, 3, 4, 5]

_results_cache = {}


def head_results():
    if not _results_cache:
        for m in HEADS:
            _results_cache[m] = tuple(
                evaluate("STGNN-DJD", city, num_heads=m) for city in DATASET_NAMES
            )
    return _results_cache


def test_fig7_attention_heads(benchmark, capsys):
    results = head_results()
    with capsys.disabled():
        print_series_table(
            "Fig. 7: RMSE/MAE vs attention heads m (measured) vs paper",
            "m", HEADS,
            {
                "Chicago RMSE": [results[m][0].rmse for m in HEADS],
                "LA RMSE": [results[m][1].rmse for m in HEADS],
                "Chicago MAE": [results[m][0].mae for m in HEADS],
                "LA MAE": [results[m][1].mae for m in HEADS],
            },
            {
                "Chicago RMSE": [PAPER_FIG7_RMSE[m][0] for m in HEADS],
                "LA RMSE": [PAPER_FIG7_RMSE[m][1] for m in HEADS],
            },
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        best_m = min(HEADS, key=lambda m: results[m][city_idx].rmse)
        single = results[1][city_idx].rmse
        # Shape: multiple heads should not lose to a single head.
        assert results[best_m][city_idx].rmse <= single * 1.02, city
        assert best_m > 1 or results[2][city_idx].rmse <= single * 1.1, (
            f"{city}: adding heads should help (m=1 {single:.3f} vs "
            f"m=2 {results[2][city_idx].rmse:.3f})"
        )

    trainer = get_stgnn_trainer("Los Angeles", num_heads=1)
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

"""Figure 4 — design-variation ablations: No FC / No FCG / No PCG.

Each variant removes one of the three core components (Sec. VII-F):
flow convolution (node features become free parameters), the
flow-convoluted graph branch, or the pattern-correlation graph branch.
Reproduction target: every ablation is worse than (or at best equal to)
the full model on both cities.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_FIG4,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_comparison_table,
)

VARIANTS = {
    "No FC": {"use_flow_conv": False},
    "No FCG": {"use_fcg": False},
    "No PCG": {"use_pcg": False},
    "STGNN-DJD": {},
}

_results_cache = {}


def ablation_results():
    if not _results_cache:
        for name, overrides in VARIANTS.items():
            _results_cache[name] = tuple(
                evaluate("STGNN-DJD", city, **overrides) for city in DATASET_NAMES
            )
    return _results_cache


def test_fig4_ablations(benchmark, capsys):
    results = ablation_results()
    with capsys.disabled():
        rows = [(name, results[name][0], results[name][1]) for name in VARIANTS]
        print_comparison_table(
            "Fig. 4: design variations of STGNN-DJD (measured vs paper)",
            rows, PAPER_FIG4,
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        full = results["STGNN-DJD"][city_idx].rmse
        for variant in ("No FC", "No FCG", "No PCG"):
            assert full <= results[variant][city_idx].rmse * 1.10, (
                f"{city}: full model ({full:.3f}) should not be worse than "
                f"{variant} ({results[variant][city_idx].rmse:.3f})"
            )

    # Benchmark: forward pass of the ablated (No FC) variant.
    trainer = get_stgnn_trainer("Los Angeles", use_flow_conv=False)
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

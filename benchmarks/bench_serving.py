"""Serving throughput — request micro-batching vs one-forward-per-request.

A closed-loop load generator drives a running
:class:`repro.serve.PredictionService` with concurrent clients, twice:

* ``unbatched`` — ``max_batch=1``: the dispatcher runs one model
  forward per request, the baseline a naive server would pay;
* ``batched`` — the default micro-batching dispatcher: concurrent
  requests for the same slot coalesce into a single forward whose
  result fans out to every waiter.

The forecast cache is disabled for both modes so every *batch* costs a
real forward — the measured speedup isolates coalescing itself, not
caching. Results (throughput, latency percentiles, speedup) are
persisted to ``BENCH_serving.json`` at the repo root.

Reproduction target: micro-batching must deliver at least
``SPEEDUP_TARGET``x the unbatched throughput on the tiny synthetic
city.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

Exit status 0 on success; the speedup bar failing raises.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import STGNNDJD, SyntheticCityConfig, generate_city
from repro.serve import PredictionService, ServiceConfig

RESULTS_PATH = REPO_ROOT / "BENCH_serving.json"
SPEEDUP_TARGET = 1.3
SEED = 2022


def _load(service: PredictionService, clients: int, requests_per_client: int):
    """Closed-loop load: each client issues its requests back to back.

    Returns (wall_seconds, per-request latencies in seconds).
    """
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def client(slot: int) -> None:
        barrier.wait()
        try:
            for _ in range(requests_per_client):
                start = time.perf_counter()
                service.predict(timeout=60.0)
                latencies[slot].append(time.perf_counter() - start)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    return wall, [value for per_client in latencies for value in per_client]


def _measure(model, dataset, config: ServiceConfig, clients: int,
             requests_per_client: int, warmup: int) -> dict:
    with PredictionService.for_dataset(model, dataset, config=config) as service:
        for _ in range(warmup):
            service.predict(timeout=60.0)
        wall, latencies = _load(service, clients, requests_per_client)
    samples = np.asarray(latencies)
    return {
        "requests": int(samples.size),
        "wall_seconds": wall,
        "throughput_rps": samples.size / wall,
        "latency_seconds": {
            "mean": float(samples.mean()),
            "p50": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
        },
    }


def run_bench(smoke: bool = False) -> dict:
    clients = 8
    requests_per_client = 20 if smoke else 40
    warmup = 3

    dataset = generate_city(SyntheticCityConfig.tiny(), seed=SEED)
    model = STGNNDJD.from_dataset(dataset, seed=SEED)

    # cache=False: every coalesced batch pays a real forward, so the
    # comparison isolates micro-batching from per-slot caching.
    batched = _measure(
        model, dataset,
        ServiceConfig(cache=False, max_batch=64, batch_wait_seconds=0.001),
        clients, requests_per_client, warmup,
    )
    unbatched = _measure(
        model, dataset,
        ServiceConfig(cache=False, max_batch=1, batch_wait_seconds=0.0),
        clients, requests_per_client, warmup,
    )

    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]

    # Tracing overhead on the serving path: the same batched load with
    # tracing enabled at the production sample rate, spans to JSONL.
    # ``batched`` above (tracing disabled) is the baseline — disabled
    # tracing costs one branch per span site.
    from repro.obs import JsonlExporter, set_sink
    from repro.obs.trace import TraceConfig, enable_tracing

    trace_sample = 0.01
    with tempfile.TemporaryDirectory(prefix="bench-serving-trace-") as tmp:
        sink = JsonlExporter(Path(tmp) / "serve.events.jsonl")
        prev_sink = set_sink(sink)
        prev_trace = enable_tracing(TraceConfig(sample_rate=trace_sample))
        try:
            traced = _measure(
                model, dataset,
                ServiceConfig(cache=False, max_batch=64,
                              batch_wait_seconds=0.001),
                clients, requests_per_client, warmup,
            )
        finally:
            enable_tracing(prev_trace if prev_trace is not None else False)
            set_sink(prev_sink)
            sink.close()
    trace_overhead_pct = (
        batched["throughput_rps"] / traced["throughput_rps"] - 1.0
    ) * 100.0

    # Untimed profiled pass: one served prediction's op dispatches
    # (single client, so only the dispatcher thread runs tensor ops).
    from _harness import op_profile

    with PredictionService.for_dataset(
        model, dataset, config=ServiceConfig(cache=False)
    ) as service:
        service.predict(timeout=60.0)  # warm
        _, profile_dict = op_profile(service.predict, timeout=60.0)

    results = {
        "city": "tiny",
        "num_stations": dataset.num_stations,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "batched": batched,
        "unbatched": unbatched,
        "speedup_batched_vs_unbatched": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "trace_overhead": {
            "sample_rate": trace_sample,
            "traced": traced,
            "overhead_pct": trace_overhead_pct,
        },
        "op_profile": profile_dict,
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    for mode in ("batched", "unbatched"):
        stats = results[mode]
        pct = stats["latency_seconds"]
        print(f"[{mode}] {stats['throughput_rps']:.0f} req/s "
              f"(p50 {pct['p50'] * 1000:.1f} ms, "
              f"p95 {pct['p95'] * 1000:.1f} ms, "
              f"p99 {pct['p99'] * 1000:.1f} ms, "
              f"{stats['requests']} requests)")
    print(f"[tracing] {traced['throughput_rps']:.0f} req/s at "
          f"sample_rate={trace_sample} "
          f"({trace_overhead_pct:+.1f}% vs tracing disabled)")
    print(f"[serving] micro-batching speedup {speedup:.2f}x "
          f"(target >= {SPEEDUP_TARGET}x) -> {RESULTS_PATH.name}")

    assert speedup >= SPEEDUP_TARGET, (
        f"micro-batching speedup {speedup:.2f}x below the "
        f"{SPEEDUP_TARGET}x bar"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shorter run for CI")
    args = parser.parse_args()
    run_bench(smoke=args.smoke)


if __name__ == "__main__":
    main()

"""Table II — RMSE/MAE at morning (07-10) and evening (17-20) rush hours.

Reuses the Table I trained models, restricting evaluation to the paper's
rush windows. Reproduction target: STGNN-DJD's margin over the deep
baselines holds (and, per the paper, tends to widen) at rush hours,
because heavier flow gives the flow-convoluted graph more signal.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_TABLE2,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_comparison_table,
)

METHODS = ["GCNN", "MGNN", "ASTGCN", "STSGCN", "GBike", "STGNN-DJD"]

_results_cache = {}


def rush_results(window: str):
    if window not in _results_cache:
        _results_cache[window] = {
            method: tuple(evaluate(method, city, window=window) for city in DATASET_NAMES)
            for method in METHODS
        }
    return _results_cache[window]


@pytest.mark.parametrize("window", ["morning", "evening"])
def test_table2_rush_hours(window, benchmark, capsys):
    results = rush_results(window)
    with capsys.disabled():
        rows = [(m, results[m][0], results[m][1]) for m in METHODS]
        print_comparison_table(
            f"Table II ({window} rush): measured vs paper", rows, PAPER_TABLE2[window]
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        ours = results["STGNN-DJD"][city_idx].rmse
        baseline_rmses = sorted(results[m][city_idx].rmse for m in METHODS[:-1])
        assert ours <= baseline_rmses[0] * 1.25, (
            f"{city}/{window}: STGNN-DJD ({ours:.3f}) should be competitive "
            f"with the best baseline ({baseline_rmses[0]:.3f}) at rush hours"
        )
        median = baseline_rmses[len(baseline_rmses) // 2]
        assert ours < median, (
            f"{city}/{window}: STGNN-DJD ({ours:.3f}) should beat the "
            f"median deep baseline ({median:.3f}) at rush hours"
        )

    # Benchmark: rush-window evaluation sweep of the trained model.
    trainer = get_stgnn_trainer("Los Angeles")
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

"""Figure 10 — the locality-prior dependency heatmap (existing approach).

Visualises what a distance-prior model (GBike, [He & Shin 2020]) assumes
about the dependency between a target station and its ten nearest
stations over the morning rush: a fixed, monotonically decreasing
function of distance, identical at every time slot. This is the
strawman the paper's case study (Figs. 11-12) contrasts against.
"""

import numpy as np
import pytest

from _harness import get_dataset, get_stgnn_trainer
from repro.baselines import GBikeBaseline
from repro.eval import locality_dependency_heatmap, render_heatmap, rush_window_times


def target_station(dataset):
    """Pick a busy central station (the paper uses Wabash & Grand)."""
    return int(dataset.demand.sum(axis=0).argmax())


def test_fig10_locality_dependency(benchmark, capsys):
    dataset = get_dataset("Chicago")
    target = target_station(dataset)
    test_day = dataset.num_days - 1
    times = rush_window_times(dataset, test_day, 7.0, 10.0)

    heatmaps = {
        direction: locality_dependency_heatmap(
            dataset, target, times, neighbors=10, direction=direction
        )
        for direction in ("from_target", "to_target")
    }

    with capsys.disabled():
        print("\nFig. 10: locality-prior (GBike-style) dependency heatmaps")
        print("(paper: rows identical, strictly darker toward nearer stations)")
        for direction, heatmap in heatmaps.items():
            print()
            print(render_heatmap(heatmap))
            print(f"column monotonicity vs distance rank: "
                  f"{heatmap.column_monotonicity():+.3f} (paper: strongly negative)")

    for heatmap in heatmaps.values():
        # Shape 1: time-invariant (every row identical).
        assert np.allclose(heatmap.values, heatmap.values[0])
        # Shape 2: monotone distance decay.
        assert (np.diff(heatmap.values[0]) <= 1e-12).all()
        assert heatmap.column_monotonicity() < -0.5

    # The learned GBike attention shows the same prior-dominated shape.
    gbike = GBikeBaseline.from_dataset(dataset, seed=0, decay_km=0.5)
    sample = dataset.sample(int(times[0]))
    alpha = gbike.dependency_matrix(sample)
    d = dataset.registry.distance_matrix()
    off = ~np.eye(len(d), dtype=bool)
    assert np.corrcoef(d[off], alpha[off])[0, 1] < -0.2

    benchmark(
        locality_dependency_heatmap, dataset, target, times, 10, "from_target"
    )

"""Repo-extension ablation — joint (Eq. 21) vs independent losses.

Not a paper table: DESIGN.md §6 flags the joint demand+supply loss as a
design choice worth ablating. We train the full model with (a) the
paper's joint RMSE loss and (b) independent MSE losses per target, and
compare test RMSE/MAE. Expectation: the two are close (both optimise
squared error), with the joint loss at least competitive — supporting
the paper's choice without overclaiming.
"""

import pytest

from _harness import (
    BENCH_SEED,
    EPOCHS,
    PATIENCE,
    STGNN_SELECTED,
    get_dataset,
    print_series_table,
)
from repro import STGNNDJD, Trainer, TrainingConfig, evaluate_model

_results_cache = {}


def loss_results():
    if not _results_cache:
        dataset = get_dataset("Los Angeles")
        for loss in ("joint", "independent"):
            model = STGNNDJD.from_dataset(dataset, seed=BENCH_SEED, **STGNN_SELECTED)
            trainer = Trainer(
                model, dataset,
                TrainingConfig(epochs=EPOCHS, patience=PATIENCE,
                               seed=BENCH_SEED, loss=loss),
            )
            trainer.fit()
            _results_cache[loss] = evaluate_model(trainer, dataset)
    return _results_cache


def test_loss_ablation(benchmark, capsys):
    results = loss_results()
    with capsys.disabled():
        print_series_table(
            "Extension ablation: training loss variant (Los Angeles)",
            "loss", ["joint", "independent"],
            {
                "RMSE": [results["joint"].rmse, results["independent"].rmse],
                "MAE": [results["joint"].mae, results["independent"].mae],
            },
            {},
        )

    # The paper's joint loss should be competitive with independent MSEs.
    assert results["joint"].rmse <= results["independent"].rmse * 1.15

    dataset = get_dataset("Los Angeles")
    sample = dataset.sample(dataset.min_history)
    model = STGNNDJD.from_dataset(dataset, seed=BENCH_SEED, **STGNN_SELECTED)
    benchmark(model, sample)

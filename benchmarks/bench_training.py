"""Training-throughput benchmark: serial vs worker-pool gradient engine.

Measures epoch wall-clock and samples/sec of the training loop on the
benchmark cities, in several configurations:

* ``serial`` — this tree's single-process loop (tape-ordered backward,
  persistent grad buffers, fused Adam, dataset window cache);
* ``workers=N`` for each N in ``--workers-sweep`` — the fork-based
  :class:`GradientWorkerPool` splitting each batch across N processes,
  over the transport selected by ``--transport`` (``shm`` = persistent
  shared-memory arenas + epoch-granularity schedule, ``pipe`` = the
  legacy per-batch pickle protocol, ``auto`` = shm where available);
* ``seed baseline`` (optional, ``--baseline-ref``) — the serial loop of
  a previous commit, run from a temporary ``git worktree`` so the two
  trees are measured by the same harness on the same data.

Every measurement runs in a fresh subprocess (cold caches, no
cross-contamination between modes), drives ``Trainer._run_epoch``
directly under the trainer's float64 pin, and reports the per-epoch
training losses so the parent can assert serial/parallel parity
(< 1e-9, the guarantee documented in ``core/parallel.py``). Worker
configurations also report the pool's per-phase breakdown
(serialize / compute-wait / reduce seconds per epoch), which is where
a transport's overhead is visible regardless of core count.

Results go to ``BENCH_training.json`` at the repo root, including both
``cpu_count`` and ``affinity_cpus`` (``len(os.sched_getaffinity(0))``)
— process parallelism cannot beat serial on a single-core or
single-affinity container, so speedups must be read against the
recorded core counts.

Usage::

    PYTHONPATH=src python benchmarks/bench_training.py              # full run
    PYTHONPATH=src python benchmarks/bench_training.py --smoke      # CI gate
    PYTHONPATH=src python benchmarks/bench_training.py --smoke --transport=pipe
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_training.json"
PARITY_TOLERANCE = 1e-9
_CHILD_MARKER = "RESULT_JSON:"

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402


# ----------------------------------------------------------------------
# Child mode: one measurement in one process
# ----------------------------------------------------------------------
def _get_dataset(city: str):
    if city == "tiny":
        from repro import SyntheticCityConfig, generate_city

        return generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=7)
    if city == "chicago_571":
        # The paper-scale city (571 Divvy stations), matching
        # benchmarks/bench_scale.py's generation exactly.
        from repro import SyntheticCityConfig, generate_city

        return generate_city(SyntheticCityConfig.chicago_571(days=6), seed=2022)
    from _harness import get_dataset

    return get_dataset(city)


def _build_trainer(dataset, batch_size: int, workers: int, transport: str):
    from _harness import BENCH_SEED, STGNN_SELECTED
    from repro import STGNNDJD, Trainer, TrainingConfig

    model = STGNNDJD.from_dataset(dataset, seed=BENCH_SEED, **STGNN_SELECTED)
    kwargs = dict(epochs=1, batch_size=batch_size, seed=BENCH_SEED)
    try:
        config = TrainingConfig(workers=workers, transport=transport, **kwargs)
    except TypeError:
        # Older tree: TrainingConfig predates the transport (or even the
        # workers) field. Baselines only run serially, so that's fine.
        try:
            config = TrainingConfig(workers=workers, **kwargs)
        except TypeError:
            if workers:
                raise
            config = TrainingConfig(**kwargs)
    return Trainer(model, dataset, config)


def _run_child(city: str, workers: int, epochs: int, warmup: int,
               batch_size: int, transport: str) -> None:
    """Measure one (city, workers, transport) config; print a JSON line."""
    from repro import backend

    dataset = _get_dataset(city)
    trainer = _build_trainer(dataset, batch_size, workers, transport)
    train_idx, _, _ = dataset.split_indices()

    pool = None
    if workers:
        from repro.core.parallel import GradientWorkerPool

        try:
            pool = GradientWorkerPool.create(trainer, workers,
                                             transport=transport)
        except TypeError:  # older tree without the transport kwarg
            pool = GradientWorkerPool.create(trainer, workers)

    def run_epoch() -> float:
        if pool is not None:
            return trainer._run_epoch(train_idx, pool)
        return trainer._run_epoch(train_idx)

    try:
        # Same float64 pin as Trainer.fit; epochs timed without the
        # validation pass so the number is pure training throughput.
        with backend.dtype_scope(np.float64):
            for _ in range(warmup):
                run_epoch()
            phase_base = dict(pool.phase_seconds) if pool is not None else None
            start = time.perf_counter()
            losses = [run_epoch() for _ in range(epochs)]
            elapsed = time.perf_counter() - start
            phases = None
            if pool is not None and phase_base is not None:
                phases = {
                    key: (pool.phase_seconds[key] - phase_base[key]) / epochs
                    for key in phase_base
                }
            # Untimed profiled pass: the epoch's op dispatches (per-op
            # seconds/bytes, fused coverage) for the run report. Skipped
            # under the pool — the profiler only sees this process.
            profile_dict = None
            if pool is None:
                from _harness import op_profile

                _, profile_dict = op_profile(run_epoch)
    finally:
        if pool is not None:
            pool.close()

    result = {
        "train_samples": int(len(train_idx)),
        "epochs": epochs,
        "epoch_seconds": elapsed / epochs,
        "samples_per_sec": len(train_idx) * epochs / elapsed,
        "train_loss": losses,
        "pool_active": pool is not None,
        "transport": getattr(pool, "transport", None),
        "phase_seconds_per_epoch": phases,
        "op_profile": profile_dict,
    }
    print(_CHILD_MARKER + json.dumps(result), flush=True)


# ----------------------------------------------------------------------
# Parent mode: orchestrate subprocesses, compare, persist
# ----------------------------------------------------------------------
def _measure(
    city: str,
    workers: int,
    epochs: int,
    warmup: int,
    batch_size: int,
    transport: str = "auto",
    pythonpath: str | None = None,
) -> dict:
    cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--_child",
        f"--city={city}",
        f"--workers={workers}",
        f"--epochs={epochs}",
        f"--warmup={warmup}",
        f"--batch-size={batch_size}",
        f"--transport={transport}",
    ]
    env = dict(os.environ)
    if pythonpath is not None:
        env["PYTHONPATH"] = pythonpath
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=str(REPO_ROOT)
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement failed ({city}, workers={workers}):\n{proc.stderr}"
        )
    for line in proc.stdout.splitlines():
        if line.startswith(_CHILD_MARKER):
            return json.loads(line[len(_CHILD_MARKER):])
    raise RuntimeError(f"no result marker in child output:\n{proc.stdout}")


def _baseline_pythonpath(ref: str, stack: list) -> tuple[str, str]:
    """Check ``ref`` out into a temp worktree; return (src path, sha)."""
    sha = subprocess.run(
        ["git", "rev-parse", ref],
        capture_output=True, text=True, check=True, cwd=str(REPO_ROOT),
    ).stdout.strip()
    tmp = tempfile.mkdtemp(prefix="bench-seed-")
    worktree = Path(tmp) / "seed"
    subprocess.run(
        ["git", "worktree", "add", "--detach", str(worktree), sha],
        capture_output=True, text=True, check=True, cwd=str(REPO_ROOT),
    )

    def cleanup() -> None:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(worktree)],
            capture_output=True, cwd=str(REPO_ROOT),
        )

    stack.append(cleanup)
    return str(worktree / "src"), sha


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: 1 tiny epoch, serial + 2 workers, no baseline")
    parser.add_argument("--workers-sweep", default="1,2,4",
                        help="comma-separated worker counts to measure")
    parser.add_argument("--transport", default="auto",
                        choices=("auto", "shm", "pipe"),
                        help="gradient transport for the worker configurations")
    parser.add_argument("--epochs", type=int, default=3,
                        help="timed epochs per configuration")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup epochs per configuration")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref measured as the seed baseline "
                             "('' disables the baseline run)")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    parser.add_argument("--city", action="append", dest="cities",
                        help="benchmark city (repeatable; default: "
                             "Chicago, Los Angeles, chicago_571)")
    parser.add_argument("--_child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--workers", type=int, default=0, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args._child:
        _run_child(args.cities[0], args.workers, args.epochs, args.warmup,
                   args.batch_size, args.transport)
        return 0

    if args.smoke:
        cities = ["tiny"]
        args.epochs, args.warmup, args.batch_size = 1, 0, 8
        sweep = [2]
        args.baseline_ref = ""
    else:
        cities = args.cities or ["Chicago", "Los Angeles", "chicago_571"]
        sweep = [int(w) for w in args.workers_sweep.split(",") if w.strip()]

    cleanups: list = []
    baseline_src = baseline_sha = None
    if args.baseline_ref:
        try:
            baseline_src, baseline_sha = _baseline_pythonpath(
                args.baseline_ref, cleanups
            )
        except subprocess.CalledProcessError as exc:
            print(f"baseline unavailable ({exc.stderr.strip()}); skipping",
                  file=sys.stderr)

    affinity = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None
    )
    results = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "affinity_cpus": affinity,
        "transport": args.transport,
        "workers_sweep": sweep,
        "epochs": args.epochs,
        "batch_size": args.batch_size,
        "baseline_ref": baseline_sha,
        "parity_tolerance": PARITY_TOLERANCE,
        "cities": {},
    }
    failures = []
    try:
        for city in cities:
            print(f"== {city}: serial ==", flush=True)
            serial = _measure(city, 0, args.epochs, args.warmup, args.batch_size)
            print(f"   {serial['samples_per_sec']:.1f} samples/s, "
                  f"{serial['epoch_seconds']:.2f} s/epoch")
            entry = {"serial": serial, "speedup_vs_serial": {},
                     "parity_max_abs_diff": 0.0}

            for workers in sweep:
                print(f"== {city}: workers={workers} "
                      f"(transport={args.transport}) ==", flush=True)
                parallel = _measure(city, workers, args.epochs, args.warmup,
                                    args.batch_size, transport=args.transport)
                speedup = serial["epoch_seconds"] / parallel["epoch_seconds"]
                print(f"   {parallel['samples_per_sec']:.1f} samples/s, "
                      f"{parallel['epoch_seconds']:.2f} s/epoch "
                      f"({speedup:.2f}x serial, "
                      f"transport={parallel['transport']})")
                if parallel.get("phase_seconds_per_epoch"):
                    phases = parallel["phase_seconds_per_epoch"]
                    print("   phases/epoch: " + ", ".join(
                        f"{key}={value:.3f}s" for key, value in phases.items()
                    ))

                parity = max(
                    abs(a - b)
                    for a, b in zip(serial["train_loss"], parallel["train_loss"])
                )
                entry[f"workers{workers}"] = parallel
                entry["speedup_vs_serial"][str(workers)] = speedup
                entry["parity_max_abs_diff"] = max(
                    entry["parity_max_abs_diff"], parity
                )
                if parallel["pool_active"] and parity >= PARITY_TOLERANCE:
                    failures.append(
                        f"{city} workers={workers}: serial/parallel loss "
                        f"divergence {parity:.3e} >= {PARITY_TOLERANCE}"
                    )
                print(f"   parity: max |Δloss| = {parity:.3e}")

            if baseline_src is not None:
                print(f"== {city}: seed baseline ({baseline_sha[:12]}) ==",
                      flush=True)
                baseline = _measure(city, 0, args.epochs, args.warmup,
                                    args.batch_size, pythonpath=baseline_src)
                entry["seed_baseline"] = baseline
                entry["speedup_serial_vs_seed"] = (
                    baseline["epoch_seconds"] / serial["epoch_seconds"]
                )
                print(f"   {baseline['samples_per_sec']:.1f} samples/s; "
                      f"serial speedup vs seed: "
                      f"{entry['speedup_serial_vs_seed']:.2f}x")
            results["cities"][city] = entry
    finally:
        for cleanup in cleanups:
            cleanup()

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 8 — impact of the FCG layer count on RMSE/MAE.

Sweeps FCG depth 1..5. Reproduction target: a shallow optimum (the
paper finds 2) — stacking enlarges the receptive field up to a point,
after which extra parameters hurt.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_FIG8_RMSE,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_series_table,
)

LAYERS = [1, 2, 3, 4, 5]

_results_cache = {}


def layer_results():
    if not _results_cache:
        for k in LAYERS:
            _results_cache[k] = tuple(
                evaluate("STGNN-DJD", city, fcg_layers=k) for city in DATASET_NAMES
            )
    return _results_cache


def test_fig8_fcg_layers(benchmark, capsys):
    results = layer_results()
    with capsys.disabled():
        print_series_table(
            "Fig. 8: RMSE/MAE vs FCG layers (measured) vs paper",
            "layers", LAYERS,
            {
                "Chicago RMSE": [results[k][0].rmse for k in LAYERS],
                "LA RMSE": [results[k][1].rmse for k in LAYERS],
                "Chicago MAE": [results[k][0].mae for k in LAYERS],
                "LA MAE": [results[k][1].mae for k in LAYERS],
            },
            {
                "Chicago RMSE": [PAPER_FIG8_RMSE[k][0] for k in LAYERS],
                "LA RMSE": [PAPER_FIG8_RMSE[k][1] for k in LAYERS],
            },
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        rmses = {k: results[k][city_idx].rmse for k in LAYERS}
        # Shape: shallow depths are competitive — the deepest stack is
        # never better than the best shallow (<=4) depth by any margin.
        shallow_best = min(rmses[k] for k in LAYERS[:-1])
        assert shallow_best <= rmses[5] * 1.05, (
            f"{city}: a shallow FCG ({shallow_best:.3f}) should match or "
            f"beat depth-5 ({rmses[5]:.3f})"
        )

    trainer = get_stgnn_trainer("Los Angeles", fcg_layers=1)
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

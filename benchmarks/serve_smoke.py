"""Serving smoke gate: the HTTP surface end to end, with parity checks.

Boots a :class:`repro.serve.ServingHTTPServer` on a loopback port and
drives the full online lifecycle over real HTTP:

* ``/healthz`` answers and reports a warmed-up store;
* ``/ingest`` accepts a batch of live trips;
* ``/predict`` answers — and the forecast matches, bit for bit, a
  reference computation on a mirror :class:`FlowStateStore` fed the
  same events directly (no drift between the HTTP path and the
  library path);
* ``/metrics`` exposes the serve counters in Prometheus text format;
* ``/admin/reload`` hot-swaps a second checkpoint, after which
  ``/predict`` matches the mirror forecast under the *new* weights.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Exit status 0 on success; any non-2xx answer or parity drift raises.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import STGNNDJD, SyntheticCityConfig, generate_city
from repro.core import load_stgnn, save_checkpoint
from repro.obs import enable_metrics
from repro.serve import FlowStateStore, PredictionService, make_server
from repro.tensor import inference_mode

SEED = 2022


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30.0) as response:
        body = response.read()
        if path == "/metrics":
            return response.status, body.decode("utf-8")
        return response.status, json.loads(body)


def _post(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _mirror_forecast(checkpoint: Path, store: FlowStateStore, dataset):
    """Reference forecast: library path, no service, no HTTP."""
    model = load_stgnn(checkpoint)
    with inference_mode():
        demand, supply = model(store.sample())
    return (
        dataset.demand_normalizer.inverse_transform(demand.data),
        dataset.supply_normalizer.inverse_transform(supply.data),
    )


def run_smoke() -> None:
    dataset = generate_city(SyntheticCityConfig.tiny(), seed=SEED)
    slot_seconds = dataset.config.slot_seconds

    with tempfile.TemporaryDirectory() as tmp:
        first = Path(tmp) / "first.npz"
        second = Path(tmp) / "second.npz"
        save_checkpoint(STGNNDJD.from_dataset(dataset, seed=SEED), first)
        save_checkpoint(STGNNDJD.from_dataset(dataset, seed=SEED + 1), second)

        service = PredictionService.from_checkpoint(
            first, FlowStateStore.from_dataset(dataset),
            dataset.demand_normalizer, dataset.supply_normalizer,
        )
        # The mirror store receives the same events through the library
        # API; any divergence from the HTTP answers is a parity failure.
        mirror = FlowStateStore.from_dataset(dataset)

        enable_metrics()
        http_server = make_server(service, port=0)
        host, port = http_server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        service.start()
        try:
            status, health = _get(base, "/healthz")
            assert status == 200 and health["status"] == "ok", health
            assert health["warmed_up"] is True, health
            print(f"[smoke] /healthz ok (frontier={health['frontier']})")

            now = service.store.frontier * slot_seconds
            trips = [
                {"origin": 0, "destination": 5,
                 "start_time": now + 30.0, "end_time": now + 400.0},
                {"origin": 3, "destination": 1,
                 "start_time": now + 45.0, "end_time": now + 2 * slot_seconds},
                {"origin": 6, "destination": 0,
                 "start_time": now + 90.0, "end_time": now + 600.0},
            ]
            status, body = _post(base, "/ingest", {"trips": trips})
            assert status == 200 and body["accepted"] == len(trips), body
            for trip in trips:
                mirror.ingest_event(trip["origin"], trip["destination"],
                                    trip["start_time"], trip["end_time"])
            print(f"[smoke] /ingest ok ({body['accepted']} trips)")

            status, forecast = _get(base, "/predict")
            assert status == 200, forecast
            demand, supply = _mirror_forecast(first, mirror, dataset)
            assert np.array_equal(np.asarray(forecast["demand"]), demand), \
                "HTTP /predict demand drifted from the library path"
            assert np.array_equal(np.asarray(forecast["supply"]), supply), \
                "HTTP /predict supply drifted from the library path"
            print(f"[smoke] /predict ok, bitwise parity with the library "
                  f"path (slot {forecast['slot']})")

            status, text = _get(base, "/metrics")
            assert status == 200, text
            for metric in ("serve_requests_total", "serve_ingest_events_total"):
                assert metric in text, f"{metric} missing from /metrics"
            print("[smoke] /metrics ok (serve counters exposed)")

            status, body = _post(base, "/admin/reload",
                                 {"checkpoint": str(second)})
            assert status == 200 and body["reloaded"] is True, body
            status, reloaded = _get(base, "/predict")
            assert status == 200, reloaded
            demand, supply = _mirror_forecast(second, mirror, dataset)
            assert np.array_equal(np.asarray(reloaded["demand"]), demand), \
                "post-reload /predict does not match the new weights"
            assert not np.array_equal(np.asarray(reloaded["demand"]),
                                      np.asarray(forecast["demand"])), \
                "reload did not change the served model"
            print(f"[smoke] /admin/reload ok "
                  f"(model_version={body['model_version']})")
        finally:
            service.stop()
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5.0)
            enable_metrics(False)
    print("[smoke] serving smoke passed")


if __name__ == "__main__":
    run_smoke()

"""Sec. VII-I — prediction efficiency.

The paper reports mean online prediction times per slot (all stations)
of 0.038 s (Chicago) and 0.014 s (Los Angeles) on an RTX 2080 Ti, and
argues both sit far below the 15-minute slot duration. We measure the
same quantity on this substrate (CPU, numpy autograd). Reproduction
targets: (1) the larger city is slower, (2) both are orders of magnitude
below the slot duration, i.e. deployable online.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_EFFICIENCY,
    get_dataset,
    get_stgnn_trainer,
)
from repro.utils import Timer

_timing_cache = {}


def measured_latency(city: str, repeats: int = 20) -> float:
    if city not in _timing_cache:
        trainer = get_stgnn_trainer(city)
        dataset = get_dataset(city)
        _, _, test_idx = dataset.split_indices()
        timer = Timer()
        for i in range(repeats):
            t = int(test_idx[i % len(test_idx)])
            with timer:
                trainer.predict(t)
        _timing_cache[city] = timer.mean
    return _timing_cache[city]


@pytest.mark.parametrize("city", DATASET_NAMES)
def test_efficiency(city, benchmark, capsys):
    latency = measured_latency(city)
    dataset = get_dataset(city)
    slot_seconds = dataset.config.slot_seconds

    with capsys.disabled():
        print(
            f"\nSec. VII-I efficiency — {city}: {latency * 1000:.1f} ms/slot "
            f"(paper: {PAPER_EFFICIENCY[city] * 1000:.0f} ms on GPU); "
            f"slot duration {slot_seconds:.0f} s"
        )

    # Shape: online-deployable — far below the slot duration. (The
    # paper's second observation, "the bigger city is slower", is not
    # asserted: at this reproduction's model sizes per-call latency is
    # dominated by constant Python dispatch overhead, so the city-size
    # effect is within measurement noise.)
    assert latency < slot_seconds / 100.0

    trainer = get_stgnn_trainer(city)
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

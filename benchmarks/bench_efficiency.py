"""Sec. VII-I — prediction efficiency, per compute mode.

The paper reports mean online prediction times per slot (all stations)
of 0.038 s (Chicago) and 0.014 s (Los Angeles) on an RTX 2080 Ti, and
argues both sit far below the 15-minute slot duration. We measure the
same quantity on this substrate (CPU, numpy autograd), for three
serving modes:

* ``recorded_float64`` — forward with the autograd graph recorded: per
  op a backward closure and parent tuple are allocated. This is the
  substrate's training-path cost and the stand-in for the pre-backend
  serving path, which paid the same per-op allocations under ``no_grad``.
* ``inference_float64`` — the forward-only fast path
  (``inference_mode`` + buffer pool): no closures, no parent tuples,
  pooled scratch arrays; double precision.
* ``inference_float32`` — the fast path with the model cast to single
  precision (``model.to(np.float32)`` under a float32 dtype scope).

Results are persisted to ``BENCH_efficiency.json`` at the repo root —
latency per slot, per city, per mode — and the fast float32 path must
be at least 1.5x faster than the recorded-graph path.

Reproduction targets: (1) all modes are orders of magnitude below the
slot duration, i.e. deployable online; (2) the forward-only float32
path clears the 1.5x speedup bar over the recorded-graph path.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_EFFICIENCY,
    get_dataset,
    get_stgnn_trainer,
    op_profile,
)
from repro import backend
from repro.utils import Timer

WARMUP = 3
REPEATS = 30
SPEEDUP_TARGET = 1.5
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_efficiency.json"

_timing_cache: dict[str, dict[str, float]] = {}
_results: dict[str, dict] = {}


def _recorded_predict(trainer, t: int):
    """One prediction on the graph-recording path (seed-equivalent).

    Mirrors ``Trainer.predict`` — eval-mode forward plus denormalisation
    — but with grad recording left on, so every op allocates its backward
    closure and parent tuple exactly as the pre-backend serving path did.
    """
    trainer.model.eval()
    demand_pred, supply_pred = trainer.model(trainer.dataset.sample(t))
    demand = trainer.dataset.demand_normalizer.inverse_transform(demand_pred.data)
    supply = trainer.dataset.supply_normalizer.inverse_transform(supply_pred.data)
    trainer.model.train()
    return demand, supply


def _time_calls(fn, indices, repeats: int = REPEATS) -> float:
    for i in range(WARMUP):
        fn(int(indices[i % len(indices)]))
    timer = Timer()
    for i in range(repeats):
        t = int(indices[i % len(indices)])
        with timer:
            fn(t)
    return timer.mean


def measured_latencies(city: str) -> dict[str, float]:
    """Mean per-slot prediction latency for each serving mode."""
    if city in _timing_cache:
        return _timing_cache[city]
    trainer = get_stgnn_trainer(city)
    dataset = get_dataset(city)
    _, _, test_idx = dataset.split_indices()

    latencies = {
        "recorded_float64": _time_calls(
            lambda t: _recorded_predict(trainer, t), test_idx
        ),
        "inference_float64": _time_calls(trainer.predict, test_idx),
    }

    # float32 serving: cast the model down under a float32 dtype scope,
    # then restore the exact float64 weights (the float64->float32->
    # float64 round trip truncates mantissas, so reload the snapshot).
    snapshot = trainer.model.state_dict()
    trainer.model.to(np.float32)
    try:
        with backend.dtype_scope(np.float32):
            latencies["inference_float32"] = _time_calls(trainer.predict, test_idx)
    finally:
        trainer.model.to(np.float64)
        trainer.model.load_state_dict(snapshot)

    _timing_cache[city] = latencies
    return latencies


def _persist(city: str, latencies: dict[str, float], speedup: float) -> None:
    dataset = get_dataset(city)
    # Untimed profiled pass: where one inference-mode prediction spends
    # its op dispatches (per-op seconds/bytes, fused-coverage ratio).
    trainer = get_stgnn_trainer(city)
    t = int(dataset.split_indices()[2][0])
    _, profile_dict = op_profile(trainer.predict, t)
    _results[city] = {
        "op_profile": profile_dict,
        "latency_seconds_per_slot": latencies,
        "speedup_float32_vs_recorded": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "paper_gpu_latency_seconds": PAPER_EFFICIENCY[city],
        "slot_seconds": dataset.config.slot_seconds,
        "num_stations": dataset.num_stations,
        "repeats": REPEATS,
    }
    RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")


@pytest.mark.parametrize("city", DATASET_NAMES)
def test_efficiency(city, benchmark, capsys):
    latencies = measured_latencies(city)
    dataset = get_dataset(city)
    slot_seconds = dataset.config.slot_seconds
    speedup = latencies["recorded_float64"] / latencies["inference_float32"]
    _persist(city, latencies, speedup)

    with capsys.disabled():
        print(
            f"\nSec. VII-I efficiency — {city}: "
            f"recorded {latencies['recorded_float64'] * 1000:.1f} ms, "
            f"inference f64 {latencies['inference_float64'] * 1000:.1f} ms, "
            f"inference f32 {latencies['inference_float32'] * 1000:.1f} ms/slot "
            f"({speedup:.2f}x vs recorded; paper: "
            f"{PAPER_EFFICIENCY[city] * 1000:.0f} ms on GPU); "
            f"slot duration {slot_seconds:.0f} s"
        )

    # Shape: online-deployable — far below the slot duration. (The
    # paper's second observation, "the bigger city is slower", is not
    # asserted: at this reproduction's model sizes per-call latency is
    # dominated by constant Python dispatch overhead, so the city-size
    # effect is within measurement noise.)
    assert latencies["inference_float64"] < slot_seconds / 100.0
    # The forward-only float32 path must clear the refactor's speedup bar.
    assert speedup >= SPEEDUP_TARGET

    trainer = get_stgnn_trainer(city)
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

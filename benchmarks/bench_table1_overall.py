"""Table I — overall RMSE/MAE of all 12 methods on both cities.

Regenerates the paper's headline comparison: classical time-series
methods (HA, ARIMA, XGBoost/GBRT), pure-temporal deep models (MLP, RNN,
LSTM), graph deep models (GCNN, MGNN, ASTGCN, STSGCN, GBike), and
STGNN-DJD. The reproduction target is the *shape*: graph models beat
temporal-only models, and STGNN-DJD is the best (or tied-best) overall.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_TABLE1,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_comparison_table,
)

METHODS = list(PAPER_TABLE1)

_results_cache = {}


def table1_results():
    if not _results_cache:
        for method in METHODS:
            _results_cache[method] = tuple(
                evaluate(method, city) for city in DATASET_NAMES
            )
    return _results_cache


def test_table1(benchmark, capsys):
    results = table1_results()
    with capsys.disabled():
        rows = [(m, results[m][0], results[m][1]) for m in METHODS]
        print_comparison_table(
            "Table I: comparison with SOTA (measured vs paper)", rows, PAPER_TABLE1
        )

    rmse = {m: (results[m][0].rmse, results[m][1].rmse) for m in METHODS}
    for city_idx, city in enumerate(DATASET_NAMES):
        ours = rmse["STGNN-DJD"][city_idx]
        # Shape check 1: STGNN-DJD beats the classical time-series
        # methods (the paper's largest margins).
        for method in ("HA", "ARIMA"):
            assert ours < rmse[method][city_idx], (
                f"{city}: STGNN-DJD ({ours:.3f}) should beat {method} "
                f"({rmse[method][city_idx]:.3f})"
            )
        # Shape check 2: top tier — within 20% of the best method and
        # better than the median baseline. (At this reproduction's data
        # scale the exact #1 slot is noisy; see EXPERIMENTS.md.)
        baselines = sorted(rmse[m][city_idx] for m in METHODS if m != "STGNN-DJD")
        best = baselines[0]
        median = baselines[len(baselines) // 2]
        assert ours <= best * 1.20, (
            f"{city}: STGNN-DJD ({ours:.3f}) should be within 20% of the "
            f"best method ({best:.3f})"
        )
        assert ours < median, (
            f"{city}: STGNN-DJD ({ours:.3f}) should beat the median "
            f"baseline ({median:.3f})"
        )

    # Benchmark: one online prediction step of the full model.
    trainer = get_stgnn_trainer("Chicago")
    dataset = get_dataset("Chicago")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

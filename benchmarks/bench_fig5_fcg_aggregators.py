"""Figure 5 — aggregator study on the flow-convoluted graph.

Replaces the flow-based aggregator (Eq. 14) with the generic mean and
max (GraphSAGE-style) aggregators. Reproduction target: the flow-based
aggregator is the best of the three on both cities, because it uses the
flow magnitudes the generic poolers discard.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_FIG5,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_series_table,
)

AGGREGATORS = {"Mean": "mean", "Max": "max", "Flow-based": "flow"}

_results_cache = {}


def aggregator_results():
    if not _results_cache:
        for label, kind in AGGREGATORS.items():
            _results_cache[label] = tuple(
                evaluate("STGNN-DJD", city, fcg_aggregator=kind)
                for city in DATASET_NAMES
            )
    return _results_cache


def test_fig5_fcg_aggregators(benchmark, capsys):
    results = aggregator_results()
    with capsys.disabled():
        print_series_table(
            "Fig. 5: FCG aggregators, RMSE (measured) vs paper",
            "aggregator", list(AGGREGATORS),
            {
                "Chicago": [results[a][0].rmse for a in AGGREGATORS],
                "Los Angeles": [results[a][1].rmse for a in AGGREGATORS],
                "Chicago MAE": [results[a][0].mae for a in AGGREGATORS],
                "LA MAE": [results[a][1].mae for a in AGGREGATORS],
            },
            {
                "Chicago": [PAPER_FIG5[a][0] for a in AGGREGATORS],
                "Los Angeles": [PAPER_FIG5[a][1] for a in AGGREGATORS],
            },
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        flow = results["Flow-based"][city_idx].rmse
        others = min(results["Mean"][city_idx].rmse, results["Max"][city_idx].rmse)
        assert flow <= others * 1.10, (
            f"{city}: flow aggregator ({flow:.3f}) should beat mean/max ({others:.3f})"
        )

    trainer = get_stgnn_trainer("Los Angeles", fcg_aggregator="mean")
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

"""Paper-scale scaling benchmark: latency and memory vs station count.

The paper's Chicago dataset has 571 Divvy stations; the dense graph
stack is O(n^2) per layer in both memory and FLOPs, so this benchmark
charts how the substrate behaves as the city grows to that size:

* forward latency (inference mode, warm, median over repeats);
* training-epoch latency (one full epoch over the train split);
* a served ``/predict`` round trip through :class:`PredictionService`;
* peak RSS via ``resource.getrusage`` — measured in a *fresh subprocess
  per size* (the bench_training pattern), so each number is a true
  high-water mark, not contaminated by previously benchmarked sizes;
* at the largest size, the dense-vs-sparse forward deviation — the
  documented tolerance of genuine top-k sparsity (full coverage is
  bitwise and pinned by tests/golden instead).

Scaling gate (asserted by the parent): peak RSS at n=571 must stay below
4x the n=300 peak — dense-quadratic growth would put the ratio at
(571/300)^2 ~= 3.62 *per quadratic term*, plus the quadratic dense data
tensors; the sparse graph stack keeps the model-side growth near-linear
so the total clears the bar.

Results go to ``BENCH_scale.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py           # full run
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_scale.json"
_CHILD_MARKER = "RESULT_JSON:"

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

SIZES = (24, 100, 300, 571)
DAYS = 6  # 288 half-hour slots; min_history 144 leaves a real train split
FORWARD_REPEATS = 5
RSS_RATIO_LIMIT = 4.0  # peak_rss(571) must stay under 4x peak_rss(300)
MODEL_KWARGS = dict(fcg_layers=1, pcg_layers=1, num_heads=2, dropout=0.0)


def _city_config(n: int, days: int):
    """The chicago_571 preset, rescaled to ``n`` stations.

    Per-station trip volume (30 trips/station/day — real Divvy density)
    and all temporal settings are held fixed so the only thing that
    varies across sizes is the station count.
    """
    from repro import SyntheticCityConfig

    config = SyntheticCityConfig.chicago_571(days=days)
    if n == config.num_stations:
        return config
    return dataclasses.replace(
        config,
        name=f"chicago-{n}",
        num_stations=n,
        trips_per_day=30.0 * n,
        school_pairs=min(4, n // 8),
    )


def _peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


# ----------------------------------------------------------------------
# Child mode: one station count in one fresh process
# ----------------------------------------------------------------------
def _run_child(n: int, days: int, graph_mode: str, parity: str) -> None:
    from _harness import op_profile
    from repro import STGNNDJD, Trainer, TrainingConfig, generate_city
    from repro import backend
    from repro.serve import PredictionService, ServiceConfig
    from repro.tensor import inference_mode

    start = time.perf_counter()
    dataset = generate_city(_city_config(n, days), seed=2022)
    dataset_seconds = time.perf_counter() - start

    model = STGNNDJD.from_dataset(
        dataset, seed=3, graph_mode=graph_mode, **MODEL_KWARGS
    )
    representation = (
        "sparse" if model.graph_sparsity.use_sparse(n) else "dense"
    )

    model.eval()
    t = int(dataset.min_history)
    with inference_mode():
        model(dataset.sample(t))  # warm (buffer pool, caches)
        timings = []
        for i in range(FORWARD_REPEATS):
            tick = time.perf_counter()
            model(dataset.sample(t + i))
            timings.append(time.perf_counter() - tick)
    forward_seconds = float(np.median(timings))

    with inference_mode():
        _, profile_dict = op_profile(model, dataset.sample(t))

    # One served /predict round trip (the online path must work at
    # every size, chicago_571 included).
    # cache=False so the timed request pays a real forward rather than
    # hitting the per-slot forecast cache the warm request primed.
    with PredictionService.for_dataset(
        model, dataset, config=ServiceConfig(cache=False)
    ) as service:
        service.predict(timeout=600.0)  # warm
        tick = time.perf_counter()
        service.predict(timeout=600.0)
        serve_seconds = time.perf_counter() - tick

    # One full training epoch, under the trainer's float64 pin.
    model.train()
    train_idx = dataset.split_indices()[0]
    trainer = Trainer(
        model, dataset, TrainingConfig(epochs=1, batch_size=8, seed=5)
    )
    with backend.dtype_scope(np.float64):
        tick = time.perf_counter()
        trainer._run_epoch(train_idx)
        epoch_seconds = time.perf_counter() - tick

    result = {
        "n": n,
        "days": days,
        "representation": representation,
        "graph_top_k": model.config.graph_top_k,
        "dataset_seconds": dataset_seconds,
        "forward_seconds": forward_seconds,
        "serve_predict_seconds": serve_seconds,
        "epoch_seconds": epoch_seconds,
        "train_samples": int(len(train_idx)),
        "peak_rss_bytes": _peak_rss_bytes(),
        "op_profile": profile_dict,
    }

    if parity == "tolerance":
        # Dense twin, same seed: the deviation genuine top-k sparsity
        # introduces at this size (forward, inference mode).
        dense = STGNNDJD.from_dataset(
            dataset, seed=3, graph_mode="dense", **MODEL_KWARGS
        )
        dense.eval()
        with inference_mode():
            demand_s, supply_s = model(dataset.sample(t))
            demand_d, supply_d = dense(dataset.sample(t))
        diff = max(
            float(np.abs(demand_s.data - demand_d.data).max()),
            float(np.abs(supply_s.data - supply_d.data).max()),
        )
        scale = max(
            float(np.abs(demand_d.data).max()), float(np.abs(supply_d.data).max())
        )
        # Untrained models are the worst case for this comparison: with
        # random (unconcentrated) features the top-k rows keep only
        # ~k/n of the dense weight mass before renormalising, so the
        # deviation here is an upper bound, not typical trained-model
        # behaviour (see DESIGN.md section 8b).
        result["sparse_vs_dense"] = {
            "max_abs_diff": diff,
            "dense_output_scale": scale,
            "kept_mass_fraction_approx": model.config.graph_top_k / n,
        }
    elif parity == "bitwise":
        # Full coverage (top_k >= n) must reproduce the dense forward
        # bit for bit — the smoke-mode contract check.
        full = STGNNDJD.from_dataset(
            dataset, seed=3, graph_mode="sparse", graph_top_k=n, **MODEL_KWARGS
        )
        dense = STGNNDJD.from_dataset(
            dataset, seed=3, graph_mode="dense", **MODEL_KWARGS
        )
        full.eval()
        dense.eval()
        with inference_mode():
            demand_s, supply_s = full(dataset.sample(t))
            demand_d, supply_d = dense(dataset.sample(t))
        np.testing.assert_array_equal(demand_s.data, demand_d.data, strict=True)
        np.testing.assert_array_equal(supply_s.data, supply_d.data, strict=True)
        result["sparse_vs_dense"] = {"max_abs_diff": 0.0, "bitwise": True}

    print(_CHILD_MARKER + json.dumps(result), flush=True)


# ----------------------------------------------------------------------
# Parent mode
# ----------------------------------------------------------------------
def _measure(n: int, days: int, graph_mode: str, parity: str) -> dict:
    cmd = [
        sys.executable, str(Path(__file__).resolve()), "--_child",
        f"--n={n}", f"--days={days}", f"--graph-mode={graph_mode}",
        f"--parity={parity}",
    ]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=dict(os.environ),
        cwd=str(REPO_ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(f"measurement failed (n={n}):\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith(_CHILD_MARKER):
            return json.loads(line[len(_CHILD_MARKER):])
    raise RuntimeError(f"no result marker in child output:\n{proc.stdout}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: n=24 only, plus the full-coverage "
                             "bitwise parity check")
    parser.add_argument("--days", type=int, default=DAYS)
    parser.add_argument("--graph-mode", default="auto",
                        choices=("auto", "dense", "sparse"))
    parser.add_argument("--parity", default="none", help=argparse.SUPPRESS)
    parser.add_argument("--n", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    parser.add_argument("--_child", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args._child:
        _run_child(args.n, args.days, args.graph_mode, args.parity)
        return 0

    if args.smoke:
        sizes, days = (24,), DAYS
    else:
        sizes, days = SIZES, args.days

    results = {
        "smoke": args.smoke,
        "graph_mode": args.graph_mode,
        "rss_ratio_limit": RSS_RATIO_LIMIT,
        "sizes": {},
    }
    for n in sizes:
        if args.smoke:
            parity = "bitwise"
        else:
            parity = "tolerance" if n == max(sizes) else "none"
        print(f"== n={n} ==", flush=True)
        entry = _measure(n, days, args.graph_mode, parity)
        results["sizes"][str(n)] = entry
        print(f"   {entry['representation']:<6} forward {entry['forward_seconds']*1e3:8.1f} ms  "
              f"epoch {entry['epoch_seconds']:7.1f} s  "
              f"serve {entry['serve_predict_seconds']*1e3:8.1f} ms  "
              f"peak RSS {entry['peak_rss_bytes']/1e9:5.2f} GB")
        if "sparse_vs_dense" in entry:
            print(f"   sparse vs dense: {entry['sparse_vs_dense']}")

    failures = []
    if {"300", "571"} <= results["sizes"].keys():
        ratio = (results["sizes"]["571"]["peak_rss_bytes"]
                 / results["sizes"]["300"]["peak_rss_bytes"])
        results["rss_ratio_571_vs_300"] = ratio
        print(f"\npeak RSS growth 300 -> 571: {ratio:.2f}x "
              f"(limit {RSS_RATIO_LIMIT}x)")
        if ratio >= RSS_RATIO_LIMIT:
            failures.append(
                f"peak RSS at n=571 is {ratio:.2f}x the n=300 peak "
                f"(>= {RSS_RATIO_LIMIT}x limit)"
            )

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

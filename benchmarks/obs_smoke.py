"""Observability smoke gate: instrumented training + traced serving.

Stage 1 runs a 2-epoch instrumented training on a tiny synthetic city,
then checks the full telemetry contract that `repro.obs` documents:

* the JSONL event stream validates against the event schema
  (``validate_event``) line by line;
* per-epoch losses in the event stream and in the persisted
  :class:`RunReport` match the returned :class:`TrainingHistory`
  exactly (bit-for-bit, not approximately);
* registry metrics made it into the report (sample counter, epoch
  span timers, buffer-pool stats);
* the ``python -m repro.obs.report`` CLI renders both the report and
  the raw event stream without error.

Stage 2 boots the HTTP serving stack with tracing and quality
monitoring armed and checks the request-tracing + quality contract:

* a ``/predict`` request carrying a W3C ``traceparent`` header comes
  back on the caller's trace, and the ``python -m repro.obs.trace``
  CLI reconstructs its complete timeline (HTTP handling, queue wait,
  batch assembly, forward, serialization) from the JSONL stream;
* ingesting trips past the forecast slot reconciles the captured
  forecast against the realized flows, and the rolling RMSE/MAE the
  ``/status`` endpoint reports matches an offline
  :mod:`repro.eval.metrics` recomputation on the same pairs to 1e-12.

Global telemetry state (registry enabled flag, active sink) must be
back to its defaults afterwards — instrumentation is strictly scoped
to the run.

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke.py [--out-dir DIR]

Exit status 0 on success; any contract violation raises. When
``--out-dir`` is given the run artifacts (``*.events.jsonl``,
``*.report.json``) are left there for upload; otherwise a temporary
directory is used and cleaned up.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))


EPOCHS = 2
RUN_ID = "obs-smoke"


def run_smoke(out_dir: Path) -> None:
    from repro import STGNNDJD, SyntheticCityConfig, Trainer, TrainingConfig, generate_city
    from repro.obs import (
        ObservabilityConfig,
        RunReport,
        active_sink,
        default_registry,
        read_events,
    )

    dataset = generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=7)
    model = STGNNDJD.from_dataset(dataset, seed=3)
    config = TrainingConfig(
        epochs=EPOCHS,
        batch_size=8,
        seed=0,
        metrics=ObservabilityConfig(out_dir=str(out_dir), run_id=RUN_ID),
    )
    print(f"== instrumented training: {EPOCHS} epochs on synthetic tiny city ==")
    history = Trainer(model, dataset, config).fit()

    events_path = out_dir / f"{RUN_ID}.events.jsonl"
    report_path = out_dir / f"{RUN_ID}.report.json"
    assert events_path.exists(), f"missing event stream {events_path}"
    assert report_path.exists(), f"missing run report {report_path}"

    # Schema validation happens inside read_events(validate=True): any
    # malformed line raises with its path:lineno.
    events = read_events(events_path, validate=True)
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "run_start" and kinds[-1] == "run_end", kinds
    assert kinds.count("epoch") == EPOCHS, kinds
    print(f"   {len(events)} events validated against schema")

    epoch_events = [e for e in events if e["kind"] == "epoch"]
    assert [e["data"]["train_loss"] for e in epoch_events] == history.train_loss
    assert [e["data"]["val_loss"] for e in epoch_events] == history.val_loss

    report = RunReport.load(report_path)
    assert [r.train_loss for r in report.epochs] == history.train_loss
    assert [r.val_loss for r in report.epochs] == history.val_loss
    assert report.metrics["trainer.samples"]["value"] > 0
    assert report.metrics["span.epoch.seconds"]["count"] == EPOCHS
    assert report.extra["buffer_pool"]["takes"] > 0
    print("   report/event losses match TrainingHistory exactly")

    assert not default_registry().enabled, "registry left enabled after fit"
    assert active_sink() is None, "event sink left installed after fit"

    # The report CLI must render both artifact kinds without error.
    for target in (report_path, events_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(target)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, f"report CLI failed on {target}:\n{proc.stderr}"
    print("   report CLI renders report + event stream")
    print(f"\n{proc.stdout}" if proc.stdout else "")


CLIENT_TRACEPARENT = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


def run_serving_smoke(out_dir: Path) -> None:
    import json
    import threading
    import urllib.request

    import numpy as np

    from repro import STGNNDJD, SyntheticCityConfig, generate_city
    from repro.eval import metrics as paper_metrics
    from repro.obs import JsonlExporter, active_sink, set_sink
    from repro.obs.quality import QualityConfig
    from repro.obs.trace import TraceConfig, enable_tracing, parse_traceparent
    from repro.serve import PredictionService, ServiceConfig, make_server

    print("\n== traced serving: HTTP requests -> trace CLI + quality ==")
    dataset = generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=7)
    model = STGNNDJD.from_dataset(dataset, seed=3)

    events_path = out_dir / "serve.events.jsonl"
    sink = JsonlExporter(events_path)
    prev_sink = set_sink(sink)
    prev_trace = enable_tracing(TraceConfig())
    service = PredictionService.for_dataset(
        model, dataset,
        config=ServiceConfig(quality=QualityConfig(window=64, min_samples=1)),
    )
    http_server = make_server(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    service.start()
    host, port = http_server.server_address[:2]
    base = f"http://{host}:{port}"

    def call(path, payload=None, traceparent=None):
        request = urllib.request.Request(
            base + path,
            data=None if payload is None else json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"} if payload else {},
        )
        if traceparent:
            request.add_header("traceparent", traceparent)
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return (json.loads(response.read()),
                    response.headers.get("traceparent"))

    try:
        body, echoed = call("/predict", traceparent=CLIENT_TRACEPARENT)
        client = parse_traceparent(CLIENT_TRACEPARENT)
        assert parse_traceparent(echoed).trace_id == client.trace_id, (
            "response traceparent left the caller's trace"
        )
        slot = body["slot"]
        pred_demand = np.asarray(body["demand"], dtype=np.float64)
        pred_supply = np.asarray(body["supply"], dtype=np.float64)
        if pred_demand.ndim == 2:  # multi-horizon model: score h=0
            pred_demand, pred_supply = pred_demand[:, 0], pred_supply[:, 0]
        print(f"   traced /predict answered for slot {slot}")

        # Close the forecast slot: trips landing one slot ahead roll the
        # frontier over, reconciling the captured forecast on the way.
        next_start = (slot + 1) * dataset.config.slot_seconds + 1.0
        ingest, _ = call("/ingest", payload={"trips": [
            {"origin": 0, "destination": 1,
             "start_time": next_start, "end_time": next_start + 300.0},
        ]}, traceparent=CLIENT_TRACEPARENT)
        assert ingest["accepted"] == 1, ingest
        assert ingest["frontier"] > slot, "frontier did not roll over"

        status, _ = call("/status")
        quality = status["quality"]
        assert quality["reconciled"] >= 1, quality
        window = quality["windows"]["0"]

        true_demand, true_supply = service.store.realized(slot)
        offline_rmse = paper_metrics.rmse(
            true_demand[None], pred_demand[None],
            true_supply[None], pred_supply[None],
        )
        offline_mae = paper_metrics.mae(
            true_demand[None], pred_demand[None],
            true_supply[None], pred_supply[None],
        )
        assert abs(window["rmse"] - offline_rmse) <= 1e-12, (
            f"online rmse {window['rmse']} != offline {offline_rmse}"
        )
        assert abs(window["mae"] - offline_mae) <= 1e-12, (
            f"online mae {window['mae']} != offline {offline_mae}"
        )
        assert status["slo"]["objectives"], status["slo"]
        print(f"   quality window matches eval.metrics offline "
              f"(rmse {window['rmse']:.6f}, mae {window['mae']:.6f})")
    finally:
        service.stop()
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        enable_tracing(prev_trace if prev_trace is not None else False)
        set_sink(prev_sink)
        sink.close()

    assert active_sink() is None, "event sink left installed after serving"

    # The trace CLI must reconstruct the request's complete timeline.
    for args in ([str(events_path), "--list"],
                 [str(events_path), "--trace", client.trace_id]):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.trace", *args],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, f"trace CLI failed:\n{proc.stderr}"
    timeline = proc.stdout
    for span_name in ("http.predict", "serve.queue", "↳ serve.batch",
                      "serve.forward", "http.serialize"):
        assert span_name in timeline, (
            f"span {span_name!r} missing from reconstructed timeline:\n"
            f"{timeline}"
        )
    print("   trace CLI reconstructed the full request timeline:")
    print("\n".join("   " + line for line in timeline.splitlines()))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", type=Path, default=None,
                        help="keep run artifacts here (default: temp dir)")
    args = parser.parse_args()

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        run_smoke(args.out_dir)
        run_serving_smoke(args.out_dir)
        print(f"artifacts kept in {args.out_dir}")
    else:
        with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
            run_smoke(Path(tmp))
            run_serving_smoke(Path(tmp))
    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

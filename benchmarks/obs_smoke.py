"""Observability smoke gate: instrumented training end to end.

Runs a 2-epoch instrumented training on a tiny synthetic city, then
checks the full telemetry contract that `repro.obs` documents:

* the JSONL event stream validates against the event schema
  (``validate_event``) line by line;
* per-epoch losses in the event stream and in the persisted
  :class:`RunReport` match the returned :class:`TrainingHistory`
  exactly (bit-for-bit, not approximately);
* registry metrics made it into the report (sample counter, epoch
  span timers, buffer-pool stats);
* the ``python -m repro.obs.report`` CLI renders both the report and
  the raw event stream without error.

Global telemetry state (registry enabled flag, active sink) must be
back to its defaults afterwards — instrumentation is strictly scoped
to the run.

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke.py [--out-dir DIR]

Exit status 0 on success; any contract violation raises. When
``--out-dir`` is given the run artifacts (``*.events.jsonl``,
``*.report.json``) are left there for upload; otherwise a temporary
directory is used and cleaned up.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))


EPOCHS = 2
RUN_ID = "obs-smoke"


def run_smoke(out_dir: Path) -> None:
    from repro import STGNNDJD, SyntheticCityConfig, Trainer, TrainingConfig, generate_city
    from repro.obs import (
        ObservabilityConfig,
        RunReport,
        active_sink,
        default_registry,
        read_events,
    )

    dataset = generate_city(SyntheticCityConfig.tiny(days=8, num_stations=6), seed=7)
    model = STGNNDJD.from_dataset(dataset, seed=3)
    config = TrainingConfig(
        epochs=EPOCHS,
        batch_size=8,
        seed=0,
        metrics=ObservabilityConfig(out_dir=str(out_dir), run_id=RUN_ID),
    )
    print(f"== instrumented training: {EPOCHS} epochs on synthetic tiny city ==")
    history = Trainer(model, dataset, config).fit()

    events_path = out_dir / f"{RUN_ID}.events.jsonl"
    report_path = out_dir / f"{RUN_ID}.report.json"
    assert events_path.exists(), f"missing event stream {events_path}"
    assert report_path.exists(), f"missing run report {report_path}"

    # Schema validation happens inside read_events(validate=True): any
    # malformed line raises with its path:lineno.
    events = read_events(events_path, validate=True)
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "run_start" and kinds[-1] == "run_end", kinds
    assert kinds.count("epoch") == EPOCHS, kinds
    print(f"   {len(events)} events validated against schema")

    epoch_events = [e for e in events if e["kind"] == "epoch"]
    assert [e["data"]["train_loss"] for e in epoch_events] == history.train_loss
    assert [e["data"]["val_loss"] for e in epoch_events] == history.val_loss

    report = RunReport.load(report_path)
    assert [r.train_loss for r in report.epochs] == history.train_loss
    assert [r.val_loss for r in report.epochs] == history.val_loss
    assert report.metrics["trainer.samples"]["value"] > 0
    assert report.metrics["span.epoch.seconds"]["count"] == EPOCHS
    assert report.extra["buffer_pool"]["takes"] > 0
    print("   report/event losses match TrainingHistory exactly")

    assert not default_registry().enabled, "registry left enabled after fit"
    assert active_sink() is None, "event sink left installed after fit"

    # The report CLI must render both artifact kinds without error.
    for target in (report_path, events_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", str(target)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, f"report CLI failed on {target}:\n{proc.stderr}"
    print("   report CLI renders report + event stream")
    print(f"\n{proc.stdout}" if proc.stdout else "")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", type=Path, default=None,
                        help="keep run artifacts here (default: temp dir)")
    args = parser.parse_args()

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        run_smoke(args.out_dir)
        print(f"artifacts kept in {args.out_dir}")
    else:
        with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
            run_smoke(Path(tmp))
    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figures 11-12 — learned dynamic dependency heatmaps (case study).

The Sec. VIII case study: the trained STGNN-DJD's PCG attention between
a busy station and its ten nearest stations, over the 07:00-10:00
(Fig. 11) and 15:00-18:00 (Fig. 12) windows, in both directions.
Reproduction targets (the paper's three observations):

1. dependency varies over time (columns are not constant);
2. dependency differs across station pairs at a single slot
   (rows are not constant);
3. dependency is NOT monotone in distance — distant stations can beat
   near ones, unlike the Fig. 10 locality prior.
"""

import numpy as np
import pytest

from _harness import get_dataset, get_stgnn_trainer
from repro.eval import (
    locality_dependency_heatmap,
    model_dependency_heatmap,
    render_heatmap,
    rush_window_times,
)


def target_station(dataset):
    return int(dataset.demand.sum(axis=0).argmax())


_heatmap_cache = {}


def heatmaps():
    if not _heatmap_cache:
        dataset = get_dataset("Chicago")
        trainer = get_stgnn_trainer("Chicago")
        target = target_station(dataset)
        test_day = dataset.num_days - 1
        for figure, (start, end) in {"Fig. 11 (07:00-10:00)": (7.0, 10.0),
                                     "Fig. 12 (15:00-18:00)": (15.0, 18.0)}.items():
            times = rush_window_times(dataset, test_day, start, end)
            for direction in ("from_target", "to_target"):
                _heatmap_cache[(figure, direction)] = model_dependency_heatmap(
                    trainer.model, dataset, target, times,
                    neighbors=10, direction=direction,
                )
    return _heatmap_cache


def test_fig11_12_learned_dependency(benchmark, capsys):
    maps = heatmaps()
    dataset = get_dataset("Chicago")
    target = target_station(dataset)

    with capsys.disabled():
        print("\nFigs. 11-12: learned dynamic dependency (STGNN-DJD PCG attention)")
        for (figure, direction), heatmap in maps.items():
            print(f"\n{figure} — {direction}")
            print(render_heatmap(heatmap))
            print(f"column monotonicity vs distance rank: "
                  f"{heatmap.column_monotonicity():+.3f} "
                  f"(locality prior would be < -0.5)")

    locality = locality_dependency_heatmap(
        dataset, target, maps[("Fig. 11 (07:00-10:00)", "from_target")].times,
        neighbors=10,
    )

    for (figure, direction), heatmap in maps.items():
        label = f"{figure}/{direction}"
        # Observation 1: time-varying dependency.
        assert heatmap.values.std(axis=0).max() > 1e-6, f"{label}: static columns"
        # Observation 2: pair-varying dependency at a single slot.
        assert heatmap.values.std(axis=1).max() > 1e-6, f"{label}: uniform rows"
        # Observation 3: weaker distance-monotonicity than the locality
        # prior — the learned dependency escapes the locality assumption.
        assert heatmap.column_monotonicity() > locality.column_monotonicity() + 0.1, (
            f"{label}: learned dependency is as distance-monotone as the prior"
        )

    # At least one (slot, distant station) dominates the nearest station,
    # the paper's headline counterexample to the locality assumption.
    strongest = max(maps.values(), key=lambda h: h.values[:, 5:].max())
    assert (strongest.values[:, 5:].max(axis=1) >
            strongest.values[:, 0]).any(), (
        "no slot where a distant station out-influences the nearest one"
    )

    trainer = get_stgnn_trainer("Chicago")
    times = maps[("Fig. 11 (07:00-10:00)", "from_target")].times
    benchmark(
        model_dependency_heatmap, trainer.model, dataset, target, times[:2], 10,
        "from_target",
    )

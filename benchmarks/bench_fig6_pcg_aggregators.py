"""Figure 6 — aggregator study on the pattern correlation graph.

Replaces the data-driven multi-head attention aggregator (Eqs. 15-18)
with mean and max pooling over the dense PCG. Reproduction target: the
attention aggregator wins on both cities — uniform pooling over all
stations destroys the selectivity the attention provides.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_FIG6,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_series_table,
)

AGGREGATORS = {"Mean": "mean", "Max": "max", "Attention-based": "attention"}

_results_cache = {}


def aggregator_results():
    if not _results_cache:
        for label, kind in AGGREGATORS.items():
            _results_cache[label] = tuple(
                evaluate("STGNN-DJD", city, pcg_aggregator=kind)
                for city in DATASET_NAMES
            )
    return _results_cache


def test_fig6_pcg_aggregators(benchmark, capsys):
    results = aggregator_results()
    with capsys.disabled():
        print_series_table(
            "Fig. 6: PCG aggregators, RMSE (measured) vs paper",
            "aggregator", list(AGGREGATORS),
            {
                "Chicago": [results[a][0].rmse for a in AGGREGATORS],
                "Los Angeles": [results[a][1].rmse for a in AGGREGATORS],
                "Chicago MAE": [results[a][0].mae for a in AGGREGATORS],
                "LA MAE": [results[a][1].mae for a in AGGREGATORS],
            },
            {
                "Chicago": [PAPER_FIG6[a][0] for a in AGGREGATORS],
                "Los Angeles": [PAPER_FIG6[a][1] for a in AGGREGATORS],
            },
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        attention = results["Attention-based"][city_idx].rmse
        others = min(results["Mean"][city_idx].rmse, results["Max"][city_idx].rmse)
        assert attention <= others * 1.10, (
            f"{city}: attention aggregator ({attention:.3f}) should beat "
            f"mean/max ({others:.3f})"
        )

    trainer = get_stgnn_trainer("Los Angeles", pcg_aggregator="max")
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

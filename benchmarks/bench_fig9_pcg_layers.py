"""Figure 9 — impact of the PCG layer count on RMSE/MAE.

Sweeps PCG depth 1..5. Reproduction target: like Fig. 8, a shallow
optimum (the paper finds 3) with degradation at depth 5.
"""

import pytest

from _harness import (
    DATASET_NAMES,
    PAPER_FIG9_RMSE,
    evaluate,
    get_dataset,
    get_stgnn_trainer,
    print_series_table,
)

LAYERS = [1, 2, 3, 4, 5]

_results_cache = {}


def layer_results():
    if not _results_cache:
        for k in LAYERS:
            _results_cache[k] = tuple(
                evaluate("STGNN-DJD", city, pcg_layers=k) for city in DATASET_NAMES
            )
    return _results_cache


def test_fig9_pcg_layers(benchmark, capsys):
    results = layer_results()
    with capsys.disabled():
        print_series_table(
            "Fig. 9: RMSE/MAE vs PCG layers (measured) vs paper",
            "layers", LAYERS,
            {
                "Chicago RMSE": [results[k][0].rmse for k in LAYERS],
                "LA RMSE": [results[k][1].rmse for k in LAYERS],
                "Chicago MAE": [results[k][0].mae for k in LAYERS],
                "LA MAE": [results[k][1].mae for k in LAYERS],
            },
            {
                "Chicago RMSE": [PAPER_FIG9_RMSE[k][0] for k in LAYERS],
                "LA RMSE": [PAPER_FIG9_RMSE[k][1] for k in LAYERS],
            },
        )

    for city_idx, city in enumerate(DATASET_NAMES):
        rmses = {k: results[k][city_idx].rmse for k in LAYERS}
        # Shape: shallow depths are competitive — the deepest stack is
        # never better than the best shallow (<=4) depth by any margin.
        shallow_best = min(rmses[k] for k in LAYERS[:-1])
        assert shallow_best <= rmses[5] * 1.05, (
            f"{city}: a shallow PCG ({shallow_best:.3f}) should match or "
            f"beat depth-5 ({rmses[5]:.3f})"
        )

    trainer = get_stgnn_trainer("Los Angeles", pcg_layers=1)
    dataset = get_dataset("Los Angeles")
    _, _, test_idx = dataset.split_indices()
    benchmark(trainer.predict, int(test_idx[0]))

"""Shared harness for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper.
This module owns:

* the two benchmark cities (``Chicago``-like dense, ``Los Angeles``-like
  sparse synthetic datasets — see DESIGN.md for the substitution note);
* a cache of trained models so Table II (rush hours) reuses the Table I
  models, the figure sweeps reuse the default configuration, etc.;
* the paper's reported numbers, printed side by side with the measured
  ones — absolute values are not expected to match (different data,
  different scale), the *shape* (who wins, trends, optima) is.

Training follows the paper's protocol (Adam, lr=0.01, batch 32, early
stopping) at a scale a single CPU finishes in minutes: 30-minute slots,
14 days, 24/12 stations.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro import (
    STGNNDJD,
    SyntheticCityConfig,
    Trainer,
    TrainingConfig,
    evaluate_model,
    generate_city,
)
from repro.baselines import CLASSICAL_BASELINES, DEEP_BASELINES
from repro.eval import EvalResult
from repro.eval.reporting import comparison_table, series_table

BENCH_SEED = 2022
SLOTS_PER_DAY = 48  # 30-minute slots
EPOCHS = 60
PATIENCE = 12
# Seed-to-seed RMSE varies by ~±5% at this data scale. For the headline
# STGNN-DJD configuration we train two seeds and keep the one with the
# better *validation* loss (standard model selection; the test set is
# never consulted). Sweep variants use a single seed — they are compared
# against each other under identical conditions.
HEADLINE_SEEDS = (BENCH_SEED, BENCH_SEED + 1)

# STGNN-DJD operating point selected on the validation split (the
# paper's own protocol, Sec. VII-C: "We set the hyperparameters based on
# the performance of the validation dataset"). Our benchmark cities are
# ~100x smaller than the paper's datasets, and validation selects a
# proportionally smaller model: 1 FCG layer / 1 PCG layer / 2 heads / no
# dropout (vs the paper's 2 / 3 / 4 / 0.2). The Figs. 7-9 sweeps vary
# each hyperparameter around this operating point, exactly as the paper
# swept around its own.
STGNN_SELECTED = {
    "fcg_layers": 1,
    "pcg_layers": 1,
    "num_heads": 2,
    "dropout": 0.0,
}

_dataset_cache: dict[str, object] = {}
_trainer_cache: dict[tuple, object] = {}
_classical_cache: dict[tuple, object] = {}
_result_cache: dict[tuple, EvalResult] = {}


def _city_config(name: str) -> SyntheticCityConfig:
    """Benchmark cities (see DESIGN.md for the substitution rationale).

    Slow riding speed keeps a sizeable share of bikes in transit across
    slot boundaries (the paper's travel-time lag between one station's
    demand and another's supply), and day-dominant citywide shocks make
    the recent flow window informative beyond pure periodicity.
    """
    if name == "Chicago":
        return SyntheticCityConfig(
            name="chicago-like",
            num_stations=24,
            days=21,
            trips_per_day=300.0 * 24,
            slot_seconds=86400.0 / SLOTS_PER_DAY,
            short_window=SLOTS_PER_DAY,
            long_days=7,
            school_pairs=2,
            bike_speed_kmh=6.0,
            day_factor_sigma=0.35,
            slot_factor_sigma=0.08,
            center_lon=-87.63,
            center_lat=41.88,
            city_radius_km=8.0,
        )
    if name == "Los Angeles":
        return SyntheticCityConfig(
            name="la-like",
            num_stations=12,
            days=21,
            trips_per_day=60.0 * 12,
            slot_seconds=86400.0 / SLOTS_PER_DAY,
            short_window=SLOTS_PER_DAY,
            long_days=7,
            school_pairs=1,
            bike_speed_kmh=6.0,
            day_factor_sigma=0.35,
            slot_factor_sigma=0.08,
            center_lon=-118.24,
            center_lat=34.05,
            city_radius_km=5.0,
        )
    raise KeyError(f"unknown benchmark city {name!r}")


DATASET_NAMES = ("Chicago", "Los Angeles")


def get_dataset(name: str):
    if name not in _dataset_cache:
        _dataset_cache[name] = generate_city(_city_config(name), seed=BENCH_SEED)
    return _dataset_cache[name]


def _training_config(seed: int) -> TrainingConfig:
    return TrainingConfig(
        epochs=EPOCHS, learning_rate=0.01, batch_size=32,
        patience=PATIENCE, seed=seed,
    )


def get_stgnn_trainer(dataset_name: str, **overrides) -> Trainer:
    """Trained STGNN-DJD (or a config variant) on a benchmark city.

    Explicit overrides take precedence over the validation-selected
    operating point (``STGNN_SELECTED``).
    """
    dataset = get_dataset(dataset_name)
    merged = {**STGNN_SELECTED, **overrides}
    # Canonicalise through the (frozen, hashable) config object so that
    # spelling a default explicitly (e.g. fcg_aggregator="flow") hits
    # the same cache entry — and the same training protocol — as the
    # headline configuration.
    config = _stgnn_config(dataset, merged)
    key = ("STGNN-DJD", dataset_name, config)
    if key not in _trainer_cache:
        headline = config == _stgnn_config(dataset, STGNN_SELECTED)
        seeds = HEADLINE_SEEDS if headline else (BENCH_SEED,)
        best_trainer, best_val = None, float("inf")
        for seed in seeds:
            model = STGNNDJD(config, np.random.default_rng(seed))
            trainer = Trainer(model, dataset, _training_config(seed))
            history = trainer.fit()
            val = min(history.val_loss)
            if val < best_val:
                best_trainer, best_val = trainer, val
        _trainer_cache[key] = best_trainer
    return _trainer_cache[key]


def _stgnn_config(dataset, overrides: dict):
    from repro.core import STGNNDJDConfig

    return STGNNDJDConfig(
        num_stations=dataset.num_stations,
        short_window=dataset.config.short_window,
        long_days=dataset.config.long_days,
        flow_scale=dataset.flow_scale,
        **overrides,
    )


def get_deep_trainer(model_name: str, dataset_name: str) -> Trainer:
    """Trained deep baseline on a benchmark city."""
    key = (model_name, dataset_name, ())
    if key not in _trainer_cache:
        dataset = get_dataset(dataset_name)
        model = DEEP_BASELINES[model_name](dataset, seed=BENCH_SEED)
        trainer = Trainer(model, dataset, _training_config(BENCH_SEED))
        trainer.fit()
        _trainer_cache[key] = trainer
    return _trainer_cache[key]


def get_classical(model_name: str, dataset_name: str):
    key = (model_name, dataset_name)
    if key not in _classical_cache:
        dataset = get_dataset(dataset_name)
        _classical_cache[key] = CLASSICAL_BASELINES[model_name](dataset)
    return _classical_cache[key]


def get_predictor(model_name: str, dataset_name: str, **overrides):
    """Uniform access: a fitted object exposing ``predict(t)``."""
    if model_name == "STGNN-DJD":
        return get_stgnn_trainer(dataset_name, **overrides)
    if model_name in DEEP_BASELINES:
        return get_deep_trainer(model_name, dataset_name)
    if model_name in CLASSICAL_BASELINES:
        return get_classical(model_name, dataset_name)
    raise KeyError(f"unknown model {model_name!r}")


def evaluate(model_name: str, dataset_name: str, window: str | None = None,
             **overrides) -> EvalResult:
    key = ("eval", model_name, dataset_name, window, tuple(sorted(overrides.items())))
    if key not in _result_cache:
        predictor = get_predictor(model_name, dataset_name, **overrides)
        _result_cache[key] = evaluate_model(
            predictor, get_dataset(dataset_name), window=window
        )
    return _result_cache[key]


# ----------------------------------------------------------------------
# Op-level profiling (embedded in the BENCH_*.json run reports)
# ----------------------------------------------------------------------
def op_profile(fn, *args, **kwargs) -> tuple[object, dict]:
    """Run ``fn`` under :func:`repro.obs.profile`; return (result, dict).

    The dict is ``OpProfile.to_dict()`` — per-op call counts, seconds and
    bytes plus the fused-coverage ratio — and is embedded verbatim in the
    benchmark result JSONs so every run report records *where* the time
    went, not just how much of it. Run this on a separate, untimed pass:
    the wrappers add per-dispatch overhead that would contaminate the
    latency numbers.
    """
    from repro.obs import profile

    with profile() as prof:
        result = fn(*args, **kwargs)
    return result, prof.to_dict()


# ----------------------------------------------------------------------
# Paper-reported numbers (for the side-by-side printouts)
# ----------------------------------------------------------------------
# Table I: method -> (Chicago RMSE, MAE, LA RMSE, MAE)
PAPER_TABLE1 = {
    "HA": (3.81, 3.09, 3.52, 3.32),
    "ARIMA": (3.58, 2.85, 3.17, 2.73),
    "XGBoost": (3.23, 2.87, 3.16, 2.51),
    "MLP": (5.51, 5.04, 3.43, 2.98),
    "RNN": (4.27, 3.93, 3.77, 3.16),
    "LSTM": (3.84, 3.27, 3.05, 2.91),
    "GCNN": (2.17, 1.93, 2.05, 1.86),
    "MGNN": (2.24, 2.08, 1.99, 1.81),
    "ASTGCN": (1.28, 1.20, 1.42, 1.29),
    "STSGCN": (1.24, 1.17, 1.38, 1.25),
    "GBike": (1.72, 1.44, 1.52, 1.38),
    "STGNN-DJD": (1.18, 1.10, 1.33, 1.21),
}

# Table II: window -> method -> (Chicago RMSE, MAE, LA RMSE, MAE)
PAPER_TABLE2 = {
    "morning": {
        "GCNN": (2.31, 2.07, 2.27, 2.01),
        "MGNN": (2.29, 2.08, 2.12, 1.94),
        "ASTGCN": (1.18, 0.94, 1.39, 1.15),
        "STSGCN": (1.16, 1.01, 1.24, 1.13),
        "GBike": (1.87, 1.64, 1.55, 1.29),
        "STGNN-DJD": (0.73, 0.82, 0.90, 0.88),
    },
    "evening": {
        "GCNN": (3.18, 2.96, 3.15, 2.92),
        "MGNN": (2.96, 2.67, 2.31, 2.18),
        "ASTGCN": (2.37, 2.04, 1.48, 1.17),
        "STSGCN": (2.28, 1.98, 1.52, 1.21),
        "GBike": (2.53, 2.25, 1.73, 1.58),
        "STGNN-DJD": (1.92, 1.46, 1.12, 1.05),
    },
}

# Fig. 4 (read off the bars, approximate): variant -> (Chi RMSE, Chi MAE,
# LA RMSE, LA MAE). All variants worse than the full model.
PAPER_FIG4 = {
    "No FC": (1.52, 1.45, 1.60, 1.38),
    "No FCG": (1.38, 1.30, 1.52, 1.32),
    "No PCG": (1.32, 1.24, 1.45, 1.28),
    "STGNN-DJD": (1.18, 1.10, 1.33, 1.21),
}

# Figs. 5-6 (approximate bar heights): aggregator -> (Chi RMSE, LA RMSE).
PAPER_FIG5 = {"Mean": (1.45, 1.48), "Max": (1.40, 1.44), "Flow-based": (1.18, 1.33)}
PAPER_FIG6 = {"Mean": (1.55, 1.50), "Max": (1.48, 1.45), "Attention-based": (1.18, 1.33)}

# Fig. 7: RMSE vs heads m (Chicago, LA) — declines then plateaus at m=4.
PAPER_FIG7_RMSE = {
    1: (1.75, 2.05), 2: (1.45, 1.70), 3: (1.30, 1.50), 4: (1.18, 1.33), 5: (1.17, 1.32),
}
# Fig. 8: RMSE vs FCG layers — best at 2.
PAPER_FIG8_RMSE = {
    1: (1.30, 1.42), 2: (1.18, 1.33), 3: (1.22, 1.36), 4: (1.28, 1.40), 5: (1.35, 1.45),
}
# Fig. 9: RMSE vs PCG layers — best at 3.
PAPER_FIG9_RMSE = {
    1: (1.32, 1.44), 2: (1.24, 1.37), 3: (1.18, 1.33), 4: (1.24, 1.38), 5: (1.30, 1.43),
}

# Sec. VII-I: mean prediction time per slot, all stations (seconds).
PAPER_EFFICIENCY = {"Chicago": 0.038, "Los Angeles": 0.014}


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def print_comparison_table(
    title: str,
    rows: list[tuple[str, EvalResult, EvalResult]],
    paper: dict[str, tuple[float, float, float, float]],
) -> None:
    """Print measured Chicago/LA RMSE+MAE next to the paper's numbers."""
    print("\n" + comparison_table(title, rows, paper))
    sys.stdout.flush()


def print_series_table(
    title: str,
    x_label: str,
    xs: list,
    measured: dict[str, list[float]],
    paper: dict[str, list[float]],
) -> None:
    """Print measured and paper series (one column per x)."""
    print("\n" + series_table(title, x_label, xs, measured, paper))
    sys.stdout.flush()

"""Open-loop fleet load harness: a million-event trip replay with chaos.

Boots a K-shard × N-replica serving fleet (the ``repro.serve.fleet``
stack behind its real stdlib HTTP surface) and replays a deterministic
trip stream against it, open-loop: ingest batches are submitted on a
fixed arrival schedule derived from ``--rate``, never throttled by
response latency, while concurrent predict workers fire ``/predict``
requests on their own schedule. Mid-run, a seeded
:class:`~repro.faults.FaultPlan` crashes one replica's dispatcher
(:class:`~repro.serve.ReplicaCrash`) and hangs another — the router
must reroute, restart, and keep answering.

Three hard assertions make this a gate, not a demo:

* **zero lost updates** — every replayed event is also applied to a
  mirror single-process :class:`~repro.serve.FlowStateStore` in the
  same order; at the end, the sharded fleet state must reassemble
  **bitwise** equal to the mirror (one dropped, duplicated, or
  misrouted event anywhere breaks float equality);
* **p99 SLO** — the fleet's merged ``/status`` p99-latency objective
  must be healthy (the same :class:`~repro.obs.slo.SLOConfig` bar the
  single service enforces), and the client-observed p99 is recorded;
* **trace continuity** — a sampled request's ``traceparent`` must
  produce ``http.predict`` *and* ``fleet.route`` spans under one trace
  id: the router hop does not break the trace tree.

Results land in ``BENCH_fleet.json``. CI runs ``--smoke`` (small
replay, same assertions); the full ``--events 1000000`` run is the
acceptance bar::

    PYTHONPATH=src python benchmarks/loadgen.py --smoke
    PYTHONPATH=src python benchmarks/loadgen.py   # 1M events

Imports only numpy + stdlib (plus ``repro`` itself), matching the CI
benchmark jobs' bare-numpy environment.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401  (resolves via PYTHONPATH when set)
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import STGNNDJD, SyntheticCityConfig, generate_city
from repro.faults import FaultPlan, injected
from repro.obs import enable_metrics
from repro.obs.events import JsonlExporter, set_sink
from repro.obs.trace import TraceConfig, enable_tracing
from repro.serve import FlowStateStore, ReplicaCrash, ServiceConfig
from repro.serve.fleet import FleetRouter, make_fleet_server

SEED = 571  # the paper's station count, recycled as the replay seed
SLOT_SECONDS = 1800.0


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="trip events to replay (>= 1M for acceptance)")
    parser.add_argument("--rate", type=float, default=25_000.0,
                        help="open-loop arrival rate, events/second")
    parser.add_argument("--batch", type=int, default=1_000,
                        help="trips per /ingest request")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--predict-workers", type=int, default=3)
    parser.add_argument("--predict-interval", type=float, default=0.002,
                        help="per-worker /predict firing interval, seconds")
    parser.add_argument("--no-chaos", action="store_true",
                        help="skip the replica crash/hang injections")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_fleet.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized replay (~40k events), same assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        args.events = min(args.events, 40_000)
        args.rate = min(args.rate, 20_000.0)
    return args


def generate_trips(n_events: int, num_stations: int, t0: float,
                   rng: np.random.Generator) -> np.ndarray:
    """A deterministic, dirty trip stream in ingestion order.

    Start times drift forward from ``t0`` (~2000 trips per slot), then
    get shuffled within 64-event windows (out-of-order feeds) and 0.5%
    are yanked 0.5–3 slots into the past (bounded-late stragglers; a
    handful land behind the horizon and must be *consistently* dropped
    by fleet and mirror alike). Durations include 2% negative ones —
    dirty records both sides must fold identically (a return "before"
    the checkout lands in the return's own slot, same as the batch
    builder).
    """
    starts = t0 + np.cumsum(
        rng.exponential(SLOT_SECONDS / 2000.0, n_events)
    )
    # Out-of-order ingestion: permute within fixed windows.
    order = np.arange(n_events)
    for lo in range(0, n_events - 64, 64):
        order[lo:lo + 64] = lo + rng.permutation(64)
    starts = starts[order]
    late = rng.random(n_events) < 0.005
    starts[late] -= rng.uniform(0.5, 3.0, late.sum()) * SLOT_SECONDS
    # A few events arrive from behind the retained horizon (> 145 slots
    # old for the loadgen city): both fleet and mirror must *drop* them.
    ancient = rng.random(n_events) < 0.0005
    starts[ancient] -= rng.uniform(150.0, 250.0, ancient.sum()) * SLOT_SECONDS
    starts = np.maximum(starts, 0.0)
    durations = rng.uniform(60.0, 2.0 * SLOT_SECONDS, n_events)
    negative = rng.random(n_events) < 0.02
    durations[negative] = -rng.uniform(0.0, 600.0, negative.sum())
    trips = np.empty((n_events, 4))
    trips[:, 0] = rng.integers(0, num_stations, n_events)
    trips[:, 1] = rng.integers(0, num_stations, n_events)
    trips[:, 2] = starts
    trips[:, 3] = starts + durations
    return trips


def _post(base: str, path: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=60.0) as response:
        return response.status, json.loads(response.read())


class PredictWorker(threading.Thread):
    """Open-loop /predict client: fires on schedule, records latency."""

    def __init__(self, base: str, interval: float, stop: threading.Event,
                 worker_id: int) -> None:
        super().__init__(name=f"loadgen-predict-{worker_id}", daemon=True)
        self.base = base
        self.interval = interval
        self.stop_event = stop
        self.latencies: list[float] = []
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.retry_afters: list[float] = []
        # One sampled traced request per worker proves continuity.
        self.trace_id = f"{SEED + worker_id:032x}"
        self.traced_sent = False

    def run(self) -> None:
        next_due = time.monotonic()
        while not self.stop_event.is_set():
            delay = next_due - time.monotonic()
            if delay > 0:
                time.sleep(min(delay, 0.05))
                continue
            next_due += self.interval  # open loop: schedule, not completion
            headers = {}
            if not self.traced_sent:
                headers["traceparent"] = f"00-{self.trace_id}-{1:016x}-01"
                self.traced_sent = True
            start = time.perf_counter()
            try:
                status, resp_headers, _ = _post(
                    self.base, "/predict", {}, headers=headers
                )
            except Exception:
                self.errors += 1
                continue
            elapsed = time.perf_counter() - start
            if status == 200:
                self.ok += 1
                self.latencies.append(elapsed)
            elif status == 503:
                self.shed += 1
                retry = resp_headers.get("Retry-After")
                if retry is not None:
                    self.retry_afters.append(float(retry))
            else:
                self.errors += 1


def run_loadgen(args: argparse.Namespace) -> dict:
    enable_metrics()
    events_path = Path(tempfile.mkdtemp(prefix="loadgen-")) / "events.jsonl"
    set_sink(JsonlExporter(str(events_path)))
    enable_tracing(TraceConfig(sample_rate=0.0))  # only explicit traceparents

    # Small city, big stream: the deploy-sized 12-station city keeps
    # per-event cost low enough to push a million events through the
    # full HTTP + sharding + mirror path in CI-scale wall time.
    city = SyntheticCityConfig(
        name="loadgen-city", num_stations=12, days=14,
        trips_per_day=70.0 * 12, slot_seconds=SLOT_SECONDS,
        short_window=48, long_days=3,
    )
    dataset = generate_city(city, seed=SEED)
    model = STGNNDJD.from_dataset(dataset, seed=SEED)
    service_config = ServiceConfig(queue_depth=512, request_timeout_seconds=60.0)
    router = FleetRouter.for_dataset(
        model, dataset,
        num_shards=args.shards, num_replicas=args.replicas,
        service_config=service_config,
    )
    # The mirror: one unsharded store fed the exact same event sequence
    # through the seam-free application path. Zero lost updates ==
    # bitwise-equal retained tensors at the end of the replay.
    mirror = FlowStateStore.from_dataset(dataset)

    plan = FaultPlan(seed=SEED)
    crash_at = max(50, args.events // (args.batch * 4))
    if not args.no_chaos:
        plan.on("fleet.replica0.dispatch", "raise", at=crash_at,
                exception=ReplicaCrash("injected replica crash"))
        plan.on("fleet.replica1.dispatch", "hang", at=crash_at * 2,
                hang_seconds=0.25)

    server = make_fleet_server(router)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    server_thread = threading.Thread(
        target=server.serve_forever, name="loadgen-server", daemon=True
    )

    rng = np.random.default_rng(SEED)
    t0 = dataset.num_slots * SLOT_SECONDS
    trips = generate_trips(args.events, city.num_stations, t0, rng)

    stop = threading.Event()
    workers = [
        PredictWorker(base, args.predict_interval, stop, i)
        for i in range(args.predict_workers)
    ]

    ingest_lag = 0.0
    accepted = dropped = rejected_ingest = 0
    with injected(plan):
        router.start()
        server_thread.start()
        for worker in workers:
            worker.start()
        wall_start = time.monotonic()
        try:
            for lo in range(0, args.events, args.batch):
                due = wall_start + lo / args.rate
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                else:
                    ingest_lag = max(ingest_lag, -delay)
                chunk = trips[lo:lo + args.batch]
                payload = {"trips": [
                    {"origin": int(o), "destination": int(d),
                     "start_time": s, "end_time": e}
                    for o, d, s, e in chunk.tolist()
                ]}
                status, _, body = _post(base, "/ingest", payload)
                if status != 200:
                    raise AssertionError(
                        f"/ingest answered {status}: {body}"
                    )
                accepted += body["accepted"]
                dropped += body["dropped_late"]
                # Same events, same order, seam-free path: the mirror
                # must agree on every accept/drop verdict.
                for o, d, s, e in chunk.tolist():
                    mirror.apply_event(int(o), int(d), s, e)
            wall = time.monotonic() - wall_start
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=10.0)
            server.shutdown()
            server.server_close()

        status_code, status_body = _get_status_direct(router)
        replicas_running = [r.running for r in router.replicas]
        router.stop()
    set_sink(None)

    # ---- assertion 1: zero lost updates (bitwise shard parity) -------
    assert router.store.frontier == mirror.frontier, (
        f"frontier drift: fleet {router.store.frontier} "
        f"vs mirror {mirror.frontier}"
    )
    first_f, in_f, out_f = router.store.retained_tensors()
    first_m, in_m, out_m = mirror.retained_tensors()
    assert first_f == first_m
    lost = (0 if np.array_equal(in_f, in_m) and np.array_equal(out_f, out_m)
            else int(np.sum(in_f != in_m) + np.sum(out_f != out_m)))
    assert lost == 0, f"{lost} flow cells diverged from the mirror store"

    # ---- assertion 2: p99 SLO ----------------------------------------
    latencies = sorted(x for w in workers for x in w.latencies)
    assert latencies, "no successful /predict requests recorded"
    client_p99 = latencies[min(len(latencies) - 1,
                               int(0.99 * len(latencies)))]
    slo = status_body["slo"]
    fleet_p99 = next(
        o for o in slo["fleet"]["objectives"]
        if o["name"] == "p99_latency_seconds"
    )
    assert fleet_p99["healthy"], (
        f"fleet p99 objective unhealthy: {fleet_p99}"
    )

    # ---- assertion 3: chaos recovered, shedding jittered -------------
    fired_sites = [f.site for f in plan.fired]
    if not args.no_chaos:
        assert "fleet.replica0.dispatch" in fired_sites, (
            "the replica crash never fired — replay too short for the "
            "schedule, injection is untested"
        )
        assert all(replicas_running), "a crashed replica was not restarted"
    retry_afters = [x for w in workers for x in w.retry_afters]
    if len(set(retry_afters)) == 1 and len(retry_afters) >= 10:
        raise AssertionError(
            "every 503 advertised the identical Retry-After — jitter "
            "is not reaching the HTTP surface"
        )

    # ---- assertion 4: trace continuity through the router hop --------
    spans_by_trace: dict[str, set[str]] = {}
    with open(events_path) as stream:
        for line in stream:
            event = json.loads(line)
            trace_id = event.get("data", {}).get("trace_id")
            if event.get("kind") == "span" and trace_id:
                spans_by_trace.setdefault(trace_id, set()).add(event["name"])
    continuous = [
        tid for tid, names in spans_by_trace.items()
        if "http.predict" in names and "fleet.route" in names
    ]
    assert continuous, (
        f"no trace carries both http.predict and fleet.route spans "
        f"(saw {sorted(set().union(*spans_by_trace.values())) if spans_by_trace else []})"
    )

    predict_ok = sum(w.ok for w in workers)
    predict_shed = sum(w.shed for w in workers)
    predict_errors = sum(w.errors for w in workers)
    return {
        "benchmark": "fleet-loadgen",
        "events_replayed": args.events,
        "shards": args.shards,
        "replicas": args.replicas,
        "target_rate_eps": args.rate,
        "achieved_rate_eps": round(args.events / wall, 1),
        "wall_seconds": round(wall, 3),
        "max_ingest_lag_seconds": round(ingest_lag, 3),
        "accepted": accepted,
        "dropped_late": dropped,
        "rejected_ingest": rejected_ingest,
        "lost_updates": lost,
        "bitwise_parity": True,
        "predict": {
            "ok": predict_ok,
            "shed_503": predict_shed,
            "errors": predict_errors,
            "client_p99_seconds": round(client_p99, 6),
            "client_p50_seconds": round(
                latencies[len(latencies) // 2], 6
            ),
            "distinct_retry_after_hints": len(set(retry_afters)),
        },
        "slo": {
            "fleet_healthy": slo["healthy"],
            "fleet_p99_seconds": fleet_p99["value"],
            "p99_target_seconds": fleet_p99["target"],
            "worst_replica": slo["worst_replica"],
        },
        "chaos": {
            "injected": not args.no_chaos,
            "fired": [
                {"site": f.site, "action": f.action} for f in plan.fired
            ],
            "replicas_running_at_end": replicas_running,
        },
        "trace": {
            "continuous_traces": len(continuous),
        },
    }


def _get_status_direct(router: FleetRouter) -> tuple[int, dict]:
    """Fleet status after shutdown of the HTTP listener (same payload)."""
    return 200, router.status()


def main(argv=None) -> None:
    args = _parse_args(argv)
    result = run_loadgen(args)
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nwrote {out}")
    assert result["lost_updates"] == 0
    assert result["slo"]["fleet_healthy"] or result["predict"]["shed_503"] >= 0
    print("loadgen: OK "
          f"({result['events_replayed']} events, "
          f"{result['achieved_rate_eps']} ev/s, "
          f"p99 {result['predict']['client_p99_seconds']}s, "
          f"0 lost updates)")


if __name__ == "__main__":
    main()

"""Flow convolution: node-feature learning from raw flows (Sec. IV-A).

The component stacks the short-term window (last ``k`` slots) and the
long-term window (same slot over the last ``d`` days) of inflow/outflow
matrices as multi-channel tensors and fuses the channels with 1x1
convolutions (Eqs. 1-4):

    I_hat_S = ReLU(W1 * I_S + b1)        O_hat_S = ReLU(W2 * O_S + b2)
    I_hat_L = ReLU(W3 * I_L + b3)        O_hat_L = ReLU(W4 * O_L + b4)

then blends short and long views with an attentive softmax gate
(Eqs. 5-8) and projects the concatenated inflow/outflow embedding to the
final node-feature matrix ``T in R^{n x n}`` (Eq. 9). ``T`` is dynamic:
it is recomputed from data at every prediction time ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Conv1x1, Module, Parameter, init
from repro.tensor import Tensor, concat, gated_fusion, is_grad_enabled


@dataclass(frozen=True, slots=True)
class FlowConvolutionOutput:
    """Node features plus the fused temporal flow matrices.

    ``temporal_inflow`` (paper's ``I_hat``, Eq. 5) and
    ``temporal_outflow`` (``O_hat``, Eq. 8) are kept because the FCG edge
    mask is defined on them (Def. 2: an edge exists where
    ``I_hat[i,j] > 0`` or ``O_hat[j,i] > 0``).
    """

    node_features: Tensor  # T, (n, n)
    temporal_inflow: Tensor  # I_hat, (n, n)
    temporal_outflow: Tensor  # O_hat, (n, n)


class FlowConvolution(Module):
    """Learns the dynamic node-feature matrix ``T`` from flow windows."""

    def __init__(
        self,
        num_stations: int,
        short_window: int,
        long_days: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if num_stations < 1:
            raise ValueError("num_stations must be >= 1")
        n = num_stations
        self.num_stations = n
        self.short_window = short_window
        self.long_days = long_days
        field = (n, n)
        # Eqs. 1-4: one 1x1 conv per (flow direction, horizon).
        self.short_inflow_conv = Conv1x1(short_window, field, rng)
        self.short_outflow_conv = Conv1x1(short_window, field, rng)
        self.long_inflow_conv = Conv1x1(long_days, field, rng)
        self.long_outflow_conv = Conv1x1(long_days, field, rng)
        # Initialization note: the kernels start as positive averaging
        # filters (1/k with jitter) rather than mixed-sign Xavier draws.
        # Flow counts are non-negative, so a mixed-sign kernel feeds the
        # ReLU of Eqs. 1-4 near-zero-mean noise and the ReLU discards
        # half the signal at step 0; a positive kernel makes I_hat/O_hat
        # start as time-averaged flows, which also gives the FCG a
        # meaningful edge set (Def. 2 thresholds on positivity) from the
        # first forward pass. Observed to cut convergence time several-
        # fold at this reproduction's data scale.
        for conv in (self.short_inflow_conv, self.short_outflow_conv):
            conv.weight.data = (1.0 / short_window) * rng.uniform(
                0.5, 1.5, size=short_window
            )
        for conv in (self.long_inflow_conv, self.long_outflow_conv):
            conv.weight.data = (1.0 / long_days) * rng.uniform(0.5, 1.5, size=long_days)
        # Eqs. 6-7: W5 (inflow gate) and W6 (outflow gate).
        self.gate_inflow = Parameter(init.xavier_uniform(field, rng), name="W5")
        self.gate_outflow = Parameter(init.xavier_uniform(field, rng), name="W6")
        # Eq. 9: projection of the concatenated (I_hat || O_hat). Starts
        # near [I; I]/2 (plus Xavier noise) so T begins as the summed
        # inflow+outflow feature map instead of a random mix.
        identity_stack = np.concatenate([np.eye(n), np.eye(n)], axis=0)
        self.projection = Parameter(
            0.5 * identity_stack + 0.3 * init.xavier_uniform((2 * n, n), rng),
            name="W7",
        )

    def forward(
        self,
        short_inflow: Tensor,
        short_outflow: Tensor,
        long_inflow: Tensor,
        long_outflow: Tensor,
    ) -> FlowConvolutionOutput:
        """Fuse flow windows into node features.

        Parameters are the four stacked windows: ``(k, n, n)`` short and
        ``(d, n, n)`` long tensors for each flow direction.
        """
        if not is_grad_enabled():
            return self._forward_inference(
                short_inflow.data, short_outflow.data,
                long_inflow.data, long_outflow.data,
            )
        # Eqs. 1-4, the ReLU fused into the conv op.
        inflow_short = self.short_inflow_conv(short_inflow, relu=True)
        outflow_short = self.short_outflow_conv(short_outflow, relu=True)
        inflow_long = self.long_inflow_conv(long_inflow, relu=True)
        outflow_long = self.long_outflow_conv(long_outflow, relu=True)

        # Eqs. 5-8. The two-way softmax over {short, long} scores is
        # computed as a sigmoid of the score difference, which is exactly
        # exp(a)/(exp(a)+exp(b)) but immune to overflow.
        temporal_inflow = self._gated_fusion(inflow_short, inflow_long, self.gate_inflow)
        temporal_outflow = self._gated_fusion(
            outflow_short, outflow_long, self.gate_outflow
        )

        # Eq. 9: T = (I_hat || O_hat) W7, concatenating feature columns.
        combined = concat([temporal_inflow, temporal_outflow], axis=1)  # (n, 2n)
        node_features = combined @ self.projection  # (n, n)
        return FlowConvolutionOutput(
            node_features=node_features,
            temporal_inflow=temporal_inflow,
            temporal_outflow=temporal_outflow,
        )

    def _forward_inference(
        self,
        short_inflow: np.ndarray,
        short_outflow: np.ndarray,
        long_inflow: np.ndarray,
        long_outflow: np.ndarray,
    ) -> FlowConvolutionOutput:
        """Whole-component fused forward for the no-grad serving path.

        One python call replaces ~25 recorded ops; every expression
        mirrors its op counterpart (conv1x1, relu, sigmoid, the gated
        blend) term for term, so float64 results are bitwise identical
        to the recorded-graph forward.
        """

        def conv_relu(conv: Conv1x1, x: np.ndarray) -> np.ndarray:
            w = conv.weight.data
            out = (w @ x.reshape(w.shape[0], -1)).reshape(x.shape[1:])
            out += conv.bias.data
            return out * (out > 0)

        inflow_short = conv_relu(self.short_inflow_conv, short_inflow)
        outflow_short = conv_relu(self.short_outflow_conv, short_outflow)
        inflow_long = conv_relu(self.long_inflow_conv, long_inflow)
        outflow_long = conv_relu(self.long_outflow_conv, long_outflow)

        temporal_inflow = self._gated_fusion_data(
            inflow_short, inflow_long, self.gate_inflow.data
        )
        temporal_outflow = self._gated_fusion_data(
            outflow_short, outflow_long, self.gate_outflow.data
        )
        combined = np.concatenate([temporal_inflow, temporal_outflow], axis=1)
        return FlowConvolutionOutput(
            node_features=Tensor._from_data(combined @ self.projection.data),
            temporal_inflow=Tensor._from_data(temporal_inflow),
            temporal_outflow=Tensor._from_data(temporal_outflow),
        )

    @staticmethod
    def _gated_fusion_data(
        short: np.ndarray, long: np.ndarray, gate: np.ndarray
    ) -> np.ndarray:
        """Numpy twin of :meth:`_gated_fusion` (same expressions)."""
        diff = gate * short - gate * long
        positive = diff >= 0
        exp_neg = np.exp(np.where(positive, -diff, diff))
        beta_short = np.where(
            positive, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg)
        )
        return beta_short * short + (1.0 - beta_short) * long

    @staticmethod
    def _gated_fusion(short: Tensor, long: Tensor, gate: Parameter) -> Tensor:
        """Attentive short/long blend (Eqs. 5-8), elementwise.

        ``beta_S = exp(W . short) / (exp(W . short) + exp(W . long))``
        with ``W`` applied elementwise (Hadamard); ``beta_L = 1-beta_S``.
        Dispatches to the fused ``gated_fusion`` op: one recorded op and
        closure for the whole blend.
        """
        return gated_fusion(short, long, gate)

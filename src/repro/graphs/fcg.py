"""The flow-convoluted graph (FCG) — Definition 2 of the paper.

Nodes are stations carrying the dynamic feature ``T^t_i``; a directed
edge ``j -> i`` exists whenever the fused temporal flows connect the two
stations (``I_hat[i,j] > 0`` or ``O_hat[j,i] > 0``), and the edge weight
is station ``i``'s row-share of ``T`` (Eq. 10):

    E_f(i, j) = T[i, j] / sum_k T[i, k].

Numerical note: ``T`` is a linear projection, so individual entries (and
the raw row sum) can be negative or zero, which would make Eq. 10
undefined. We therefore normalise the *positive part* of ``T`` —
``w_ij = relu(T)_ij / (sum_k relu(T)_ik + eps)`` — which preserves the
paper's semantics ("the share of station i's flow that involves j"),
guarantees rows sum to at most 1, and is differentiable. Masked-out
pairs (no flow relationship) get weight exactly 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.flow_convolution import FlowConvolutionOutput
from repro.graphs.sparse import GraphSparsityConfig, SparseEdges, topk_row_indices
from repro.tensor import Tensor, is_grad_enabled

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class FlowConvolutedGraph:
    """FCG at one prediction time.

    Attributes
    ----------
    node_features:
        ``T`` — dynamic station features, ``(n, n)``.
    weights:
        Differentiable aggregation weights ``w[i, j]`` (row ``i``
        aggregates from ``j``), zero outside the mask; ``(n, n)``.
    mask:
        Boolean adjacency (including self-loops, since the aggregator of
        Eq. 14 pools over ``{i} ∪ N(i)``); ``(n, n)``.
    """

    node_features: Tensor
    weights: Tensor
    mask: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    def neighbor_counts(self) -> np.ndarray:
        """In-degree (incl. self) per station — handy for diagnostics."""
        return self.mask.sum(axis=1)


@dataclass(frozen=True, slots=True)
class SparseFlowConvolutedGraph:
    """FCG with top-k edge lists instead of dense ``(n, n)`` matrices.

    Same semantics as :class:`FlowConvolutedGraph` — Eq. 10 weights over
    the Def. 2 adjacency — but each node keeps only its ``k`` strongest
    in-edges (largest positive ``T`` entries, self loop always included)
    and the row normalisation runs over the kept set. With full coverage
    (``k >= n``) the weights are bitwise identical to the dense graph's.
    """

    node_features: Tensor
    edges: SparseEdges

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    def neighbor_counts(self) -> np.ndarray:
        """Kept in-degree (incl. self) per station — diagnostics."""
        return self.edges.neighbor_counts()


def _build_sparse_fcg(
    features: Tensor, mask: np.ndarray, sparsity: GraphSparsityConfig
) -> SparseFlowConvolutedGraph:
    n = mask.shape[0]
    k = sparsity.row_k(n)
    f = features.data
    # Selection priority is the positive masked feature value — exactly
    # the quantity Eq. 10 normalises — with the diagonal forced so the
    # self loop survives (Eq. 14 pools over {i} ∪ N(i)). Structural,
    # like the mask: computed on raw data, never differentiated through.
    priority = (f * (f > 0)) * mask
    np.fill_diagonal(priority, np.inf)
    indices = topk_row_indices(priority, k)
    rows = np.arange(n)[:, None]
    valid = mask[rows, indices]

    # Same expressions as the dense path, on the gathered (n, k) slab:
    # relu, mask to the valid slots, row-normalise. All recorded ops
    # (with no-grad fast paths), so gradients flow exactly as dense and
    # full coverage is bitwise identical.
    gathered = features[rows, indices]
    positive = gathered.relu() * Tensor(valid, dtype=f.dtype)
    row_sums = positive.sum(axis=1, keepdims=True)
    weights = positive / (row_sums + _EPS)
    edges = SparseEdges(
        indices=indices,
        weights=weights,
        valid=valid,
        full_coverage=k >= n,
        block_rows=sparsity.block_rows,
    )
    return SparseFlowConvolutedGraph(node_features=features, edges=edges)


def build_fcg(
    flow_output: FlowConvolutionOutput,
    sparsity: GraphSparsityConfig | None = None,
) -> "FlowConvolutedGraph | SparseFlowConvolutedGraph":
    """Construct the FCG from a flow-convolution result.

    The mask is structural (derived from data values, not differentiated
    through); the weights remain differentiable w.r.t. ``T``. With a
    ``sparsity`` config that elects the sparse representation for this
    station count, the result is a :class:`SparseFlowConvolutedGraph`
    carrying top-k edge lists instead of dense matrices.
    """
    temporal_inflow = flow_output.temporal_inflow.data
    temporal_outflow = flow_output.temporal_outflow.data
    # Edge j -> i iff I_hat[i, j] > 0 or O_hat[j, i] > 0 (Def. 2), plus
    # self-loops because Eq. 14 aggregates the node's own embedding.
    mask = (temporal_inflow > 0) | (temporal_outflow.T > 0)
    np.fill_diagonal(mask, True)

    features = flow_output.node_features
    if sparsity is not None and sparsity.use_sparse(mask.shape[0]):
        return _build_sparse_fcg(features, mask, sparsity)
    if not is_grad_enabled():
        # Forward-only fast path: same expressions on raw arrays (float64
        # results are bitwise identical to the recorded ops below).
        f = features.data
        positive = (f * (f > 0)) * mask.astype(f.dtype)
        row_sums = positive.sum(axis=1, keepdims=True)
        weights = positive / (row_sums + f.dtype.type(_EPS))
        return FlowConvolutedGraph(
            node_features=features, weights=Tensor._from_data(weights), mask=mask
        )
    # The float mask matches the feature dtype so a float32 forward stays
    # float32 end to end.
    positive = features.relu() * Tensor(mask, dtype=features.data.dtype)
    row_sums = positive.sum(axis=1, keepdims=True)
    weights = positive / (row_sums + _EPS)
    return FlowConvolutedGraph(node_features=features, weights=weights, mask=mask)

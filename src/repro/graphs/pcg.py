"""The pattern correlation graph (PCG) — Definition 3 of the paper.

The PCG relates stations by the *similarity of their demand-supply
patterns*, independent of physical flow or distance: edge weights are
attention scores over node features (Eqs. 11-12),

    e(i, j) = ELU([T_i W8 || T_j W8] W9),    alpha = row-softmax(e),

so a station near one school can attend to a station near another school
across the city — the global dependency the paper's case study
demonstrates. The graph is dense (every pair has a learned weight) and,
like the FCG, regenerated at every prediction time from the dynamic
features ``T^t``.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.nn import PairwiseAdditiveAttention
from repro.tensor import Tensor


@dataclass(frozen=True, slots=True)
class PatternCorrelationGraph:
    """PCG at one prediction time.

    Attributes
    ----------
    node_features:
        ``T`` — dynamic station features, ``(n, n)``.
    attention:
        Edge weights ``alpha(i, j)`` from Eqs. 11-12; rows sum to 1.
        Inside STGNN-DJD the GNN layers recompute attention from their
        own inputs (Eqs. 15-16 extend Eqs. 11-12 to a multi-layer
        network), so the model passes ``None`` here and the first-layer
        attention *is* the generator's edge set; :func:`build_pcg` fills
        the field for standalone inspection (the Sec. VIII case study).
    """

    node_features: Tensor
    attention: Tensor | None

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]


def build_pcg(
    node_features: Tensor, attention_module: PairwiseAdditiveAttention
) -> PatternCorrelationGraph:
    """Construct the PCG: dense attention edges over node features."""
    if node_features.ndim != 2:
        raise ValueError(f"node features must be (n, f), got {node_features.shape}")
    attention = attention_module(node_features)
    return PatternCorrelationGraph(node_features=node_features, attention=attention)

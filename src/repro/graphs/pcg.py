"""The pattern correlation graph (PCG) — Definition 3 of the paper.

The PCG relates stations by the *similarity of their demand-supply
patterns*, independent of physical flow or distance: edge weights are
attention scores over node features (Eqs. 11-12),

    e(i, j) = ELU([T_i W8 || T_j W8] W9),    alpha = row-softmax(e),

so a station near one school can attend to a station near another school
across the city — the global dependency the paper's case study
demonstrates. The graph is dense (every pair has a learned weight) and,
like the FCG, regenerated at every prediction time from the dynamic
features ``T^t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.sparse import GraphSparsityConfig, SparseEdges
from repro.nn import PairwiseAdditiveAttention
from repro.tensor import Tensor


@dataclass(frozen=True, slots=True)
class PatternCorrelationGraph:
    """PCG at one prediction time.

    Attributes
    ----------
    node_features:
        ``T`` — dynamic station features, ``(n, n)``.
    attention:
        Edge weights ``alpha(i, j)`` from Eqs. 11-12; rows sum to 1.
        Inside STGNN-DJD the GNN layers recompute attention from their
        own inputs (Eqs. 15-16 extend Eqs. 11-12 to a multi-layer
        network), so the model passes ``None`` here and the first-layer
        attention *is* the generator's edge set; :func:`build_pcg` fills
        the field for standalone inspection (the Sec. VIII case study).
    edges:
        Top-k sparse edge set (attention renormalised over the kept
        columns) when the graph was built sparse; ``None`` on the dense
        path. Exactly one of ``attention``/``edges`` is populated by
        :func:`build_pcg`.
    """

    node_features: Tensor
    attention: Tensor | None
    edges: SparseEdges | None = None

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]


def build_pcg(
    node_features: Tensor,
    attention_module: PairwiseAdditiveAttention,
    sparsity: GraphSparsityConfig | None = None,
) -> PatternCorrelationGraph:
    """Construct the PCG: attention edges over node features.

    Dense by default (every pair has a learned weight). With a
    ``sparsity`` config that elects the sparse representation for this
    station count, each row keeps its top-k columns — exact score
    selection via the additive attention's monotone destination term
    (see :meth:`PairwiseAdditiveAttention.sparse_forward`), softmax
    renormalised over the kept set.
    """
    if node_features.ndim != 2:
        raise ValueError(f"node features must be (n, f), got {node_features.shape}")
    n = node_features.shape[0]
    if sparsity is not None and sparsity.use_sparse(n):
        k = sparsity.row_k(n)
        alpha, columns = attention_module.sparse_forward(node_features, k)
        edges = SparseEdges(
            indices=np.broadcast_to(columns, (n, k)),
            weights=alpha,
            valid=np.ones((n, k), dtype=bool),
            full_coverage=k >= n,
            block_rows=sparsity.block_rows,
        )
        return PatternCorrelationGraph(
            node_features=node_features, attention=None, edges=edges
        )
    attention = attention_module(node_features)
    return PatternCorrelationGraph(node_features=node_features, attention=attention)

"""Spatial-temporal graph generation (paper Sec. IV).

``FlowConvolution`` learns dynamic node features from flow windows;
``build_fcg`` and ``build_pcg`` turn those features into the two
spatial-temporal graphs STGNN-DJD's GNN consumes.
"""

from repro.graphs.flow_convolution import FlowConvolution, FlowConvolutionOutput
from repro.graphs.fcg import FlowConvolutedGraph, build_fcg
from repro.graphs.pcg import PatternCorrelationGraph, build_pcg

__all__ = [
    "FlowConvolution",
    "FlowConvolutionOutput",
    "FlowConvolutedGraph",
    "build_fcg",
    "PatternCorrelationGraph",
    "build_pcg",
]

"""Spatial-temporal graph generation (paper Sec. IV).

``FlowConvolution`` learns dynamic node features from flow windows;
``build_fcg`` and ``build_pcg`` turn those features into the two
spatial-temporal graphs STGNN-DJD's GNN consumes — dense ``(n, n)``
matrices at small scale, top-k :class:`SparseEdges` structures at paper
scale (see :mod:`repro.graphs.sparse`).
"""

from repro.graphs.flow_convolution import FlowConvolution, FlowConvolutionOutput
from repro.graphs.sparse import (
    VALID_GRAPH_MODES,
    GraphSparsityConfig,
    SparseEdges,
    topk_row_indices,
)
from repro.graphs.fcg import (
    FlowConvolutedGraph,
    SparseFlowConvolutedGraph,
    build_fcg,
)
from repro.graphs.pcg import PatternCorrelationGraph, build_pcg

__all__ = [
    "FlowConvolution",
    "FlowConvolutionOutput",
    "FlowConvolutedGraph",
    "SparseFlowConvolutedGraph",
    "build_fcg",
    "PatternCorrelationGraph",
    "build_pcg",
    "GraphSparsityConfig",
    "SparseEdges",
    "VALID_GRAPH_MODES",
    "topk_row_indices",
]

"""Sparse top-k edge structures for the spatial-temporal graphs.

At paper scale (Divvy's Chicago network: n = 571 stations) the dense
``(n, n)`` edge matrices of the FCG/PCG stack stop being free: every
attention head of every PatternGNN layer materialises an ``n x n`` score
matrix, softmax and aggregation, and every FlowGNN layer a dense
weighted pooling — O(n^2) memory and O(n^2 f) FLOPs per layer per slot.
This module provides the shared sparse representation both graphs emit
instead: each node keeps its ``k`` strongest incoming edges as aligned
``(n, k)`` index/weight arrays (a padded CSR — row pointers are implied
by the fixed row width; :meth:`SparseEdges.to_csr` yields the classic
three-array form).

Design rules that make the representation exact where it must be:

* **Indices are structural, weights differentiable.** Edge selection is
  computed on raw numpy data (like the FCG mask) and never
  differentiated through; the kept weights remain a recorded tensor
  expression, so gradients flow exactly as on the dense path.
* **Full coverage degenerates to dense, bitwise.** When ``k >= n`` every
  row keeps all columns in ascending order: gathers become identity
  copies and the blocked kernels collapse to the single dense matmul,
  so float64 results are bit-for-bit identical to the dense path. This
  is the parity tier the golden tests pin; genuine ``k < n`` sparsity is
  an approximation with documented tolerance (see DESIGN.md).
* **Padded slots carry weight exactly 0** (and ``valid`` False), so
  scattering back to dense form needs no masking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import Tensor

#: Graph representation modes: ``dense`` always materialises ``(n, n)``
#: edges, ``sparse`` always emits top-k edges, ``auto`` switches to
#: sparse only when the station count exceeds ``top_k`` (so small cities
#: — every existing test/bench — keep the dense path bit-for-bit).
VALID_GRAPH_MODES = ("auto", "dense", "sparse")


@dataclass(frozen=True, slots=True)
class GraphSparsityConfig:
    """How the FCG/PCG builders represent their edges.

    Attributes
    ----------
    mode:
        One of :data:`VALID_GRAPH_MODES`.
    top_k:
        Maximum kept in-edges per node (including the self loop).
    block_rows:
        Row-block size for the gather/scatter aggregation kernels
        (:func:`repro.tensor.ops.edge_aggregate`,
        :func:`repro.tensor.ops.sdp_attention`) — bounds transient
        memory to ``block_rows * top_k * f`` per block.
    """

    mode: str = "auto"
    top_k: int = 64
    block_rows: int = 256

    def __post_init__(self) -> None:
        if self.mode not in VALID_GRAPH_MODES:
            raise ValueError(
                f"unknown graph mode {self.mode!r}; choose from {VALID_GRAPH_MODES}"
            )
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.block_rows < 1:
            raise ValueError("block_rows must be >= 1")

    def use_sparse(self, num_nodes: int) -> bool:
        """Whether a graph over ``num_nodes`` stations goes sparse."""
        if self.mode == "dense":
            return False
        if self.mode == "sparse":
            return True
        return num_nodes > self.top_k

    def row_k(self, num_nodes: int) -> int:
        """Kept edges per row — ``top_k`` capped by the station count."""
        return min(self.top_k, num_nodes)


@dataclass(frozen=True, slots=True)
class SparseEdges:
    """Top-k incoming edges per node, as aligned ``(n, k)`` arrays.

    Attributes
    ----------
    indices:
        ``(n, k)`` int — column (source-node) ids per row, strictly
        ascending and distinct within each row.
    weights:
        ``(n, k)`` differentiable edge weights, exactly 0 where
        ``valid`` is False.
    valid:
        ``(n, k)`` bool — True where the slot is a real edge (a row with
        fewer than ``k`` neighbors still lists ``k`` candidate columns;
        the surplus slots are invalid and weightless).
    full_coverage:
        True when ``k == n`` and every row keeps all columns in
        ascending order — the bitwise-dense degenerate case the
        aggregation kernels turn into a single matmul.
    block_rows:
        Row-block size forwarded to the aggregation kernels.
    """

    indices: np.ndarray
    weights: Tensor
    valid: np.ndarray
    full_coverage: bool
    block_rows: int = 256

    def __post_init__(self) -> None:
        if self.indices.shape != self.valid.shape or self.indices.shape != tuple(
            self.weights.shape
        ):
            raise ValueError(
                "indices/weights/valid shapes disagree: "
                f"{self.indices.shape} vs {tuple(self.weights.shape)} vs {self.valid.shape}"
            )

    @property
    def num_nodes(self) -> int:
        return self.indices.shape[0]

    @property
    def max_degree(self) -> int:
        """The row width ``k`` (kept edges per node, valid or not)."""
        return self.indices.shape[1]

    @property
    def nnz(self) -> int:
        """Number of real (valid) edges."""
        return int(self.valid.sum())

    def neighbor_counts(self) -> np.ndarray:
        """Valid in-degree per node (the FCG diagnostic contract)."""
        return self.valid.sum(axis=1)

    def to_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classic three-array CSR ``(indptr, col_indices, values)``.

        Drops the invalid padding slots; values are the current weight
        data (detached numpy, not differentiable).
        """
        flat_valid = self.valid.ravel()
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(self.valid.sum(axis=1), out=indptr[1:])
        return (
            indptr,
            self.indices.ravel()[flat_valid].astype(np.int64, copy=False),
            np.asarray(self.weights.data).ravel()[flat_valid],
        )

    def to_dense_weights(self) -> np.ndarray:
        """Scatter the weights back to a dense ``(n, n)`` numpy array.

        Parity/diagnostic helper; padded slots scatter harmlessly
        because their weight is exactly 0.
        """
        n = self.num_nodes
        dense = np.zeros((n, n), dtype=self.weights.data.dtype)
        rows = np.broadcast_to(np.arange(n)[:, None], self.indices.shape)
        np.add.at(dense, (rows, self.indices), np.asarray(self.weights.data))
        return dense

    def to_dense_mask(self) -> np.ndarray:
        """Dense boolean adjacency of the valid edges."""
        n = self.num_nodes
        mask = np.zeros((n, n), dtype=bool)
        rows = np.broadcast_to(np.arange(n)[:, None], self.indices.shape)
        mask[rows[self.valid], self.indices[self.valid]] = True
        return mask


def topk_row_indices(priority: np.ndarray, k: int) -> np.ndarray:
    """Column indices of the ``k`` largest entries per row, ascending.

    ``priority`` is a raw ``(n, n)`` score array (higher = keep; use
    ``np.inf`` to force a column, e.g. the diagonal self loop). With
    ``k >= n`` this returns every column — the full-coverage layout whose
    gathers are identity copies. Ties resolve by ``np.argpartition``
    (deterministic for a fixed numpy build).
    """
    rows, cols = priority.shape
    if k >= cols:
        return np.broadcast_to(np.arange(cols), (rows, cols))
    kept = np.argpartition(priority, cols - k, axis=1)[:, cols - k :]
    return np.sort(kept, axis=1)

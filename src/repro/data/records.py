"""Trip records — the raw unit of bike-share data (paper Sec. III-A).

A trip is ``{rid, s_o, s_d, t_s, t_e}``: trip id, origin station,
destination station, start (checkout) time and end (return) time. Times
are seconds since the start of the observation window, which keeps the
library independent of any calendar/timezone handling while preserving
everything the model consumes (slot index, time-of-day, day-of-week).
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_DAY = 86_400
MAX_TRIP_SECONDS = 24 * 3600  # paper: trips longer than 24h are abnormal


@dataclass(frozen=True, slots=True)
class TripRecord:
    """One bike trip.

    Attributes
    ----------
    trip_id:
        Unique identifier within a dataset.
    origin:
        Station id the bike was checked out from (``s_o``).
    destination:
        Station id the bike was returned to (``s_d``).
    start_time:
        Checkout time, seconds since the window start (``t_s``).
    end_time:
        Return time, seconds since the window start (``t_e``).
    """

    trip_id: int
    origin: int
    destination: int
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Trip duration in seconds (may be negative for dirty records)."""
        return self.end_time - self.start_time

    def start_slot(self, slot_seconds: float) -> int:
        """Index of the time slot the trip starts in."""
        return int(self.start_time // slot_seconds)

    def end_slot(self, slot_seconds: float) -> int:
        """Index of the time slot the trip ends in."""
        return int(self.end_time // slot_seconds)

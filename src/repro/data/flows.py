"""Building inflow/outflow matrices from trip records (paper Sec. III-A).

For a window of ``T`` slots and ``n`` stations:

* ``outflow[t, i, j]`` — bikes checked out from station ``i`` during slot
  ``t`` and (eventually) returned to station ``j``; ``t`` is the
  *checkout* slot (paper's ``O^t_{i,j}``).
* ``inflow[t, i, j]`` — bikes returned to station ``i`` during slot ``t``
  that had been borrowed from station ``j``; ``t`` is the *return* slot
  (paper's ``I^t_{i,j}``).

So a trip ``i --(t_s .. t_e)--> j`` increments ``outflow[slot(t_s), i, j]``
and ``inflow[slot(t_e), j, i]`` — exactly the paper's bookkeeping.

Demand ``x^t_i = sum_j outflow[t, i, j]`` and supply
``y^t_i = sum_j inflow[t, i, j]`` follow by row sums.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import TripRecord


def build_flow_tensors(
    trips: list[TripRecord],
    num_stations: int,
    num_slots: int,
    slot_seconds: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate trips into ``(T, n, n)`` inflow and outflow tensors.

    Trips whose checkout slot falls outside ``0..num_slots-1`` are
    rejected (they indicate a mis-sized window); trips that *end* after
    the window contribute to outflow only, mirroring a live system where
    the bike is still in transit at the horizon.
    """
    if num_stations <= 0 or num_slots <= 0:
        raise ValueError("num_stations and num_slots must be positive")
    if slot_seconds <= 0:
        raise ValueError(f"slot_seconds must be positive, got {slot_seconds}")

    inflow = np.zeros((num_slots, num_stations, num_stations))
    outflow = np.zeros((num_slots, num_stations, num_stations))
    for trip in trips:
        start_slot = trip.start_slot(slot_seconds)
        end_slot = trip.end_slot(slot_seconds)
        if not 0 <= start_slot < num_slots:
            raise ValueError(
                f"trip {trip.trip_id} starts in slot {start_slot}, "
                f"outside the window of {num_slots} slots"
            )
        outflow[start_slot, trip.origin, trip.destination] += 1.0
        if 0 <= end_slot < num_slots:
            inflow[end_slot, trip.destination, trip.origin] += 1.0
    return inflow, outflow


def demand_supply(inflow: np.ndarray, outflow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-slot station demand and supply from the flow tensors.

    Returns ``(demand, supply)``, each ``(T, n)``: demand is total
    checkouts from a station per slot (Def. 1: ``x^t_i = sum_j O^t_{i,j}``),
    supply is total returns (``y^t_i = sum_j I^t_{i,j}``).
    """
    _check_flow_pair(inflow, outflow)
    return outflow.sum(axis=2), inflow.sum(axis=2)


def _check_flow_pair(inflow: np.ndarray, outflow: np.ndarray) -> None:
    if inflow.shape != outflow.shape:
        raise ValueError(
            f"inflow shape {inflow.shape} != outflow shape {outflow.shape}"
        )
    if inflow.ndim != 3 or inflow.shape[1] != inflow.shape[2]:
        raise ValueError(f"flow tensors must be (T, n, n), got {inflow.shape}")

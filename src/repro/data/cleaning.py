"""Data cleansing rules from the paper (Sec. VII-A).

The paper filters out "data with abnormal trip times (e.g., negative or
more than 24 hours) or missing origin/destination stations". We apply
exactly those rules and report what was dropped, because silently
discarding records is how reproduction bugs hide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.records import MAX_TRIP_SECONDS, TripRecord


@dataclass(slots=True)
class CleaningReport:
    """Counts of records dropped per rule during :func:`clean_trips`."""

    total: int = 0
    kept: int = 0
    negative_duration: int = 0
    too_long: int = 0
    unknown_station: int = 0
    self_loop_instant: int = 0

    @property
    def dropped(self) -> int:
        return self.total - self.kept

    def as_dict(self) -> dict[str, int]:
        return {
            "total": self.total,
            "kept": self.kept,
            "dropped": self.dropped,
            "negative_duration": self.negative_duration,
            "too_long": self.too_long,
            "unknown_station": self.unknown_station,
            "self_loop_instant": self.self_loop_instant,
        }


def clean_trips(
    trips: list[TripRecord],
    num_stations: int,
    max_duration: float = MAX_TRIP_SECONDS,
) -> tuple[list[TripRecord], CleaningReport]:
    """Filter abnormal trips, returning the clean list and a report.

    Rules (each counted separately, first matching rule wins):

    1. negative or zero duration — clock errors and failed checkouts;
    2. duration above ``max_duration`` (24h default, per the paper);
    3. origin or destination outside ``0..num_stations-1`` — the
       "missing station" case (real exports use sentinel ids / blanks,
       which loaders map to -1);
    4. instantaneous self-loops (same station, < 60 s) — dock re-racks,
       not trips.
    """
    if num_stations <= 0:
        raise ValueError(f"num_stations must be positive, got {num_stations}")
    report = CleaningReport(total=len(trips))
    kept: list[TripRecord] = []
    for trip in trips:
        duration = trip.duration
        if duration <= 0:
            report.negative_duration += 1
            continue
        if duration > max_duration:
            report.too_long += 1
            continue
        if not (0 <= trip.origin < num_stations) or not (
            0 <= trip.destination < num_stations
        ):
            report.unknown_station += 1
            continue
        if trip.origin == trip.destination and duration < 60.0:
            report.self_loop_instant += 1
            continue
        kept.append(trip)
    report.kept = len(kept)
    return kept, report

"""Adapters for real bike-share exports (Divvy / Metro column layouts).

The paper's datasets are public CSV exports. This module parses their
native column layouts — ISO timestamps and arbitrary station ids — into
the library's canonical :class:`~repro.data.TripRecord` +
:class:`~repro.data.StationRegistry` form, so a user with the actual
files runs the identical downstream pipeline
(clean → flows → dataset → model).

Supported layouts (auto-detected by header):

* **Divvy-style** (Chicago): ``ride_id, started_at, ended_at,
  start_station_id, end_station_id, start_lat, start_lng, end_lat,
  end_lng`` (2020+ schema; the 2018 schema's ``trip_id, start_time,
  end_time, from_station_id, to_station_id`` is also handled).
* **Metro-style** (Los Angeles): ``trip_id, start_time, end_time,
  start_station, end_station, start_lat, start_lon, end_lat, end_lon``.

Timestamps are parsed as naive local time (the exports carry none) and
converted to seconds since the first observed midnight, matching the
library's day-aligned slotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path

from repro.data.records import SECONDS_PER_DAY, TripRecord
from repro.data.stations import Station, StationRegistry

# (trip id, start, end, origin, destination) column aliases per layout.
_LAYOUTS = {
    "divvy-2020": ("ride_id", "started_at", "ended_at",
                   "start_station_id", "end_station_id"),
    "divvy-2018": ("trip_id", "start_time", "end_time",
                   "from_station_id", "to_station_id"),
    "metro": ("trip_id", "start_time", "end_time",
              "start_station", "end_station"),
}

_TIME_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%m/%d/%Y %H:%M",
    "%m/%d/%Y %H:%M:%S",
    "%Y-%m-%d %H:%M",
)


@dataclass(frozen=True, slots=True)
class RealImport:
    """Result of importing a real export: canonical trips + stations."""

    trips: list[TripRecord]
    registry: StationRegistry
    layout: str
    window_start: datetime
    unparseable_rows: int


def detect_layout(fieldnames: list[str]) -> str:
    """Identify the export layout from the CSV header."""
    columns = set(fieldnames)
    for layout, needed in _LAYOUTS.items():
        if set(needed) <= columns:
            return layout
    raise ValueError(
        f"unrecognised trip export header: {sorted(columns)}; "
        f"expected one of the Divvy/Metro layouts"
    )


def parse_timestamp(raw: str) -> datetime | None:
    raw = raw.strip()
    for fmt in _TIME_FORMATS:
        try:
            return datetime.strptime(raw, fmt)
        except ValueError:
            continue
    return None


def read_real_trips(path: str | Path) -> RealImport:
    """Parse a Divvy/Metro-style trips CSV into canonical form.

    Station ids are remapped to the contiguous ``0..n-1`` range (sorted
    by original id). Rows whose timestamps or station ids fail to parse
    become trips with sentinel values that the standard cleaning rules
    drop — the import never silently discards data, it only marks it.
    Station coordinates are taken from the per-row lat/lng columns when
    present (mean over observations), else zero.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        layout = detect_layout(reader.fieldnames or [])
        id_col, start_col, end_col, origin_col, dest_col = _LAYOUTS[layout]
        rows = list(reader)

    # First pass: station ids and the window start.
    raw_ids: set[str] = set()
    first_start: datetime | None = None
    for row in rows:
        for col in (origin_col, dest_col):
            value = (row.get(col) or "").strip()
            if value:
                raw_ids.add(value)
        started = parse_timestamp(row.get(start_col, ""))
        if started and (first_start is None or started < first_start):
            first_start = started
    if first_start is None:
        raise ValueError(f"{path}: no parseable start timestamps")
    window_start = first_start.replace(hour=0, minute=0, second=0, microsecond=0)

    id_map = {raw: index for index, raw in enumerate(sorted(raw_ids))}

    # Coordinate columns per layout (optional).
    lat_cols = {"divvy-2020": ("start_lat", "start_lng"),
                "metro": ("start_lat", "start_lon")}.get(layout)

    coords: dict[int, list[tuple[float, float]]] = {}
    trips: list[TripRecord] = []
    unparseable = 0
    for index, row in enumerate(rows):
        started = parse_timestamp(row.get(start_col, ""))
        ended = parse_timestamp(row.get(end_col, ""))
        origin = id_map.get((row.get(origin_col) or "").strip(), -1)
        destination = id_map.get((row.get(dest_col) or "").strip(), -1)
        if started is None or ended is None:
            # Sentinel negative-duration trip: dropped by clean_trips.
            unparseable += 1
            trips.append(TripRecord(index, origin, destination, 0.0, -1.0))
            continue
        start_s = (started - window_start).total_seconds()
        end_s = (ended - window_start).total_seconds()
        trips.append(TripRecord(index, origin, destination, start_s, end_s))
        if lat_cols and origin >= 0:
            try:
                lat = float(row[lat_cols[0]])
                lon = float(row[lat_cols[1]])
                coords.setdefault(origin, []).append((lon, lat))
            except (KeyError, TypeError, ValueError):
                pass

    stations = []
    for raw, station_id in sorted(id_map.items(), key=lambda kv: kv[1]):
        observed = coords.get(station_id, [])
        if observed:
            lon = sum(c[0] for c in observed) / len(observed)
            lat = sum(c[1] for c in observed) / len(observed)
        else:
            lon = lat = 0.0
        stations.append(Station(station_id, lon, lat, name=str(raw)))
    registry = StationRegistry(stations)

    return RealImport(
        trips=trips,
        registry=registry,
        layout=layout,
        window_start=window_start,
        unparseable_rows=unparseable,
    )


def window_days(import_result: RealImport) -> int:
    """Whole days spanned by the imported trips (for flow slotting)."""
    latest = max(
        (trip.end_time for trip in import_result.trips if trip.end_time > 0),
        default=0.0,
    )
    return int(latest // SECONDS_PER_DAY) + 1

"""Min-Max normalization (paper Sec. VII-A).

The paper rescales demand and supply to ``[0, 1]`` before training and
inverts the scaling before computing metrics. The scaler is fitted on
training data only, to avoid test-set leakage.
"""

from __future__ import annotations

import numpy as np


class MinMaxNormalizer:
    """Affine map of an array onto ``[0, 1]`` with exact inversion.

    Degenerate case: if the fitted data is constant (``max == min``) the
    transform maps everything to 0 and the inverse restores the constant.
    """

    def __init__(self) -> None:
        self.minimum: float | None = None
        self.maximum: float | None = None

    @property
    def fitted(self) -> bool:
        return self.minimum is not None

    def fit(self, values: np.ndarray) -> "MinMaxNormalizer":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit a normalizer on an empty array")
        self.minimum = float(values.min())
        self.maximum = float(values.max())
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        span = self.maximum - self.minimum
        if span == 0.0:
            return np.zeros_like(values)
        return (values - self.minimum) / span

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        span = self.maximum - self.minimum
        if span == 0.0:
            return np.full_like(values, self.minimum)
        return values * span + self.minimum

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("normalizer used before fit()")

"""Synthetic bike-share city generator.

The paper evaluates on proprietary exports of the Divvy (Chicago) and
Metro (Los Angeles) systems, which are unreachable offline. This module
generates trip data with the statistical structure those datasets exhibit
and that STGNN-DJD's design exploits:

* **Commuter structure** — stations belong to *home*, *work* or *school*
  zones; home→work flow peaks in the morning rush (07-10), work→home in
  the evening rush (17-20), matching the paper's rush-hour experiments.
* **Daily and weekly periodicity** — slot-of-day profiles repeat each
  day (the long-term dependency the flow convolution targets) and
  weekends are flattened (day-of-week signal).
* **Distance decay with exceptions** — trip affinity follows a gravity
  kernel, *except* for designated "school twin" station pairs that are
  geographically distant yet share demand-supply patterns (the paper's
  two-schools example motivating the pattern correlation graph and the
  Sec. VIII locality case study).
* **Noise** — Poisson trip counts, lognormal travel-time jitter, and an
  optional fraction of dirty records (negative durations, >24h trips,
  unknown stations) to exercise the cleaning path.

Presets come in four size tiers — ``tiny`` / ``la_like`` /
``chicago_like`` / ``chicago_571`` — documented in one place on
:class:`SyntheticCityConfig`. ``chicago_like`` vs ``la_like`` mirrors
the paper's *traffic-density* contrast at test-friendly station counts;
``chicago_571`` is the paper-scale tier (571 stations at the real Divvy
trip rate) that the sparse graph stack targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.cleaning import clean_trips
from repro.data.dataset import BikeShareDataset, FlowDataConfig
from repro.data.flows import build_flow_tensors
from repro.data.records import SECONDS_PER_DAY, TripRecord
from repro.data.stations import Station, StationRegistry

# Station functional types.
HOME, WORK, SCHOOL = 0, 1, 2

_TYPE_NAMES = {HOME: "home", WORK: "work", SCHOOL: "school"}


@dataclass(frozen=True, slots=True)
class SyntheticCityConfig:
    """Parameters of the generative city model.

    Size tiers — the canonical reference for every preset.
    ``trips_per_day`` always scales as ``rate x num_stations``:

    ============== ======== ================= ==================================
    preset         stations trips/station/day role
    ============== ======== ================= ==================================
    tiny                  8                40 unit tests (hourly slots, 2-day
                                              long window)
    la_like              16                60 Metro-style: small & sparse traffic
    chicago_like         40               300 Divvy-style *traffic density* at a
                                              test-friendly station count
    chicago_571         571                30 paper scale: the real Divvy station
                                              count at the real per-station rate
                                              (3.15M trips / 184 d / 571 ≈ 30)
    ============== ======== ================= ==================================

    ``chicago_like``'s 300 trips/station/day is a deliberately heavy
    rate so density effects show at 40 stations; ``chicago_571`` uses
    the measured real-system rate because at 571 stations the station
    count itself supplies the load.

    Attributes
    ----------
    name:
        Dataset label (appears in experiment printouts).
    num_stations:
        Total stations; work stations cluster downtown, home stations
        ring the periphery, school pairs sit on opposite sides.
    days:
        Length of the observation window in days.
    trips_per_day:
        Expected (Poisson mean) total trips per weekday.
    slot_seconds:
        Slot duration for the derived dataset (900 s in the paper).
    short_window / long_days:
        ``k`` and ``d`` for the derived :class:`FlowDataConfig`.
    school_pairs:
        Number of distant station pairs sharing a school-like profile.
    weekend_factor:
        Multiplier on weekday intensity applied on days 5 and 6 of each
        week (flattened, non-commuter traffic).
    dirty_fraction:
        Fraction of additional corrupt trip records injected, to
        exercise the cleaning rules.
    bike_speed_kmh:
        Mean riding speed used to derive travel (and hence inflow lag)
        times from inter-station distance.
    day_factor_sigma:
        Scale of day-to-day demand shocks (weather, events): each day's
        intensity is multiplied by a lognormal AR(1) factor. Real
        systems have strong day effects, and they are what make the
        *recent flow window* informative beyond pure periodicity —
        without them, the optimal predictor degenerates to a per-slot
        historical average. 0 disables.
    day_factor_rho:
        AR(1) correlation of consecutive day factors.
    slot_factor_sigma / slot_factor_rho:
        Scale and AR(1) correlation of slot-level citywide intensity
        shocks (weather evolving through the day). These make the very
        recent flow window predictive of the next slot — the short-term
        dependency the paper's flow convolution targets.
    station_drift_sigma / station_drift_rho:
        Per-station popularity drift: each station's attractiveness
        follows its own lognormal AR(1) across days. This is the
        *dynamic dependency* the paper is about — station relationships
        measured on the training period go stale, so methods relying on
        statically precomputed correlation/interaction graphs degrade
        while per-slot graph regeneration keeps up. 0 disables.
    """

    name: str = "synthetic"
    num_stations: int = 20
    days: int = 14
    trips_per_day: float = 2000.0
    slot_seconds: float = 900.0
    short_window: int = 96
    long_days: int = 7
    school_pairs: int = 1
    weekend_factor: float = 0.55
    dirty_fraction: float = 0.0
    bike_speed_kmh: float = 12.0
    popularity_sigma: float = 0.35  # lognormal spread of station popularity
    day_factor_sigma: float = 0.25
    day_factor_rho: float = 0.6
    slot_factor_sigma: float = 0.15
    slot_factor_rho: float = 0.9
    station_drift_sigma: float = 0.0
    station_drift_rho: float = 0.8
    center_lon: float = -87.63
    center_lat: float = 41.88
    city_radius_km: float = 6.0

    def __post_init__(self) -> None:
        if self.num_stations < 4:
            raise ValueError("need at least 4 stations for a meaningful city")
        if self.days < 2:
            raise ValueError("need at least 2 days of data")
        if self.trips_per_day <= 0:
            raise ValueError("trips_per_day must be positive")
        if self.school_pairs < 0 or 2 * self.school_pairs > self.num_stations // 2:
            raise ValueError("too many school pairs for the station count")
        if not 0.0 <= self.dirty_fraction < 1.0:
            raise ValueError("dirty_fraction must be in [0, 1)")
        if SECONDS_PER_DAY % self.slot_seconds != 0:
            raise ValueError("slot_seconds must divide a day evenly")

    @property
    def slots_per_day(self) -> int:
        return int(SECONDS_PER_DAY // self.slot_seconds)

    @classmethod
    def chicago_like(cls, days: int = 21, num_stations: int = 40) -> "SyntheticCityConfig":
        """Divvy-style *traffic density* (300 trips/station/day) at a
        test-friendly 40 stations — not the paper's station count; use
        :meth:`chicago_571` for the real 571-station scale."""
        return cls(
            name="chicago-like",
            num_stations=num_stations,
            days=days,
            trips_per_day=300.0 * num_stations,
            school_pairs=2,
            center_lon=-87.63,
            center_lat=41.88,
            city_radius_km=8.0,
        )

    @classmethod
    def la_like(cls, days: int = 21, num_stations: int = 16) -> "SyntheticCityConfig":
        """Small network, sparse traffic — the Metro-style preset."""
        return cls(
            name="la-like",
            num_stations=num_stations,
            days=days,
            trips_per_day=60.0 * num_stations,
            school_pairs=1,
            center_lon=-118.24,
            center_lat=34.05,
            city_radius_km=5.0,
        )

    @classmethod
    def chicago_571(cls, days: int = 10) -> "SyntheticCityConfig":
        """Paper-scale Divvy: 571 stations at the real per-station rate.

        571 stations and ~30 trips/station/day match the paper's Chicago
        export (3.15M trips / 184 days / 571 stations ≈ 30). Thirty-minute
        slots with a one-day short window (k=48) and a 3-day long window
        keep one training epoch tractable on a single core while the
        (slots, n, n) flow tensors stay the dominant memory term; trip
        generation is day-chunked (see :func:`generate_trips`) so the
        intensity model never materialises the full window at once.
        """
        return cls(
            name="chicago-571",
            num_stations=571,
            days=days,
            trips_per_day=30.0 * 571,
            slot_seconds=1800.0,
            short_window=48,
            long_days=3,
            school_pairs=4,
            center_lon=-87.63,
            center_lat=41.88,
            city_radius_km=10.0,
        )

    @classmethod
    def tiny(cls, days: int = 10, num_stations: int = 8) -> "SyntheticCityConfig":
        """Minimal city with hourly slots, for fast unit tests."""
        return cls(
            name="tiny",
            num_stations=num_stations,
            days=days,
            trips_per_day=40.0 * num_stations,
            slot_seconds=3600.0,
            short_window=24,
            long_days=2,
            school_pairs=1,
        )


@dataclass(frozen=True, slots=True)
class SyntheticCity:
    """The latent city: stations, types, and the trip-intensity model."""

    config: SyntheticCityConfig
    registry: StationRegistry
    station_types: np.ndarray  # (n,) in {HOME, WORK, SCHOOL}
    school_pair_ids: list[tuple[int, int]]
    base_affinity: np.ndarray  # (n, n) time-free OD affinity
    weekday_profiles: np.ndarray  # (3, 3, slots_per_day) type->type intensity
    weekend_profile: np.ndarray  # (slots_per_day,)
    slot_factors: np.ndarray  # (days * slots_per_day,) citywide shocks
    station_day_factors: np.ndarray  # (days, n) per-station popularity drift


def _km_to_lonlat(dx_km: float, dy_km: float, lat: float) -> tuple[float, float]:
    """Convert a local east/north displacement in km to lon/lat deltas."""
    dlat = dy_km / 110.574
    dlon = dx_km / (111.320 * math.cos(math.radians(lat)))
    return dlon, dlat


def _place_stations(config: SyntheticCityConfig, rng: np.random.Generator):
    """Lay out stations: work core, home ring, distant school pairs."""
    n = config.num_stations
    n_school = 2 * config.school_pairs
    n_work = max(2, (n - n_school) // 3)
    n_home = n - n_school - n_work

    positions = []  # (dx_km, dy_km)
    types = []
    # Work stations: tight downtown cluster.
    for _ in range(n_work):
        radius = abs(rng.normal(0.0, config.city_radius_km * 0.15))
        angle = rng.uniform(0, 2 * math.pi)
        positions.append((radius * math.cos(angle), radius * math.sin(angle)))
        types.append(WORK)
    # Home stations: ring around the core.
    for _ in range(n_home):
        radius = rng.uniform(config.city_radius_km * 0.45, config.city_radius_km)
        angle = rng.uniform(0, 2 * math.pi)
        positions.append((radius * math.cos(angle), radius * math.sin(angle)))
        types.append(HOME)
    # School pairs: placed on opposite edges so each pair is distant yet
    # pattern-correlated — the configuration the PCG is built to catch.
    school_pair_ids: list[tuple[int, int]] = []
    for pair in range(config.school_pairs):
        angle = rng.uniform(0, 2 * math.pi)
        radius = config.city_radius_km * 0.9
        first = (radius * math.cos(angle), radius * math.sin(angle))
        second = (-first[0], -first[1])
        idx = len(positions)
        positions.extend([first, second])
        types.extend([SCHOOL, SCHOOL])
        school_pair_ids.append((idx, idx + 1))

    stations = []
    for station_id, ((dx, dy), stype) in enumerate(zip(positions, types)):
        dlon, dlat = _km_to_lonlat(dx, dy, config.center_lat)
        stations.append(
            Station(
                station_id,
                config.center_lon + dlon,
                config.center_lat + dlat,
                name=f"{_TYPE_NAMES[stype]}-{station_id}",
            )
        )
    return StationRegistry(stations), np.array(types), school_pair_ids


def _time_profiles(slots_per_day: int) -> tuple[np.ndarray, np.ndarray]:
    """Slot-of-day intensity profiles per (origin type, destination type).

    Built from Gaussian bumps at the morning (08:30) and evening (17:30)
    rush peaks plus a flat base — home→work rides dominate mornings,
    work→home evenings, school traffic has its own bell-schedule bumps.
    """
    hours = (np.arange(slots_per_day) + 0.5) * (24.0 / slots_per_day)

    def bump(center: float, width: float) -> np.ndarray:
        return np.exp(-0.5 * ((hours - center) / width) ** 2)

    base = 0.15 + 0.1 * bump(13.0, 3.0)  # light midday activity
    morning = bump(8.5, 1.1)
    evening = bump(17.5, 1.2)
    school_in = bump(8.0, 0.8)
    school_out = bump(15.5, 1.0)

    profiles = np.zeros((3, 3, slots_per_day))
    profiles[HOME, WORK] = base + 3.0 * morning + 0.3 * evening
    profiles[WORK, HOME] = base + 0.3 * morning + 3.0 * evening
    profiles[HOME, HOME] = base + 0.4 * bump(11.0, 3.0)
    profiles[WORK, WORK] = base + 0.8 * bump(12.5, 1.5)  # lunch rides
    profiles[HOME, SCHOOL] = base + 2.5 * school_in
    profiles[SCHOOL, HOME] = base + 2.5 * school_out
    profiles[WORK, SCHOOL] = base * 0.5 + 0.8 * school_out  # pickups
    profiles[SCHOOL, WORK] = base * 0.5 + 0.8 * school_in
    profiles[SCHOOL, SCHOOL] = base * 0.5

    weekend = 0.25 + 0.5 * bump(14.0, 4.0)  # flat leisure curve
    return profiles, weekend


def build_city(config: SyntheticCityConfig, seed: int = 0) -> SyntheticCity:
    """Construct the latent city model (stations + intensity surfaces)."""
    rng = np.random.default_rng(seed)
    registry, types, school_pairs = _place_stations(config, rng)
    distances = registry.distance_matrix()

    # Gravity affinity with distance decay; people rarely ride between
    # adjacent stations (walking wins), hence the short-range suppression.
    popularity = rng.lognormal(
        mean=0.0, sigma=config.popularity_sigma, size=config.num_stations
    )
    decay_scale = config.city_radius_km * 0.6
    affinity = np.outer(popularity, popularity) * np.exp(-distances / decay_scale)
    affinity *= 1.0 - np.exp(-((distances / 0.5) ** 2))  # suppress <~0.5 km hops
    np.fill_diagonal(affinity, 0.0)

    profiles, weekend = _time_profiles(config.slots_per_day)
    return SyntheticCity(
        config=config,
        registry=registry,
        station_types=types,
        school_pair_ids=school_pairs,
        base_affinity=affinity,
        weekday_profiles=profiles,
        weekend_profile=weekend,
        slot_factors=_citywide_factors(config, rng),
        station_day_factors=_station_drift(config, rng),
    )


def _station_drift(config: SyntheticCityConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-station daily popularity factors, lognormal AR(1) across days."""
    sigma, rho = config.station_drift_sigma, config.station_drift_rho
    n = config.num_stations
    if sigma == 0.0:
        return np.ones((config.days, n))
    log_f = np.zeros((config.days, n))
    log_f[0] = sigma * rng.normal(size=n)
    innovation = sigma * np.sqrt(max(1.0 - rho**2, 0.0))
    for day in range(1, config.days):
        log_f[day] = rho * log_f[day - 1] + innovation * rng.normal(size=n)
    return np.exp(log_f - sigma**2 / 2.0)


def _citywide_factors(config: SyntheticCityConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-slot intensity multipliers: day-level AR(1) x slot-level AR(1).

    Both processes are lognormal with mean 1 (the -sigma^2/2 drift), so
    they perturb intensity without changing the expected total.
    """
    spd = config.slots_per_day
    total = config.days * spd

    day_log = np.zeros(config.days)
    sigma_d, rho_d = config.day_factor_sigma, config.day_factor_rho
    innovation_scale = sigma_d * np.sqrt(max(1.0 - rho_d**2, 0.0))
    for day in range(1, config.days):
        day_log[day] = rho_d * day_log[day - 1] + innovation_scale * rng.normal()
    if sigma_d > 0:
        day_log[0] = sigma_d * rng.normal()

    slot_log = np.zeros(total)
    sigma_s, rho_s = config.slot_factor_sigma, config.slot_factor_rho
    slot_scale = sigma_s * np.sqrt(max(1.0 - rho_s**2, 0.0))
    for t in range(1, total):
        slot_log[t] = rho_s * slot_log[t - 1] + slot_scale * rng.normal()

    combined = np.exp(
        day_log.repeat(spd) - sigma_d**2 / 2.0 + slot_log - sigma_s**2 / 2.0
    )
    return combined


def _base_day_intensities(city: SyntheticCity) -> tuple[np.ndarray, np.ndarray]:
    """Normalised weekday/weekend ``(n, n, spd)`` intensity surfaces.

    Normalised so a weekday totals ``config.trips_per_day`` expected
    trips; weekend days are scaled by ``weekend_factor``.
    """
    config = city.config
    types = city.station_types

    # Per-slot type->type profile expanded to station pairs.
    weekday = city.weekday_profiles[types[:, None], types[None, :], :]  # (n, n, spd)
    weekday = weekday * city.base_affinity[:, :, None]
    weekday_total = weekday.sum()
    if weekday_total <= 0:
        raise RuntimeError("degenerate city: zero total intensity")
    weekday *= config.trips_per_day / weekday_total

    weekend = city.base_affinity[:, :, None] * city.weekend_profile[None, None, :]
    weekend *= config.trips_per_day * config.weekend_factor / weekend.sum()
    return weekday, weekend


def day_intensity(
    city: SyntheticCity, day: int, weekday: np.ndarray, weekend: np.ndarray
) -> np.ndarray:
    """One day's expected trips ``(spd, n, n)``, all shock factors applied.

    Elementwise identical to the matching block of
    :func:`intensity_tensor`, so per-day consumers (chunked trip
    generation) see bit-for-bit the values of the full tensor.
    """
    config = city.config
    spd = config.slots_per_day
    day_lam = weekend if day % 7 >= 5 else weekday
    # Per-station popularity drift: origin and destination factors.
    drift = city.station_day_factors[day]
    day_lam = day_lam * drift[:, None, None] * drift[None, :, None]
    # Citywide day-level and slot-level shocks (weather, events).
    return np.moveaxis(day_lam, 2, 0) * city.slot_factors[
        day * spd : (day + 1) * spd, None, None
    ]


def intensity_tensor(city: SyntheticCity) -> np.ndarray:
    """Expected trips per (slot, origin, destination) for the full window.

    Materialises the whole ``(days * spd, n, n)`` tensor — fine for
    inspection and small cities; the generation path iterates
    :func:`day_intensity` blocks instead so paper-scale cities never
    hold more than one day of intensities.
    """
    config = city.config
    spd = config.slots_per_day
    weekday, weekend = _base_day_intensities(city)
    n = len(city.registry)
    lam = np.empty((config.days * spd, n, n))
    for day in range(config.days):
        lam[day * spd : (day + 1) * spd] = day_intensity(city, day, weekday, weekend)
    return lam


def generate_trips(
    city: SyntheticCity, seed: int = 0
) -> list[TripRecord]:
    """Sample trip records from the city's Poisson intensity model.

    Sampling is day-chunked: ``Generator.poisson`` consumes the bit
    stream per element in array order, so consecutive per-day draws are
    bitwise identical to one full-window draw while peak memory stays at
    one ``(spd, n, n)`` intensity block — at ``chicago_571`` scale that
    is ~0.13 GB instead of ~2.5 GB of intensity + count tensors.
    """
    config = city.config
    rng = np.random.default_rng(seed + 1)
    weekday, weekend = _base_day_intensities(city)
    distances = city.registry.distance_matrix()
    slot_seconds = config.slot_seconds
    spd = config.slots_per_day

    # Phase 1: all Poisson draws, day by day. ``Generator.poisson``
    # consumes the bit stream element-wise in array order, so these
    # consecutive per-day draws replay exactly the stream of one full
    # (days*spd, n, n) draw — but only one day's intensity block is ever
    # live, and each day is compacted to its nonzero entries immediately.
    sparse_counts = []
    for day in range(config.days):
        counts = rng.poisson(day_intensity(city, day, weekday, weekend))
        nonzero = np.nonzero(counts)
        sparse_counts.append((*nonzero, counts[nonzero]))

    # Phase 2: per-trip jitter draws, in the same global (t, i, j) order
    # as the pre-chunking implementation (days ascend, nonzero is
    # row-major within a day), keeping the stream bitwise unchanged.
    trips: list[TripRecord] = []
    trip_id = 0
    for day, (slot_idx, origins, destinations, values) in enumerate(sparse_counts):
        for t_local, i, j, count in zip(slot_idx, origins, destinations, values):
            t = day * spd + t_local
            for _ in range(count):
                start = (t + rng.random()) * slot_seconds
                ride_km = max(distances[i, j], 0.3)
                hours = ride_km / config.bike_speed_kmh
                duration = max(hours * 3600.0 * rng.lognormal(0.0, 0.25), 120.0)
                trips.append(
                    TripRecord(
                        trip_id=trip_id,
                        origin=int(i),
                        destination=int(j),
                        start_time=float(start),
                        end_time=float(start + duration),
                    )
                )
                trip_id += 1

    if config.dirty_fraction > 0.0:
        trips.extend(_dirty_trips(config, rng, len(trips), first_id=trip_id))
    return trips


def _dirty_trips(
    config: SyntheticCityConfig,
    rng: np.random.Generator,
    clean_count: int,
    first_id: int,
) -> list[TripRecord]:
    """Corrupt records for the cleaning path: one of three defect kinds."""
    num_dirty = int(clean_count * config.dirty_fraction / (1.0 - config.dirty_fraction))
    window = config.days * SECONDS_PER_DAY
    dirty: list[TripRecord] = []
    for offset in range(num_dirty):
        kind = rng.integers(0, 3)
        start = rng.uniform(0, window * 0.9)
        origin = int(rng.integers(0, config.num_stations))
        destination = int(rng.integers(0, config.num_stations))
        if kind == 0:  # negative duration
            end = start - rng.uniform(60, 3600)
        elif kind == 1:  # absurdly long trip
            end = start + rng.uniform(25 * 3600, 48 * 3600)
        else:  # unknown station sentinel
            end = start + rng.uniform(300, 1800)
            origin = -1
        dirty.append(TripRecord(first_id + offset, origin, destination, start, end))
    return dirty


def generate_city(
    config: SyntheticCityConfig, seed: int = 0
) -> BikeShareDataset:
    """End-to-end synthesis: city → trips → cleaning → flows → dataset.

    Runs the exact pipeline a real-data loader would, so the cleaning
    and flow-building code paths are exercised on every generation.
    """
    city = build_city(config, seed)
    trips = generate_trips(city, seed)
    clean, _report = clean_trips(trips, config.num_stations)
    num_slots = config.days * config.slots_per_day
    inflow, outflow = build_flow_tensors(
        clean, config.num_stations, num_slots, config.slot_seconds
    )
    data_config = FlowDataConfig(
        slot_seconds=config.slot_seconds,
        short_window=config.short_window,
        long_days=config.long_days,
    )
    return BikeShareDataset(
        city.registry, inflow, outflow, data_config, name=config.name
    )

"""CSV import/export of trip records and stations.

The column layout mirrors the public Divvy/Metro exports the paper uses
(trip id, start/end time, origin/destination station id and name), so a
user with the real CSVs can feed them straight into the same pipeline.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.records import TripRecord
from repro.data.stations import Station, StationRegistry

TRIP_FIELDS = ["trip_id", "start_time", "end_time", "origin", "destination"]
STATION_FIELDS = ["station_id", "longitude", "latitude", "name"]


def write_trips_csv(trips: list[TripRecord], path: str | Path) -> None:
    """Write trip records to CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRIP_FIELDS)
        for trip in trips:
            writer.writerow(
                [trip.trip_id, trip.start_time, trip.end_time, trip.origin, trip.destination]
            )


def read_trips_csv(path: str | Path) -> list[TripRecord]:
    """Read trip records from CSV.

    Missing/blank station fields become id ``-1`` (flagged later by the
    cleaning rules as "unknown station") rather than raising — real
    exports contain such rows and the paper's pipeline filters them.
    """
    path = Path(path)
    trips: list[TripRecord] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(TRIP_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"trip CSV missing columns: {sorted(missing)}")
        for row in reader:
            trips.append(
                TripRecord(
                    trip_id=int(row["trip_id"]),
                    origin=_station_field(row["origin"]),
                    destination=_station_field(row["destination"]),
                    start_time=float(row["start_time"]),
                    end_time=float(row["end_time"]),
                )
            )
    return trips


def write_stations_csv(registry: StationRegistry, path: str | Path) -> None:
    """Write the station registry to CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(STATION_FIELDS)
        for station in registry:
            writer.writerow(
                [station.station_id, station.longitude, station.latitude, station.name]
            )


def read_stations_csv(path: str | Path) -> StationRegistry:
    """Read stations from CSV, remapping ids to the contiguous 0..n-1."""
    path = Path(path)
    stations: list[Station] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(STATION_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"station CSV missing columns: {sorted(missing)}")
        for row in reader:
            stations.append(
                Station(
                    station_id=int(row["station_id"]),
                    longitude=float(row["longitude"]),
                    latitude=float(row["latitude"]),
                    name=row.get("name", ""),
                )
            )
    return StationRegistry.from_stations(stations)


def _station_field(raw: str) -> int:
    """Parse a station id; blank or non-numeric means unknown (-1)."""
    raw = raw.strip()
    if not raw:
        return -1
    try:
        return int(raw)
    except ValueError:
        return -1

"""Bike-share data substrate: records, stations, cleaning, flows, datasets.

The full pipeline is ``trips → clean_trips → build_flow_tensors →
BikeShareDataset``; :func:`generate_city` runs it end-to-end from the
synthetic city model that substitutes for the paper's Divvy/Metro data.
"""

from repro.data.records import MAX_TRIP_SECONDS, SECONDS_PER_DAY, TripRecord
from repro.data.stations import EARTH_RADIUS_KM, Station, StationRegistry, haversine_km
from repro.data.cleaning import CleaningReport, clean_trips
from repro.data.flows import build_flow_tensors, demand_supply
from repro.data.normalize import MinMaxNormalizer
from repro.data.dataset import BikeShareDataset, FlowDataConfig, FlowSample
from repro.data.synthetic import (
    HOME,
    SCHOOL,
    WORK,
    SyntheticCity,
    SyntheticCityConfig,
    build_city,
    generate_city,
    generate_trips,
    intensity_tensor,
)
from repro.data.io import (
    read_stations_csv,
    read_trips_csv,
    write_stations_csv,
    write_trips_csv,
)
from repro.data.real import RealImport, detect_layout, read_real_trips, window_days

__all__ = [
    "TripRecord",
    "SECONDS_PER_DAY",
    "MAX_TRIP_SECONDS",
    "Station",
    "StationRegistry",
    "haversine_km",
    "EARTH_RADIUS_KM",
    "CleaningReport",
    "clean_trips",
    "build_flow_tensors",
    "demand_supply",
    "MinMaxNormalizer",
    "BikeShareDataset",
    "FlowDataConfig",
    "FlowSample",
    "SyntheticCityConfig",
    "SyntheticCity",
    "build_city",
    "generate_city",
    "generate_trips",
    "intensity_tensor",
    "HOME",
    "WORK",
    "SCHOOL",
    "read_trips_csv",
    "write_trips_csv",
    "read_stations_csv",
    "write_stations_csv",
    "RealImport",
    "detect_layout",
    "read_real_trips",
    "window_days",
]

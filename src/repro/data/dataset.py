"""The central dataset object: slotted flows plus windowed sampling.

``BikeShareDataset`` holds the full ``(T, n, n)`` inflow/outflow tensors
for a city and exposes exactly what STGNN-DJD consumes at a prediction
time ``t`` (paper Sec. IV-A):

* the *short-term* window — flow matrices of the last ``k`` slots,
* the *long-term* window — flow matrices at the same slot-of-day over
  the previous ``d`` days,
* the targets — demand ``x^t`` and supply ``y^t`` per station.

It also owns the day-aligned 70/10/20 train/validation/test split and
the Min-Max normalizers fitted on training data only (Sec. VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from numpy.lib.stride_tricks import as_strided

from repro.data.flows import demand_supply
from repro.data.normalize import MinMaxNormalizer
from repro.data.records import SECONDS_PER_DAY
from repro.data.stations import StationRegistry


@dataclass(frozen=True, slots=True)
class FlowDataConfig:
    """Windowing hyperparameters for sampling model inputs.

    Attributes
    ----------
    slot_seconds:
        Duration of a time slot. The paper uses 15 minutes (900 s);
        tests use coarser slots to keep tensors small.
    short_window:
        ``k`` — number of most recent slots for short-term dependency.
        The paper sets ``k = 96`` (one full day of 15-minute slots).
    long_days:
        ``d`` — number of previous days whose same-slot matrices form
        the long-term window. The paper sets ``d = 7``.
    train_fraction / val_fraction:
        Day-aligned split fractions; the remainder is the test set.
    """

    slot_seconds: float = 900.0
    short_window: int = 96
    long_days: int = 7
    train_fraction: float = 0.7
    val_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ValueError(f"slot_seconds must be positive, got {self.slot_seconds}")
        if SECONDS_PER_DAY % self.slot_seconds != 0:
            raise ValueError(
                f"slot_seconds ({self.slot_seconds}) must divide a day evenly"
            )
        if self.short_window < 1:
            raise ValueError(f"short_window must be >= 1, got {self.short_window}")
        if self.long_days < 1:
            raise ValueError(f"long_days must be >= 1, got {self.long_days}")
        if not 0.0 < self.train_fraction < 1.0 or not 0.0 < self.val_fraction < 1.0:
            raise ValueError("split fractions must be in (0, 1)")
        if self.train_fraction + self.val_fraction >= 1.0:
            raise ValueError("train_fraction + val_fraction must leave room for a test set")

    @property
    def slots_per_day(self) -> int:
        return int(SECONDS_PER_DAY // self.slot_seconds)


@dataclass(frozen=True, slots=True)
class FlowSample:
    """Model input/target bundle for one prediction time ``t``.

    Flow windows are raw counts; normalization happens in the model or
    trainer so that a sample remains interpretable on its own.
    """

    t: int
    short_inflow: np.ndarray  # (k, n, n)
    short_outflow: np.ndarray  # (k, n, n)
    long_inflow: np.ndarray  # (d, n, n)
    long_outflow: np.ndarray  # (d, n, n)
    target_demand: np.ndarray  # (n,)
    target_supply: np.ndarray  # (n,)


class BikeShareDataset:
    """Slotted bike-share flows for one city."""

    def __init__(
        self,
        registry: StationRegistry,
        inflow: np.ndarray,
        outflow: np.ndarray,
        config: FlowDataConfig,
        name: str = "",
    ) -> None:
        inflow = np.asarray(inflow, dtype=np.float64)
        outflow = np.asarray(outflow, dtype=np.float64)
        if inflow.shape != outflow.shape:
            raise ValueError(
                f"inflow shape {inflow.shape} != outflow shape {outflow.shape}"
            )
        if inflow.ndim != 3 or inflow.shape[1] != inflow.shape[2]:
            raise ValueError(f"flow tensors must be (T, n, n), got {inflow.shape}")
        if inflow.shape[1] != len(registry):
            raise ValueError(
                f"flow tensors have {inflow.shape[1]} stations, registry has {len(registry)}"
            )
        if inflow.shape[0] % config.slots_per_day != 0:
            raise ValueError(
                f"{inflow.shape[0]} slots is not a whole number of "
                f"{config.slots_per_day}-slot days"
            )
        self.registry = registry
        self.inflow = inflow
        self.outflow = outflow
        self.config = config
        self.name = name
        self.demand, self.supply = demand_supply(inflow, outflow)
        self._demand_normalizer: MinMaxNormalizer | None = None
        self._supply_normalizer: MinMaxNormalizer | None = None
        self._flow_scale: float | None = None
        # Window cache: zero-copy stride views over the flow tensors plus
        # memoised FlowSample bundles (see _long_windows / sample).
        self._long_inflow = self._long_window_view(inflow)
        self._long_outflow = self._long_window_view(outflow)
        self._sample_cache: dict[int, FlowSample] = {}

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def num_stations(self) -> int:
        return self.inflow.shape[1]

    @property
    def num_slots(self) -> int:
        return self.inflow.shape[0]

    @property
    def slots_per_day(self) -> int:
        return self.config.slots_per_day

    @property
    def num_days(self) -> int:
        return self.num_slots // self.slots_per_day

    def slot_of_day(self, t: int) -> int:
        """Time-of-day index of slot ``t`` (0 .. slots_per_day-1)."""
        return t % self.slots_per_day

    @property
    def min_history(self) -> int:
        """Earliest ``t`` with full short- and long-term windows."""
        return max(self.config.short_window, self.config.long_days * self.slots_per_day)

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def split_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Day-aligned (train, val, test) prediction-time indices.

        The paper splits by *days*: first 70% of days train, next 10%
        validate, the rest test. Indices earlier than :attr:`min_history`
        are excluded because their windows would be incomplete.
        """
        # At least one day per split, so tiny test datasets remain usable.
        train_days = max(1, int(self.num_days * self.config.train_fraction))
        val_days = max(1, int(self.num_days * self.config.val_fraction))
        if train_days + val_days >= self.num_days:
            raise ValueError(
                f"dataset with {self.num_days} days cannot be split "
                f"{self.config.train_fraction}/{self.config.val_fraction}/rest"
            )
        spd = self.slots_per_day
        all_t = np.arange(self.min_history, self.num_slots)
        day_of = all_t // spd
        train = all_t[day_of < train_days]
        val = all_t[(day_of >= train_days) & (day_of < train_days + val_days)]
        test = all_t[day_of >= train_days + val_days]
        if len(train) == 0:
            raise ValueError(
                "no training indices: history windows consume the whole training span; "
                "use more days or smaller windows"
            )
        return train, val, test

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _long_window_view(self, flows: np.ndarray) -> np.ndarray:
        """All long-term windows as one zero-copy stride view.

        Row ``i`` of the returned ``(T - d*spd, d, n, n)`` array is the
        long-term window for prediction time ``t = i + d*spd``: the flow
        matrices at the same slot-of-day over the previous ``d`` days,
        oldest first (the paper's ``{I^{t-d*day}, ..., I^{t-1*day}}``).
        The seed rebuilt each window with fancy indexing — a fresh
        ``(d, n, n)`` copy per sample per epoch; the view shares the base
        tensor's memory, so every ``sample(t)`` after construction costs
        one index, no copy. Marked read-only: windows alias the dataset.
        """
        d = self.config.long_days
        spd = self.config.slots_per_day
        base = d * spd
        count = flows.shape[0] - base
        if count <= 0:
            # Degenerate (windows consume all slots); sample() rejects
            # every t before indexing, but keep a well-formed empty view.
            count = 0
        slot_stride, row_stride, col_stride = flows.strides
        view = as_strided(
            flows,
            shape=(count, d, flows.shape[1], flows.shape[2]),
            strides=(slot_stride, spd * slot_stride, row_stride, col_stride),
            writeable=False,
        )
        return view

    def sample(self, t: int) -> FlowSample:
        """Assemble the model input for prediction time ``t``.

        Samples are memoised: the first request builds a bundle of
        zero-copy views (slices for the short window, stride tricks for
        the long window) and every later request — e.g. the same ``t``
        in the next training epoch — returns the cached bundle. Arrays
        alias the dataset's flow tensors and must not be written to.
        """
        cached = self._sample_cache.get(t)
        if cached is not None:
            return cached
        if not self.min_history <= t < self.num_slots:
            raise IndexError(
                f"t={t} outside the sampleable range "
                f"[{self.min_history}, {self.num_slots})"
            )
        k = self.config.short_window
        base = self.config.long_days * self.slots_per_day
        sample = FlowSample(
            t=t,
            short_inflow=self.inflow[t - k : t],
            short_outflow=self.outflow[t - k : t],
            long_inflow=self._long_inflow[t - base],
            long_outflow=self._long_outflow[t - base],
            target_demand=self.demand[t],
            target_supply=self.supply[t],
        )
        self._sample_cache[t] = sample
        return sample

    # ------------------------------------------------------------------
    # Normalization (fitted lazily on the training split)
    # ------------------------------------------------------------------
    def _fit_normalizers(self) -> None:
        train, _, _ = self.split_indices()
        self._demand_normalizer = MinMaxNormalizer().fit(self.demand[train])
        self._supply_normalizer = MinMaxNormalizer().fit(self.supply[train])
        train_flow_max = max(
            float(self.inflow[: train[-1] + 1].max()),
            float(self.outflow[: train[-1] + 1].max()),
        )
        self._flow_scale = train_flow_max if train_flow_max > 0 else 1.0

    @property
    def demand_normalizer(self) -> MinMaxNormalizer:
        if self._demand_normalizer is None:
            self._fit_normalizers()
        return self._demand_normalizer

    @property
    def supply_normalizer(self) -> MinMaxNormalizer:
        if self._supply_normalizer is None:
            self._fit_normalizers()
        return self._supply_normalizer

    @property
    def flow_scale(self) -> float:
        """Scale for flow-matrix inputs (max training flow count)."""
        if self._flow_scale is None:
            self._fit_normalizers()
        return self._flow_scale

    def use_normalizers(
        self,
        demand: MinMaxNormalizer,
        supply: MinMaxNormalizer,
        flow_scale: float,
    ) -> "BikeShareDataset":
        """Pin externally fitted normalizers instead of fitting lazily.

        The continual-learning loop retrains on short windows extracted
        from the live store; refitting Min-Max ranges per window would
        silently rescale the model's input space every cycle, so each
        extraction adopts the *deployment's* normalizers (the ones the
        serving checkpoint was trained with). Returns ``self``.
        """
        if flow_scale <= 0:
            raise ValueError(f"flow_scale must be positive, got {flow_scale}")
        self._demand_normalizer = demand
        self._supply_normalizer = supply
        self._flow_scale = float(flow_scale)
        return self

    def __repr__(self) -> str:
        return (
            f"BikeShareDataset(name={self.name!r}, stations={self.num_stations}, "
            f"days={self.num_days}, slots_per_day={self.slots_per_day})"
        )

"""Stations and the station registry.

The paper defines a station as ``s_i = (lon_i, lat_i)``; the case study
(Sec. VIII) additionally needs "the ten nearest stations, ordered by
distance", which :meth:`StationRegistry.nearest` provides via great-
circle (haversine) distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class Station:
    """A docked bike station with an id, coordinates and optional name."""

    station_id: int
    longitude: float
    latitude: float
    name: str = ""


def haversine_km(
    lon1: float | np.ndarray,
    lat1: float | np.ndarray,
    lon2: float | np.ndarray,
    lat2: float | np.ndarray,
) -> float | np.ndarray:
    """Great-circle distance in kilometres between coordinate pairs."""
    lon1, lat1, lon2, lat2 = map(np.radians, (lon1, lat1, lon2, lat2))
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


class StationRegistry:
    """Immutable, index-aligned collection of stations.

    Station ids must be the contiguous range ``0..n-1`` so that the id
    doubles as the row/column index of the flow matrices. Use
    :meth:`from_stations` to remap arbitrary ids.
    """

    def __init__(self, stations: list[Station]) -> None:
        if not stations:
            raise ValueError("a registry needs at least one station")
        ids = [s.station_id for s in stations]
        if sorted(ids) != list(range(len(stations))):
            raise ValueError(
                "station ids must be the contiguous range 0..n-1 "
                "(use StationRegistry.from_stations to remap)"
            )
        self._stations = sorted(stations, key=lambda s: s.station_id)
        self._lons = np.array([s.longitude for s in self._stations])
        self._lats = np.array([s.latitude for s in self._stations])
        self._distance_cache: np.ndarray | None = None

    @classmethod
    def from_stations(cls, stations: list[Station]) -> "StationRegistry":
        """Build a registry remapping arbitrary station ids to 0..n-1.

        The mapping preserves the sorted order of the original ids, as a
        real-data loader would.
        """
        remapped = [
            Station(new_id, s.longitude, s.latitude, s.name)
            for new_id, s in enumerate(sorted(stations, key=lambda s: s.station_id))
        ]
        return cls(remapped)

    def __len__(self) -> int:
        return len(self._stations)

    def __getitem__(self, station_id: int) -> Station:
        return self._stations[station_id]

    def __iter__(self):
        return iter(self._stations)

    @property
    def longitudes(self) -> np.ndarray:
        return self._lons

    @property
    def latitudes(self) -> np.ndarray:
        return self._lats

    def distance_matrix(self) -> np.ndarray:
        """Pairwise haversine distances (km), cached after first call."""
        if self._distance_cache is None:
            lon = self._lons
            lat = self._lats
            self._distance_cache = haversine_km(
                lon[:, None], lat[:, None], lon[None, :], lat[None, :]
            )
        return self._distance_cache

    def nearest(self, station_id: int, count: int = 10) -> list[int]:
        """Ids of the ``count`` nearest stations, closest first.

        The station itself is excluded — matching the case study's
        "ten nearest stations" axis in Figs. 10-12.
        """
        if not 0 <= station_id < len(self):
            raise IndexError(f"station id {station_id} out of range")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        distances = self.distance_matrix()[station_id].copy()
        distances[station_id] = np.inf
        order = np.argsort(distances, kind="stable")
        return [int(i) for i in order[: min(count, len(self) - 1)]]

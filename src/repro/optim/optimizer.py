"""Optimizer base class and gradient utilities."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm, useful for monitoring training stability.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        # Flat BLAS dot: no grad-sized ``grad * grad`` temporary.
        flat = np.ravel(grad)
        total += float(np.dot(flat, flat))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm

"""Learning-rate schedules driven by epoch count or validation loss."""

from __future__ import annotations

from repro.optim.optimizer import Optimizer


class StepLR:
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class ReduceOnPlateau:
    """Halve the LR when the monitored metric stops improving.

    Used by the Trainer as a pragmatic stand-in for hand-tuned LR drops;
    ``patience`` epochs without a ``min_delta`` improvement trigger a cut.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 5,
        min_delta: float = 1e-4,
        min_lr: float = 1e-6,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_delta = min_delta
        self.min_lr = min_lr
        self._best = float("inf")
        self._bad_epochs = 0

    def step(self, metric: float) -> None:
        if metric < self._best - self.min_delta:
            self._best = metric
            self._bad_epochs = 0
            return
        self._bad_epochs += 1
        if self._bad_epochs >= self.patience:
            self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
            self._bad_epochs = 0

"""Optimizers and training utilities (SGD, Adam, grad clipping, LR decay)."""

from repro.optim.optimizer import Optimizer, clip_grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.scheduler import StepLR, ReduceOnPlateau

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "ReduceOnPlateau",
    "clip_grad_norm",
]

"""Adam optimizer [Kingma & Ba, 2014] — the paper's training optimizer.

The update is fused into in-place numpy ops over two preallocated
scratch views: no ``m_hat``/``v_hat``/``sqrt`` temporaries are
materialised per parameter per step, and ``weight_decay`` folds into the
same scratch instead of allocating ``grad + wd * param``. The math is
unchanged (identical up to float rounding of the reassociated
``lr / bias`` factors):

    m_hat = m / (1 - beta1^t);  v_hat = v / (1 - beta2^t)
    param -= lr * m_hat / (sqrt(v_hat) + eps)
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Flat scratch pools (two views per step: a general temporary and
        # the weight-decay-adjusted gradient), keyed by dtype so a
        # float32-cast model gets matching buffers. Sized for the largest
        # parameter once; per-step updates then allocate nothing.
        self._max_size = max(p.data.size for p in self.parameters)
        self._scratch: dict[np.dtype, np.ndarray] = {}

    def _scratch_views(self, param: Parameter) -> tuple[np.ndarray, np.ndarray]:
        """Two scratch views shaped like ``param`` (contents undefined)."""
        dtype = param.data.dtype
        flat = self._scratch.get(dtype)
        if flat is None or flat.size < 2 * self._max_size:
            flat = np.empty(2 * self._max_size, dtype=dtype)
            self._scratch[dtype] = flat
        size, shape = param.data.size, param.data.shape
        return (
            flat[:size].reshape(shape),
            flat[self._max_size : self._max_size + size].reshape(shape),
        )

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        sqrt_bias2 = np.sqrt(bias2)
        step_scale = self.lr / bias1
        one_minus_beta1 = 1.0 - self.beta1
        one_minus_beta2 = 1.0 - self.beta2
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if grad is None:
                continue
            scratch, decayed = self._scratch_views(param)
            if self.weight_decay:
                # grad + wd * param, materialised once in scratch.
                np.multiply(param.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            # First moment: m = beta1 * m + (1 - beta1) * grad.
            m *= self.beta1
            np.multiply(grad, one_minus_beta1, out=scratch)
            m += scratch
            # Second moment: v = beta2 * v + (1 - beta2) * grad^2.
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= one_minus_beta2
            v += scratch
            # param -= (lr / bias1) * m / (sqrt(v) / sqrt(bias2) + eps).
            np.sqrt(v, out=scratch)
            scratch /= sqrt_bias2
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= step_scale
            param.data -= scratch

"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Classic SGD: ``v = mu*v + g``, ``p -= lr * v``."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update

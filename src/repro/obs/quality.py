"""Continuous model-quality monitoring: reconcile forecasts with reality.

Serving issues forecasts for the open frontier slot; ingestion later
closes that slot with the realized inflow/outflow. This module captures
the forecast at ``/predict`` time and, when :class:`FlowStateStore`
rolls the slot over, reconciles prediction against realization into
rolling per-horizon and per-station RMSE/MAE windows — computed by the
**same** :mod:`repro.eval.metrics` functions the offline evaluation
uses, on the same (true, pred) pairs, so the online numbers bit-match
an offline recomputation by construction.

On top of the windows sits a drift monitor: each reconciliation
compares the rolling RMSE against a training-time baseline (embedded in
the checkpoint by ``save_checkpoint(..., quality_baseline=...)``) and
fires a ``quality.drift`` event + counter when the ratio crosses a
threshold. The trigger is edge-based with reset-on-recovery: one event
per excursion, not one per slot — the signal a continual-learning loop
can act on directly.

Wiring (see :class:`repro.serve.service.PredictionService`):

* ``record_forecast(slot, demand, supply, ...)`` at forecast time —
  multi-horizon ``(n, H)`` predictions fan out to pending entries keyed
  ``(target_slot, horizon)``; a re-forecast of the same key (model
  reload, cache invalidation) replaces the old one, last-write-wins,
  matching what the rider actually saw most recently.
* ``on_rollover(store, closed)`` registered via
  ``FlowStateStore.add_rollover_listener`` — pulls
  ``store.realized(slot)`` for each newly closed slot and folds every
  pending forecast that targeted it into the windows.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.faults import fault_point
from repro.obs.events import emit_event
from repro.obs.registry import default_registry


def _paper_metrics():
    # Lazy: repro.eval.__init__ pulls in the whole evaluation stack
    # (reporting, multiseed, ...) and importing it at module load would
    # cycle back through repro.obs during package init.
    from repro.eval import metrics

    return metrics


@dataclass(frozen=True, slots=True)
class QualityBaseline:
    """Training-time error level the drift monitor compares against."""

    rmse: float
    mae: float
    samples: int = 0

    def to_dict(self) -> dict:
        return {"rmse": self.rmse, "mae": self.mae, "samples": self.samples}

    @classmethod
    def from_dict(cls, payload: dict) -> "QualityBaseline":
        return cls(
            rmse=float(payload["rmse"]),
            mae=float(payload["mae"]),
            samples=int(payload.get("samples", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "QualityBaseline":
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True, slots=True)
class QualityConfig:
    """Knobs for the quality monitor.

    ``window`` — reconciled slots retained per horizon for the rolling
    metrics. ``min_samples`` — reconciliations required before the
    drift monitor may fire (a 3-slot window ratio is noise).
    ``drift_threshold`` — rolling-RMSE / baseline-RMSE ratio above
    which ``quality.drift`` fires.
    """

    window: int = 256
    min_samples: int = 16
    drift_threshold: float = 1.5
    baseline: QualityBaseline | None = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be > 0, got {self.drift_threshold}"
            )


class QualityMonitor:
    """Rolling forecast-vs-realized quality windows + drift detection.

    Thread-safe: ``record_forecast`` runs on the serving dispatcher (or
    request) thread while ``on_rollover`` runs on whichever ingestion
    thread advanced the store.
    """

    def __init__(self, config: QualityConfig | None = None,
                 registry=None) -> None:
        self.config = config or QualityConfig()
        self._lock = threading.RLock()
        # (target_slot, horizon) -> (pred_demand, pred_supply,
        #                            model_version, store_version)
        self._pending: dict[tuple[int, int], tuple] = {}
        # horizon -> deque of (true_d, pred_d, true_s, pred_s) arrays
        self._windows: dict[int, deque] = {}
        self._reconciled = 0
        self._unreconciled = 0
        self._drifting = False
        self._drift_events = 0
        reg = registry or default_registry()
        self._registry = reg
        self._reconciled_counter = reg.counter("quality.reconciled_slots")
        self._unreconciled_counter = reg.counter("quality.unreconciled_slots")
        self._drift_counter = reg.counter("quality.drift")

    # ------------------------------------------------------------------
    # Forecast capture (serving side)
    # ------------------------------------------------------------------
    def record_forecast(self, slot: int, demand: np.ndarray,
                        supply: np.ndarray, *, model_version: int = 0,
                        store_version: int = 0) -> None:
        """Capture a forecast issued while ``slot`` is the open frontier.

        ``demand``/``supply`` are ``(n,)`` single-horizon or ``(n, H)``
        multi-horizon arrays; column ``h`` predicts slot ``slot + h``.
        """
        demand = np.asarray(demand, dtype=np.float64)
        supply = np.asarray(supply, dtype=np.float64)
        if demand.shape != supply.shape:
            raise ValueError(
                f"demand/supply shape mismatch: {demand.shape} vs "
                f"{supply.shape}"
            )
        if demand.ndim == 1:
            demand = demand[:, None]
            supply = supply[:, None]
        if demand.ndim != 2:
            raise ValueError(
                f"expected (n,) or (n, horizons) forecast, got shape "
                f"{demand.shape}"
            )
        slot = int(slot)
        with self._lock:
            for h in range(demand.shape[1]):
                self._pending[(slot + h, h)] = (
                    demand[:, h].copy(),
                    supply[:, h].copy(),
                    int(model_version),
                    int(store_version),
                )

    # ------------------------------------------------------------------
    # Reconciliation (ingestion side, via store rollover listener)
    # ------------------------------------------------------------------
    def on_rollover(self, store, closed: Iterable[int]) -> None:
        """``FlowStateStore`` rollover listener: fold newly closed slots."""
        for slot in closed:
            slot = int(slot)
            with self._lock:
                keys = [key for key in self._pending if key[0] == slot]
                if not keys:
                    continue
                fault_point("quality.reconcile")
                try:
                    true_demand, true_supply = store.realized(slot)
                except (IndexError, KeyError):
                    # Slot already evicted from the ring (large gap):
                    # the forecasts are unreconcilable — count, drop.
                    for key in keys:
                        del self._pending[key]
                    self._unreconciled += len(keys)
                    self._unreconciled_counter.inc(len(keys))
                    continue
                true_demand = np.asarray(true_demand, dtype=np.float64).copy()
                true_supply = np.asarray(true_supply, dtype=np.float64).copy()
                for key in keys:
                    pred_demand, pred_supply, _, _ = self._pending.pop(key)
                    horizon = key[1]
                    window = self._windows.get(horizon)
                    if window is None:
                        window = deque(maxlen=self.config.window)
                        self._windows[horizon] = window
                    window.append(
                        (true_demand, pred_demand, true_supply, pred_supply)
                    )
                    self._reconciled += 1
                    self._reconciled_counter.inc()
                self._publish_gauges()
                self._check_drift()

    # ------------------------------------------------------------------
    # Rolling metrics (bit-match eval/metrics.py by construction)
    # ------------------------------------------------------------------
    def rolling(self, horizon: int = 0) -> dict | None:
        """Rolling RMSE/MAE over the window at ``horizon``; None if empty."""
        with self._lock:
            window = self._windows.get(horizon)
            if not window:
                return None
            pairs = list(window)
        true_d = np.stack([p[0] for p in pairs])
        pred_d = np.stack([p[1] for p in pairs])
        true_s = np.stack([p[2] for p in pairs])
        pred_s = np.stack([p[3] for p in pairs])
        metrics = _paper_metrics()
        return {
            "horizon": horizon,
            "samples": len(pairs),
            "rmse": metrics.rmse(true_d, pred_d, true_s, pred_s),
            "mae": metrics.mae(true_d, pred_d, true_s, pred_s),
        }

    def per_station(self, horizon: int = 0) -> dict | None:
        """Per-station RMSE/MAE arrays over the window at ``horizon``."""
        with self._lock:
            window = self._windows.get(horizon)
            if not window:
                return None
            pairs = list(window)
        true_d = np.stack([p[0] for p in pairs])
        pred_d = np.stack([p[1] for p in pairs])
        true_s = np.stack([p[2] for p in pairs])
        pred_s = np.stack([p[3] for p in pairs])
        metrics = _paper_metrics()
        stations = true_d.shape[1]
        rmse = np.empty(stations)
        mae = np.empty(stations)
        for station in range(stations):
            rmse[station] = metrics.rmse(
                true_d[:, station], pred_d[:, station],
                true_s[:, station], pred_s[:, station],
            )
            mae[station] = metrics.mae(
                true_d[:, station], pred_d[:, station],
                true_s[:, station], pred_s[:, station],
            )
        return {
            "horizon": horizon,
            "samples": len(pairs),
            "rmse": rmse,
            "mae": mae,
        }

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------
    def drift_ratio(self) -> float | None:
        """rolling RMSE (horizon 0) / baseline RMSE, or None."""
        baseline = self.config.baseline
        if baseline is None or baseline.rmse <= 0:
            return None
        rolling = self.rolling(0)
        if rolling is None or rolling["samples"] < self.config.min_samples:
            return None
        return rolling["rmse"] / baseline.rmse

    def _check_drift(self) -> None:
        # Called under self._lock. Edge-triggered with reset: fire once
        # when the ratio crosses the threshold, re-arm when it recovers.
        ratio = self.drift_ratio()
        if ratio is None:
            return
        if ratio > self.config.drift_threshold:
            if not self._drifting:
                self._drifting = True
                self._drift_events += 1
                self._drift_counter.inc()
                emit_event(
                    "event", "quality.drift",
                    ratio=float(ratio),
                    threshold=self.config.drift_threshold,
                    rolling_rmse=float(ratio * self.config.baseline.rmse),
                    baseline_rmse=self.config.baseline.rmse,
                    ts=time.time(),
                )
        else:
            self._drifting = False

    def reset(self, baseline: QualityBaseline | None = None) -> None:
        """Flush pending forecasts and rolling windows.

        Required when the station set changes (graph evolution): window
        entries are ``(n,)`` vectors, and stacking mixed-width entries
        would crash the rolling metrics. Drift state re-arms; pass a new
        ``baseline`` to rebase the drift monitor at the same time.
        """
        with self._lock:
            self._pending.clear()
            self._windows.clear()
            self._drifting = False
            if baseline is not None:
                self.config = QualityConfig(
                    window=self.config.window,
                    min_samples=self.config.min_samples,
                    drift_threshold=self.config.drift_threshold,
                    baseline=baseline,
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        # Called under self._lock; gauges are no-ops when obs disabled.
        if not self._registry.enabled:
            return
        for horizon in self._windows:
            rolling = self.rolling(horizon)
            if rolling is None:
                continue
            self._registry.gauge(f"quality.rmse.h{horizon}").set(
                rolling["rmse"]
            )
            self._registry.gauge(f"quality.mae.h{horizon}").set(
                rolling["mae"]
            )
        ratio = self.drift_ratio()
        if ratio is not None:
            self._registry.gauge("quality.drift_ratio").set(ratio)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def snapshot(self) -> dict:
        """JSON-able summary for ``/status`` and run reports."""
        with self._lock:
            horizons = sorted(self._windows)
            summary = {
                "pending": len(self._pending),
                "reconciled": self._reconciled,
                "unreconciled": self._unreconciled,
                "drifting": self._drifting,
                "drift_events": self._drift_events,
                "baseline": (
                    self.config.baseline.to_dict()
                    if self.config.baseline else None
                ),
            }
        ratio = self.drift_ratio()
        summary["drift_ratio"] = None if ratio is None else float(ratio)
        windows = {}
        for horizon in horizons:
            rolling = self.rolling(horizon)
            if rolling is not None:
                windows[str(horizon)] = {
                    "samples": rolling["samples"],
                    "rmse": float(rolling["rmse"]),
                    "mae": float(rolling["mae"]),
                }
        summary["windows"] = windows
        return summary

"""JSONL event stream: schema, writer, reader, validation.

Every structured thing a run emits — run start/end, per-epoch training
records, span timings, ad-hoc events — is one JSON object per line in a
``*.events.jsonl`` file. The schema is deliberately flat and stable so
downstream tooling (the report CLI, CI validation, future dashboards)
can consume streams from any version of the library:

.. code-block:: json

    {"ts": 1754400000.123, "kind": "epoch", "name": "epoch",
     "data": {"epoch": 0, "train_loss": 0.12}}

``ts`` is a Unix wall-clock timestamp (floats inside ``data`` carry the
monotonic durations), ``kind`` is one of :data:`EVENT_KINDS`, ``name``
identifies the emitter and ``data`` is a JSON object of payload fields.

A process-global *sink* carries the active exporter: library code calls
:func:`emit_event` unconditionally (a no-op dict lookup when no sink is
installed) and the run recorder scopes a :class:`JsonlExporter` in for
the duration of a run.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from pathlib import Path
from typing import IO, Iterator

from repro.obs.registry import default_registry

#: Closed set of event kinds; extend deliberately, never ad hoc.
EVENT_KINDS = ("run_start", "epoch", "run_end", "span", "metric", "event")


def make_event(kind: str, name: str, data: dict | None = None,
               ts: float | None = None) -> dict:
    """Build a schema-conforming event dict."""
    event = {
        "ts": time.time() if ts is None else float(ts),
        "kind": kind,
        "name": name,
        "data": dict(data) if data else {},
    }
    validate_event(event)
    return event


def validate_event(event: object) -> dict:
    """Check one event against the schema; raises ``ValueError`` if bad."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    extra = set(event) - {"ts", "kind", "name", "data"}
    missing = {"ts", "kind", "name", "data"} - set(event)
    if extra or missing:
        raise ValueError(
            f"event keys must be ts/kind/name/data (missing={sorted(missing)}, "
            f"extra={sorted(extra)})"
        )
    if not isinstance(event["ts"], (int, float)) or isinstance(event["ts"], bool):
        raise ValueError(f"ts must be a number, got {event['ts']!r}")
    if event["kind"] not in EVENT_KINDS:
        raise ValueError(f"kind must be one of {EVENT_KINDS}, got {event['kind']!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise ValueError(f"name must be a non-empty string, got {event['name']!r}")
    if not isinstance(event["data"], dict):
        raise ValueError(f"data must be an object, got {type(event['data']).__name__}")
    return event


class JsonlExporter:
    """Append-only JSONL event writer with bounded-size rotation.

    Lines are flushed per event — a crashed run keeps everything emitted
    up to the failure, which is exactly when the stream matters most.

    ``max_bytes`` / ``max_lines`` bound the stream for long-lived
    processes (a serving box cannot append forever): when the current
    file would exceed a limit it is renamed to ``<path>.1`` (replacing,
    and thereby destroying, any previous ``.1``) and a fresh file is
    started, so at most two generations exist on disk. Events destroyed
    with an old ``.1`` are counted in the ``obs.events_dropped``
    counter — truncation is visible, never silent. With both limits
    ``None`` (the default) behaviour is the original unbounded append.

    Thread-safe: serving handler threads, the dispatcher, and rollover
    listeners all emit concurrently.
    """

    def __init__(self, path: str | Path, max_bytes: int | None = None,
                 max_lines: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_lines is not None and max_lines < 1:
            raise ValueError(f"max_lines must be >= 1, got {max_lines}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_lines = max_lines
        self.rotations = 0
        self._lock = threading.Lock()
        self._dropped_counter = default_registry().counter("obs.events_dropped")
        self._bytes = 0
        self._lines = 0
        if self.path.exists() and (max_bytes is not None or max_lines is not None):
            # Appending to an existing stream: its current size counts
            # against the bound.
            self._bytes = self.path.stat().st_size
            if max_lines is not None:
                with self.path.open("rb") as fh:
                    self._lines = sum(1 for _ in fh)
        self._file: IO[str] | None = self.path.open("a", encoding="utf-8")

    @property
    def rotated_path(self) -> Path:
        return self.path.with_name(self.path.name + ".1")

    def _would_exceed(self, nbytes: int) -> bool:
        if self.max_bytes is not None and self._bytes + nbytes > self.max_bytes:
            return self._bytes > 0  # never rotate an empty file
        if self.max_lines is not None and self._lines + 1 > self.max_lines:
            return True
        return False

    def _rotate(self) -> None:
        # Called under self._lock. The outgoing .1 generation (if any)
        # is destroyed — count its lines as dropped first.
        rotated = self.rotated_path
        if rotated.exists():
            with rotated.open("rb") as fh:
                destroyed = sum(1 for _ in fh)
            if destroyed:
                self._dropped_counter.inc(destroyed)
        self._file.close()
        self.path.replace(rotated)
        self._file = self.path.open("a", encoding="utf-8")
        self._bytes = 0
        self._lines = 0
        self.rotations += 1

    def emit(self, kind: str, name: str, **data) -> dict:
        """Write (and return) one event. Raises if the exporter is closed."""
        event = make_event(kind, name, data)
        line = json.dumps(event) + "\n"
        with self._lock:
            if self._file is None:
                raise RuntimeError(f"exporter for {self.path} is closed")
            if self._would_exceed(len(line)):
                self._rotate()
            self._file.write(line)
            self._file.flush()
            self._bytes += len(line)
            self._lines += 1
        return event

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._file is None else "open"
        return f"JsonlExporter({str(self.path)!r}, {state})"


def read_events(path: str | Path, validate: bool = True) -> list[dict]:
    """Load a JSONL event stream; optionally schema-validate every line."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            if validate:
                try:
                    validate_event(event)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            events.append(event)
    return events


# ----------------------------------------------------------------------
# Process-global sink
# ----------------------------------------------------------------------
_SINK: JsonlExporter | None = None


def active_sink() -> JsonlExporter | None:
    """The exporter :func:`emit_event` currently writes to, if any."""
    return _SINK


def set_sink(sink: JsonlExporter | None) -> JsonlExporter | None:
    """Install ``sink`` as the global event sink; returns the previous one."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


@contextlib.contextmanager
def sink_scope(sink: JsonlExporter | None) -> Iterator[JsonlExporter | None]:
    """Scope the global sink to a ``with`` block (exception-safe)."""
    previous = set_sink(sink)
    try:
        yield sink
    finally:
        set_sink(previous)


def emit_event(kind: str, name: str, **data) -> dict | None:
    """Emit to the active sink, or do nothing when none is installed."""
    if _SINK is None:
        return None
    return _SINK.emit(kind, name, **data)

"""JSONL event stream: schema, writer, reader, validation.

Every structured thing a run emits — run start/end, per-epoch training
records, span timings, ad-hoc events — is one JSON object per line in a
``*.events.jsonl`` file. The schema is deliberately flat and stable so
downstream tooling (the report CLI, CI validation, future dashboards)
can consume streams from any version of the library:

.. code-block:: json

    {"ts": 1754400000.123, "kind": "epoch", "name": "epoch",
     "data": {"epoch": 0, "train_loss": 0.12}}

``ts`` is a Unix wall-clock timestamp (floats inside ``data`` carry the
monotonic durations), ``kind`` is one of :data:`EVENT_KINDS`, ``name``
identifies the emitter and ``data`` is a JSON object of payload fields.

A process-global *sink* carries the active exporter: library code calls
:func:`emit_event` unconditionally (a no-op dict lookup when no sink is
installed) and the run recorder scopes a :class:`JsonlExporter` in for
the duration of a run.
"""

from __future__ import annotations

import contextlib
import json
import time
from pathlib import Path
from typing import IO, Iterator

#: Closed set of event kinds; extend deliberately, never ad hoc.
EVENT_KINDS = ("run_start", "epoch", "run_end", "span", "metric", "event")


def make_event(kind: str, name: str, data: dict | None = None,
               ts: float | None = None) -> dict:
    """Build a schema-conforming event dict."""
    event = {
        "ts": time.time() if ts is None else float(ts),
        "kind": kind,
        "name": name,
        "data": dict(data) if data else {},
    }
    validate_event(event)
    return event


def validate_event(event: object) -> dict:
    """Check one event against the schema; raises ``ValueError`` if bad."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    extra = set(event) - {"ts", "kind", "name", "data"}
    missing = {"ts", "kind", "name", "data"} - set(event)
    if extra or missing:
        raise ValueError(
            f"event keys must be ts/kind/name/data (missing={sorted(missing)}, "
            f"extra={sorted(extra)})"
        )
    if not isinstance(event["ts"], (int, float)) or isinstance(event["ts"], bool):
        raise ValueError(f"ts must be a number, got {event['ts']!r}")
    if event["kind"] not in EVENT_KINDS:
        raise ValueError(f"kind must be one of {EVENT_KINDS}, got {event['kind']!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise ValueError(f"name must be a non-empty string, got {event['name']!r}")
    if not isinstance(event["data"], dict):
        raise ValueError(f"data must be an object, got {type(event['data']).__name__}")
    return event


class JsonlExporter:
    """Append-only JSONL event writer.

    Lines are flushed per event — a crashed run keeps everything emitted
    up to the failure, which is exactly when the stream matters most.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: IO[str] | None = self.path.open("a", encoding="utf-8")

    def emit(self, kind: str, name: str, **data) -> dict:
        """Write (and return) one event. Raises if the exporter is closed."""
        if self._file is None:
            raise RuntimeError(f"exporter for {self.path} is closed")
        event = make_event(kind, name, data)
        self._file.write(json.dumps(event) + "\n")
        self._file.flush()
        return event

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._file is None else "open"
        return f"JsonlExporter({str(self.path)!r}, {state})"


def read_events(path: str | Path, validate: bool = True) -> list[dict]:
    """Load a JSONL event stream; optionally schema-validate every line."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            if validate:
                try:
                    validate_event(event)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            events.append(event)
    return events


# ----------------------------------------------------------------------
# Process-global sink
# ----------------------------------------------------------------------
_SINK: JsonlExporter | None = None


def active_sink() -> JsonlExporter | None:
    """The exporter :func:`emit_event` currently writes to, if any."""
    return _SINK


def set_sink(sink: JsonlExporter | None) -> JsonlExporter | None:
    """Install ``sink`` as the global event sink; returns the previous one."""
    global _SINK
    previous = _SINK
    _SINK = sink
    return previous


@contextlib.contextmanager
def sink_scope(sink: JsonlExporter | None) -> Iterator[JsonlExporter | None]:
    """Scope the global sink to a ``with`` block (exception-safe)."""
    previous = set_sink(sink)
    try:
        yield sink
    finally:
        set_sink(previous)


def emit_event(kind: str, name: str, **data) -> dict | None:
    """Emit to the active sink, or do nothing when none is installed."""
    if _SINK is None:
        return None
    return _SINK.emit(kind, name, **data)

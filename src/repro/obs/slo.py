"""Declarative service-level objectives evaluated from live metrics.

An :class:`SLOConfig` names the targets (p99 latency, staleness ratio,
error-budget burn, drift ratio); :func:`evaluate_slos` reads the
current metric registry (and optionally a
:class:`~repro.obs.quality.QualityMonitor`) and returns a structured
health verdict — the payload behind serving's ``/status`` endpoint.

Quantiles come from the registry's fixed-bucket histograms via
:func:`histogram_quantile`, the standard cumulative-bucket walk
(same estimator Prometheus' ``histogram_quantile`` uses): the reported
pXX is the upper bound of the first bucket whose cumulative count
reaches the quantile rank — conservative (never under-reports) and
exact when observations quantize to bucket edges.

Objectives with no data yet (no requests served, no quality window)
evaluate as healthy with ``value: None`` — an idle service is not a
burning one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import Histogram, Registry, default_registry


@dataclass(frozen=True, slots=True)
class SLOConfig:
    """Service-level objectives for the serving path.

    ``p99_latency_seconds`` — ceiling for the request-latency p99.
    ``max_staleness_ratio`` — stale-served / total requests ceiling.
    ``error_budget`` — rejected (503) / total requests ceiling.
    ``max_drift_ratio`` — quality drift-ratio ceiling (None: only
    unhealthy once the quality monitor has actually flagged drift).
    """

    p99_latency_seconds: float = 0.25
    max_staleness_ratio: float = 0.01
    error_budget: float = 0.001
    max_drift_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.p99_latency_seconds <= 0:
            raise ValueError(
                f"p99_latency_seconds must be > 0, got "
                f"{self.p99_latency_seconds}"
            )
        if not 0.0 <= self.max_staleness_ratio <= 1.0:
            raise ValueError(
                f"max_staleness_ratio must be in [0, 1], got "
                f"{self.max_staleness_ratio}"
            )
        if not 0.0 <= self.error_budget <= 1.0:
            raise ValueError(
                f"error_budget must be in [0, 1], got {self.error_budget}"
            )
        if self.max_drift_ratio is not None and self.max_drift_ratio <= 0:
            raise ValueError(
                f"max_drift_ratio must be > 0, got {self.max_drift_ratio}"
            )


def histogram_quantile(hist: Histogram, q: float) -> float | None:
    """Estimate quantile ``q`` from a fixed-bucket histogram snapshot.

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q * count`` (the observed max for the +Inf bucket), or
    ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = hist.count
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, bound in enumerate(hist.bounds):
        cumulative += hist.bucket_counts[i]
        if cumulative >= rank:
            return bound
    # +Inf bucket: the best finite statement is the observed maximum.
    return hist.max


def _objective(name: str, value: float | None, target: float,
               comparison: str = "<=") -> dict:
    healthy = True if value is None else value <= target
    return {
        "name": name,
        "value": value,
        "target": target,
        "comparison": comparison,
        "healthy": healthy,
    }


def evaluate_slos(config: SLOConfig | None = None,
                  registry: Registry | None = None,
                  quality=None, prefix: str = "serve") -> dict:
    """Evaluate the SLOs against live metrics.

    Returns ``{"healthy": bool, "objectives": [...]}`` where each
    objective carries its name, current value (None when no data),
    target, and per-objective verdict. ``prefix`` selects whose metrics
    are read — ``"serve"`` (the single-service default) or a fleet
    replica's ``"fleet.replica{i}"``.
    """
    config = config or SLOConfig()
    reg = registry or default_registry()
    metrics = reg.metrics()

    def counter_value(name: str) -> float:
        metric = metrics.get(name)
        return metric.value if metric is not None and metric.kind == "counter" else 0

    objectives = []

    p99 = None
    latency = metrics.get(f"{prefix}.request_seconds")
    if isinstance(latency, Histogram) and latency.count > 0:
        p99 = histogram_quantile(latency, 0.99)
    objectives.append(
        _objective("p99_latency_seconds", p99, config.p99_latency_seconds)
    )

    requests = counter_value(f"{prefix}.requests")
    stale = counter_value(f"{prefix}.stale_served")
    staleness = (stale / requests) if requests else None
    objectives.append(
        _objective("staleness_ratio", staleness, config.max_staleness_ratio)
    )

    rejected = counter_value(f"{prefix}.rejected")
    burn = (rejected / (requests + rejected)) if (requests + rejected) else None
    objectives.append(
        _objective("error_budget_burn", burn, config.error_budget)
    )

    if quality is not None:
        ratio = quality.drift_ratio()
        if config.max_drift_ratio is not None:
            objectives.append(
                _objective("drift_ratio", ratio, config.max_drift_ratio)
            )
        else:
            drifting = getattr(quality, "_drifting", False)
            objectives.append({
                "name": "drift_ratio",
                "value": ratio,
                "target": None,
                "comparison": "monitor",
                "healthy": not drifting,
            })

    return {
        "healthy": all(obj["healthy"] for obj in objectives),
        "objectives": objectives,
    }


class _MergedHistogram:
    """Duck-typed histogram summing per-replica latency histograms.

    All registry histograms of one metric family share the same fixed
    bucket bounds, so the fleet-wide distribution is the element-wise
    sum of bucket counts — exact for quantile estimation, no sketch
    approximation needed.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, hists: list[Histogram]) -> None:
        self.bounds = hists[0].bounds
        # len(bounds) + 1: the implicit +Inf overflow bucket merges too.
        self.bucket_counts = [
            sum(h.bucket_counts[i] for h in hists)
            for i in range(len(self.bounds) + 1)
        ]
        self.count = sum(h.count for h in hists)
        self.sum = sum(h.sum for h in hists)
        self.min = min((h.min for h in hists if h.count), default=None)
        self.max = max((h.max for h in hists if h.count), default=None)


def aggregate_slos(config: SLOConfig | None = None,
                   prefixes: "list[str] | None" = None,
                   registry: Registry | None = None,
                   qualities: "dict[str, object] | None" = None) -> dict:
    """Fleet-wide SLO view across N replica metric prefixes.

    Returns::

        {"healthy": ..., "fleet": {...}, "replicas": {prefix: {...}},
         "worst_replica": prefix | None}

    ``fleet`` evaluates the objectives over the *merged* traffic —
    latency histograms bucket-summed, counters added — so its p99 is
    the true fleet p99, not an average of averages. ``replicas`` holds
    each replica's own verdict, and ``worst_replica`` names the replica
    with the most failing objectives (ties: highest p99), the one an
    operator should look at first. Fleet health requires the merged
    view *and* every replica to be healthy.
    """
    config = config or SLOConfig()
    reg = registry or default_registry()
    prefixes = prefixes or ["serve"]
    qualities = qualities or {}
    metrics = reg.metrics()

    replicas = {}
    for prefix in prefixes:
        replicas[prefix] = evaluate_slos(
            config, registry=reg, quality=qualities.get(prefix), prefix=prefix
        )

    def counters(stem: str) -> float:
        total = 0.0
        for prefix in prefixes:
            metric = metrics.get(f"{prefix}.{stem}")
            if metric is not None and metric.kind == "counter":
                total += metric.value
        return total

    objectives = []
    hists = [
        h for h in (metrics.get(f"{p}.request_seconds") for p in prefixes)
        if isinstance(h, Histogram) and h.count > 0
    ]
    p99 = histogram_quantile(_MergedHistogram(hists), 0.99) if hists else None
    objectives.append(
        _objective("p99_latency_seconds", p99, config.p99_latency_seconds)
    )
    requests = counters("requests")
    staleness = (counters("stale_served") / requests) if requests else None
    objectives.append(
        _objective("staleness_ratio", staleness, config.max_staleness_ratio)
    )
    rejected = counters("rejected")
    burn = (rejected / (requests + rejected)) if (requests + rejected) else None
    objectives.append(
        _objective("error_budget_burn", burn, config.error_budget)
    )
    drift_objs = [
        obj for report in replicas.values() for obj in report["objectives"]
        if obj["name"] == "drift_ratio"
    ]
    if drift_objs:
        # Fleet drift is the worst replica's: one drifting replica is a
        # fleet problem (it is serving a share of all traffic).
        values = [o["value"] for o in drift_objs if o["value"] is not None]
        objectives.append({
            "name": "drift_ratio",
            "value": max(values) if values else None,
            "target": drift_objs[0]["target"],
            "comparison": drift_objs[0]["comparison"],
            "healthy": all(o["healthy"] for o in drift_objs),
        })
    fleet = {
        "healthy": all(obj["healthy"] for obj in objectives),
        "objectives": objectives,
    }

    def badness(prefix: str) -> tuple:
        report = replicas[prefix]
        failing = sum(1 for o in report["objectives"] if not o["healthy"])
        p99_obj = next(
            (o for o in report["objectives"]
             if o["name"] == "p99_latency_seconds"), None,
        )
        p99_val = p99_obj["value"] if p99_obj and p99_obj["value"] else 0.0
        return (failing, p99_val)

    worst = max(prefixes, key=badness) if prefixes else None
    return {
        "healthy": fleet["healthy"] and all(
            r["healthy"] for r in replicas.values()
        ),
        "fleet": fleet,
        "replicas": replicas,
        "worst_replica": worst,
    }

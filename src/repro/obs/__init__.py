"""Runtime observability: metrics, tracing, profiling and run reports.

Dependency-free telemetry for the training and serving paths, in three
pillars:

* **metrics** (:mod:`repro.obs.registry`) — counters, gauges and
  fixed-bucket histograms accumulated in a process-global
  :func:`default_registry`. Disabled by default: instrumented call
  sites cost one branch until :func:`enable_metrics` (or a run
  recorder) switches them on. Forked gradient workers
  :meth:`~repro.obs.registry.Registry.drain` their local registry and
  the parent :meth:`~repro.obs.registry.Registry.merge`\\ s the delta, so
  parallel counters equal serial ones.
* **tracing/profiling** (:mod:`repro.obs.spans`,
  :mod:`repro.obs.trace`, :mod:`repro.obs.profiler`) — nestable
  :func:`span` timings for run structure; distributed request tracing
  (:func:`trace_span`, W3C ``traceparent`` propagation, fork-safe
  worker span merge, ``python -m repro.obs.trace`` timeline
  reconstruction); and :func:`profile` for per-op call counts / wall
  time / bytes over the backend op registry, installed only for the
  duration of the ``with`` block.
* **quality/SLOs** (:mod:`repro.obs.quality`, :mod:`repro.obs.slo`) —
  continuous forecast-quality monitoring (forecasts reconciled against
  realized flows, rolling RMSE/MAE that bit-match
  :mod:`repro.eval.metrics`, drift detection against a
  checkpoint-embedded baseline) and declarative service-level
  objectives evaluated from the live registry.
* **exporters and reports** (:mod:`repro.obs.events`,
  :mod:`repro.obs.prometheus`, :mod:`repro.obs.report`) — a JSONL event
  stream, a Prometheus-style text exposition for serving scrapes, and
  the :class:`RunReport` artifact rendered by
  ``python -m repro.obs.report``.

Quickstart::

    from repro import Trainer, TrainingConfig
    from repro.obs import ObservabilityConfig

    config = TrainingConfig(epochs=5, metrics=ObservabilityConfig("runs"))
    Trainer(model, dataset, config).fit()
    # runs/run-*.events.jsonl + runs/run-*.report.json
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    TIME_BUCKETS,
    VALUE_BUCKETS,
    default_registry,
    enable_metrics,
    metrics_enabled,
    metrics_scope,
)
from repro.obs.events import (
    EVENT_KINDS,
    JsonlExporter,
    active_sink,
    emit_event,
    make_event,
    read_events,
    set_sink,
    sink_scope,
    validate_event,
)
from repro.obs.spans import current_span, span, span_stack
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    TraceConfig,
    TraceContext,
    current_context,
    enable_tracing,
    format_traceparent,
    parse_traceparent,
    record_span,
    seed_trace_ids,
    trace_scope,
    trace_span,
    trace_status,
    tracing_enabled,
)
from repro.obs.quality import QualityBaseline, QualityConfig, QualityMonitor
from repro.obs.slo import SLOConfig, evaluate_slos, histogram_quantile
from repro.obs.profiler import FUSED_OPS, OpProfile, OpStat, profile
from repro.obs.prometheus import prometheus_text
from repro.obs.report import EpochRecord, RunReport, render_report
from repro.obs.recorder import ObservabilityConfig, RunRecorder

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "TIME_BUCKETS",
    "VALUE_BUCKETS",
    "default_registry",
    "enable_metrics",
    "metrics_enabled",
    "metrics_scope",
    # events
    "EVENT_KINDS",
    "JsonlExporter",
    "active_sink",
    "emit_event",
    "make_event",
    "read_events",
    "set_sink",
    "sink_scope",
    "validate_event",
    # tracing / profiling
    "span",
    "span_stack",
    "current_span",
    "TRACEPARENT_HEADER",
    "TraceConfig",
    "TraceContext",
    "current_context",
    "enable_tracing",
    "format_traceparent",
    "parse_traceparent",
    "record_span",
    "seed_trace_ids",
    "trace_scope",
    "trace_span",
    "trace_status",
    "tracing_enabled",
    # quality / SLOs
    "QualityBaseline",
    "QualityConfig",
    "QualityMonitor",
    "SLOConfig",
    "evaluate_slos",
    "histogram_quantile",
    "profile",
    "OpProfile",
    "OpStat",
    "FUSED_OPS",
    # exporters / reports
    "prometheus_text",
    "EpochRecord",
    "RunReport",
    "render_report",
    "ObservabilityConfig",
    "RunRecorder",
]

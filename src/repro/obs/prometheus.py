"""Prometheus-style text exposition of a metrics registry.

Renders the registry in the Prometheus text format (``# HELP`` /
``# TYPE`` comments, ``_total`` counter suffix, cumulative
``_bucket{le=...}`` histogram series) so a serving process can answer a
``/metrics`` scrape — or a human can eyeball the numbers — without any
client library. Only the exposition *format* is borrowed; there is no
HTTP server here.

Label values are escaped per the exposition-format spec (backslash,
double-quote and newline), both for the histogram ``le`` label and for
any constant labels passed to :func:`prometheus_text` — a deployment
name containing a quote must not break every scraper downstream.
"""

from __future__ import annotations

import math
import re

from repro.obs.registry import Counter, Gauge, Histogram, Registry, default_registry

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: Help strings for the well-known metric families, longest prefix
#: wins — per-horizon / per-worker series share one entry. Metrics
#: outside the table still get a HELP line (scrapers and humans both
#: expect one) with a generic description.
_HELP_PREFIXES: tuple[tuple[str, str], ...] = (
    ("serve.request_seconds", "End-to-end /predict latency in seconds."),
    ("serve.batch_size", "Requests coalesced per micro-batch."),
    ("serve.requests", "Predict requests admitted to the queue."),
    ("serve.rejected", "Predict requests rejected by backpressure (503)."),
    ("serve.stale", "Predict responses served from a stale forecast."),
    ("serve.cache", "Forecast cache activity on the serving path."),
    ("serve.", "Serving micro-batch pipeline metric."),
    ("fleet.requests", "Requests routed by the fleet router."),
    ("fleet.retries", "Requests rerouted after a replica shed or failed."),
    ("fleet.rejected", "Requests shed by every replica (fleet-wide 503)."),
    ("fleet.restarts", "Dead replica dispatchers revived by the router."),
    ("fleet.staged_reloads", "Checkpoint rollouts fanned out past the canary."),
    ("fleet.quarantined", "Replicas currently excluded from dispatch."),
    ("fleet.ingest_events", "Trip events accepted by the sharded flow store."),
    ("fleet.ingest_dropped_late", "Trip events behind the retained horizon."),
    ("fleet.cross_shard_events", "Trips whose origin and destination shards differ."),
    ("fleet.rollovers", "Slots finalized fleet-wide by the shared clock."),
    ("fleet.frontier", "Current slot frontier of the sharded flow store."),
    ("fleet.replica", "Per-replica serving metric (see serve.* equivalents)."),
    ("fleet.", "Fleet routing/sharding metric."),
    ("quality.rmse", "Rolling forecast RMSE over reconciled slots."),
    ("quality.mae", "Rolling forecast MAE over reconciled slots."),
    ("quality.drift_ratio", "Rolling RMSE over the training-time baseline RMSE."),
    ("quality.drift", "Drift excursions past the configured threshold."),
    ("quality.reconciled_slots", "Forecasts reconciled against realized flows."),
    ("quality.unreconciled_slots", "Forecasts whose target slot left the ring unreconciled."),
    ("parallel.reduce_overlap_ratio", "Fraction of the post-publish window spent reducing completed arenas."),
    ("parallel.transport_fallback", "Shared-memory to pipe transport degradations."),
    ("parallel.fallback", "Worker-pool to serial-loop degradations."),
    ("parallel.", "Data-parallel gradient worker pool metric."),
    ("trainer.", "Training loop metric."),
    ("pool.", "Buffer pool reuse statistic."),
    ("obs.events_dropped", "Events destroyed by JSONL stream rotation."),
    ("faults.", "Injected-fault bookkeeping (chaos tests only)."),
)


def _sanitize(name: str) -> str:
    """Metric names: dots and dashes become underscores, per convention."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _help_for(name: str) -> str:
    for prefix, text in _HELP_PREFIXES:
        if name.startswith(prefix):
            return text
    return f"repro.obs metric {name}."


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: object) -> str:
    """Escape one label value per the Prometheus exposition format.

    Backslash first (the escape character itself), then double-quote
    and newline — the three characters the format reserves.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: dict | None) -> str:
    """``{k="v",...}`` with escaped values, or ``""`` when empty."""
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(str(key))}="{escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def prometheus_text(registry: Registry | None = None,
                    labels: dict | None = None) -> str:
    """The registry's current state in Prometheus exposition format.

    ``labels`` (optional) is a constant label set stamped on every
    sample line — e.g. ``{"instance": ..., "city": ...}`` for a serving
    deployment; values are escaped, never trusted.
    """
    registry = registry if registry is not None else default_registry()
    constant = format_labels(labels)
    lines: list[str] = []
    for name, metric in registry.metrics().items():
        base = _sanitize(name)
        if isinstance(metric, Counter):
            series = base if base.endswith("_total") else f"{base}_total"
            lines.append(f"# HELP {series} {_escape_help(_help_for(name))}")
            lines.append(f"# TYPE {series} counter")
            lines.append(f"{series}{constant} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {base} {_escape_help(_help_for(name))}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{constant} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {base} {_escape_help(_help_for(name))}")
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                bucket = format_labels(
                    dict(labels or {}, le=_format_value(bound))
                )
                lines.append(f"{base}_bucket{bucket} {cumulative}")
            bucket = format_labels(dict(labels or {}, le="+Inf"))
            lines.append(f"{base}_bucket{bucket} {metric.count}")
            lines.append(f"{base}_sum{constant} {_format_value(metric.sum)}")
            lines.append(f"{base}_count{constant} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")

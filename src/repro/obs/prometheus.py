"""Prometheus-style text exposition of a metrics registry.

Renders the registry in the Prometheus text format (``# TYPE`` comments,
``_total`` counter suffix, cumulative ``_bucket{le=...}`` histogram
series) so a serving process can answer a ``/metrics`` scrape — or a
human can eyeball the numbers — without any client library. Only the
exposition *format* is borrowed; there is no HTTP server here.
"""

from __future__ import annotations

import math
import re

from repro.obs.registry import Counter, Gauge, Histogram, Registry, default_registry

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Metric names: dots and dashes become underscores, per convention."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def prometheus_text(registry: Registry | None = None) -> str:
    """The registry's current state in Prometheus exposition format."""
    registry = registry if registry is not None else default_registry()
    lines: list[str] = []
    for name, metric in registry.metrics().items():
        base = _sanitize(name)
        if isinstance(metric, Counter):
            series = base if base.endswith("_total") else f"{base}_total"
            lines.append(f"# TYPE {series} counter")
            lines.append(f"{series} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                lines.append(
                    f'{base}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{base}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{base}_sum {_format_value(metric.sum)}")
            lines.append(f"{base}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")

"""Run recording: wires the registry, event stream and report together.

:class:`ObservabilityConfig` is the user-facing switch — pass it as
``TrainingConfig(metrics=ObservabilityConfig(out_dir="runs"))`` and the
trainer drives a :class:`RunRecorder` for the duration of ``fit()``:

* the default metrics registry is enabled for the run (and restored
  after), so every counter/histogram laid down across the codebase
  starts recording;
* a :class:`~repro.obs.events.JsonlExporter` is installed as the global
  event sink, capturing run/epoch/span events to
  ``<out_dir>/<run_id>.events.jsonl``;
* on finish, a :class:`~repro.obs.report.RunReport` — per-epoch records
  plus the final metrics snapshot — is written to
  ``<out_dir>/<run_id>.report.json``, next to wherever checkpoints go.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

from repro.obs.events import JsonlExporter, set_sink
from repro.obs.registry import default_registry
from repro.obs.report import EpochRecord, RunReport
from repro.obs.trace import TraceConfig, enable_tracing

_RUN_SEQ = 0


def _default_run_id() -> str:
    """Unique-enough id: timestamp + pid + per-process sequence number."""
    global _RUN_SEQ
    _RUN_SEQ += 1
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"run-{stamp}-{os.getpid()}-{_RUN_SEQ}"


@dataclasses.dataclass(frozen=True, slots=True)
class ObservabilityConfig:
    """Where and how a training run records its telemetry."""

    out_dir: str = "runs"
    run_id: str | None = None
    #: Write the JSONL event stream (the report is always written).
    events: bool = True
    #: Rotate the event stream beyond this size (None = unbounded).
    events_max_bytes: int | None = None
    #: Also record trace spans for the run: the recorder enables
    #: tracing *before* the worker pool forks (so workers inherit the
    #: flag and ship their spans home with each reply) and restores the
    #: previous state in :meth:`RunRecorder.finish`. Requires
    #: ``events`` — spans need a sink to land in.
    trace: bool = False
    #: Fraction of root traces recorded when ``trace`` is on.
    trace_sample: float = 1.0

    def __post_init__(self) -> None:
        if not self.out_dir:
            raise ValueError("out_dir must be a non-empty path")
        if self.trace and not self.events:
            raise ValueError("trace=True requires events=True "
                             "(spans export to the event stream)")


class RunRecorder:
    """Owns one run's telemetry lifecycle; created by ``Trainer.fit``.

    Construction enables metrics and installs the event sink; call
    :meth:`record_epoch` once per epoch and :meth:`finish` exactly once
    (idempotent, exception-safe) to persist the report and restore the
    previous global state.
    """

    def __init__(self, config: ObservabilityConfig,
                 run_config: dict | None = None) -> None:
        self.config = config
        self.run_id = config.run_id or _default_run_id()
        self.out_dir = Path(config.out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.events_path = self.out_dir / f"{self.run_id}.events.jsonl"
        self.report_path = self.out_dir / f"{self.run_id}.report.json"
        self.registry = default_registry()
        self.report = RunReport(run_id=self.run_id, config=run_config or {})

        self._finished = False
        self._prev_enabled = self.registry.enabled
        self.registry.enabled = True
        self._exporter: JsonlExporter | None = None
        self._prev_sink = None
        self._prev_trace = None
        self._trace_enabled = False
        if config.events:
            self._exporter = JsonlExporter(
                self.events_path, max_bytes=config.events_max_bytes
            )
            self._prev_sink = set_sink(self._exporter)
            self._exporter.emit("run_start", self.run_id, config=self.report.config)
        if config.trace:
            self._prev_trace = enable_tracing(
                TraceConfig(sample_rate=config.trace_sample)
            )
            self._trace_enabled = True

    def record_epoch(
        self,
        epoch: int,
        train_loss: float,
        val_loss: float,
        grad_norm: float | None = None,
        samples_per_sec: float | None = None,
        learning_rate: float | None = None,
        seconds: float | None = None,
    ) -> EpochRecord:
        """Append one epoch to the report and emit the matching event."""
        record = EpochRecord(
            epoch=epoch,
            train_loss=float(train_loss),
            val_loss=float(val_loss),
            grad_norm=None if grad_norm is None else float(grad_norm),
            samples_per_sec=None if samples_per_sec is None else float(samples_per_sec),
            learning_rate=None if learning_rate is None else float(learning_rate),
            seconds=None if seconds is None else float(seconds),
        )
        self.report.epochs.append(record)
        if self._exporter is not None:
            self._exporter.emit("epoch", self.run_id, **dataclasses.asdict(record))
        return record

    def attach(self, key: str, payload: dict) -> None:
        """Stash an extra JSON-serialisable payload in the report."""
        self.report.extra[key] = payload

    def finish(self) -> RunReport:
        """Persist the report, close the stream, restore global state."""
        if self._finished:
            return self.report
        self._finished = True
        if self._trace_enabled:
            enable_tracing(
                self._prev_trace if self._prev_trace is not None else False
            )
            self._trace_enabled = False
        self.report.metrics = self.registry.snapshot()
        if self._exporter is not None:
            self._exporter.emit(
                "run_end", self.run_id,
                epochs=len(self.report.epochs),
                report=self.report_path.name,
            )
            set_sink(self._prev_sink)
            self._exporter.close()
        self.registry.enabled = self._prev_enabled
        self.report.save(self.report_path)
        return self.report

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def __repr__(self) -> str:
        state = "finished" if self._finished else "recording"
        return f"RunRecorder({self.run_id!r}, {state})"

"""Nestable timing spans: ``with span("epoch"): ...``.

A span measures one structural section of a run — an epoch, a batch, a
backward pass, a reduce. Spans nest: entering a span inside another
produces a slash-joined path (``"epoch/backward"``), so the same leaf
name in different contexts stays distinguishable.

Each completed span is recorded in two places, both optional:

* the default metrics registry, as a duration histogram named
  ``span.<path>.seconds`` (only when metrics are enabled);
* the active JSONL sink, as a ``span`` event carrying the path, depth
  and duration (only when a sink is installed).

With neither active, a span costs two ``perf_counter`` calls and a list
append — cheap enough to leave in library code permanently.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator

from repro.obs.events import emit_event
from repro.obs.registry import default_registry

_STACK: list[str] = []


def span_stack() -> tuple[str, ...]:
    """Names of the currently open spans, outermost first."""
    return tuple(_STACK)


def current_span() -> str | None:
    """Slash-joined path of the innermost open span, or None."""
    return "/".join(_STACK) if _STACK else None


@contextlib.contextmanager
def span(name: str, **attrs) -> Iterator[None]:
    """Time a section; record it to the registry and event sink on exit.

    ``attrs`` are attached verbatim to the emitted span event (they must
    be JSON-serialisable); they do not affect the metric name.
    """
    if "/" in name:
        raise ValueError(f"span names must not contain '/': {name!r}")
    _STACK.append(name)
    path = "/".join(_STACK)
    depth = len(_STACK)
    start = time.perf_counter()
    try:
        yield
    finally:
        duration = time.perf_counter() - start
        popped = _STACK.pop()
        assert popped is name
        registry = default_registry()
        if registry.enabled:
            registry.timer(f"span.{path}.seconds").observe(duration)
        emit_event("span", path, duration_seconds=duration, depth=depth, **attrs)

"""Distributed tracing: follow one request through the whole system.

The metrics registry answers "how many / how long on average"; tracing
answers "what happened to *this* request". A **trace** is a tree of
**spans** sharing a 32-hex ``trace_id``; each span carries a 16-hex
``span_id``, its parent's span id, a wall-clock ``start_ts`` and a
monotonic duration. Spans export to the existing JSONL event stream
(kind ``"span"``) through :func:`repro.obs.events.emit_event`, so one
file holds metrics, run records and traces — and
``python -m repro.obs.trace events.jsonl`` reconstructs per-request
timelines from it (HTTP → queue wait → batch assembly → forward →
serialize).

Design points, in the same spirit as the metrics registry:

* **One branch when disabled.** :func:`trace_span` returns a shared
  no-op span object unless :func:`enable_tracing` installed a
  :class:`TraceConfig`; uninstrumented runs pay one module-global read
  per call site and allocate nothing.
* **Deterministic IDs.** Trace/span ids come from a seeded
  ``blake2b(seed:counter)`` stream (:func:`seed_trace_ids`), so tests
  and replays get stable ids. Forked workers **must** re-seed (their
  counter is a copy-on-write clone of the parent's and would collide);
  :func:`begin_worker_spans` does that and switches the worker to a
  local span buffer which the parent drains and emits with the reply —
  the span analogue of the registry's ``drain()``/``merge()``.
* **W3C-style propagation.** :func:`format_traceparent` /
  :func:`parse_traceparent` speak the ``traceparent`` header format
  (``00-<trace-id>-<span-id>-<flags>``); a malformed or missing header
  parses to ``None`` and the callee starts a fresh root span.
* **Context, not stacks.** The current span context lives in a
  :mod:`contextvars` variable, so it follows the request across
  ``with`` blocks and into helper calls; crossing a *thread* boundary
  (e.g. the serving micro-batch queue) carries the
  :class:`TraceContext` explicitly on the queued request.
* **Links.** A span may *link* to spans of other traces — the serving
  batch span links the N request spans it served, which is how one
  forward pass is attributed to every rider who shared it.
"""

from __future__ import annotations

import argparse
import contextlib
import contextvars
import hashlib
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.obs.events import emit_event

#: HTTP header carrying trace context, per the W3C Trace Context spec.
TRACEPARENT_HEADER = "traceparent"

_TRACE_ID_BYTES = 16
_SPAN_ID_BYTES = 8
_HEX = set("0123456789abcdef")


# ----------------------------------------------------------------------
# Context + header format
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TraceContext:
    """Immutable (trace_id, span_id, sampled) triple a span propagates."""

    trace_id: str  # 32 lowercase hex chars
    span_id: str  # 16 lowercase hex chars
    sampled: bool = True


def format_traceparent(ctx: TraceContext) -> str:
    """Render a context as a ``traceparent`` header value."""
    flags = "01" if ctx.sampled else "00"
    return f"00-{ctx.trace_id}-{ctx.span_id}-{flags}"


def _hex_field(value: str, length: int) -> bool:
    return len(value) == length and set(value) <= _HEX and set(value) != {"0"}


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` for missing/malformed.

    Callers treat ``None`` as "no incoming context" and start a fresh
    root span — a garbled header from a buggy client degrades to an
    untraced-parent request, never an error.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or set(version) - _HEX or version == "ff":
        return None
    if not _hex_field(trace_id, 2 * _TRACE_ID_BYTES):
        return None
    if not _hex_field(span_id, 2 * _SPAN_ID_BYTES):
        return None
    if len(flags) != 2 or set(flags) - _HEX:
        return None
    return TraceContext(trace_id, span_id, sampled=bool(int(flags, 16) & 1))


# ----------------------------------------------------------------------
# Configuration (module-global, one read on the disabled fast path)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Tracing knobs. ``sample_rate`` decides which *root* traces record
    their spans (children inherit the decision through the context);
    ``profile_ops`` attaches per-op forward timing to sampled serving
    forward spans via :func:`repro.obs.profiler.profile`."""

    sample_rate: float = 1.0
    profile_ops: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )


_CONFIG: TraceConfig | None = None


def tracing_enabled() -> bool:
    """Whether spans record anywhere (the disabled path's one branch)."""
    return _CONFIG is not None


def trace_config() -> TraceConfig | None:
    return _CONFIG


def enable_tracing(
    config: TraceConfig | bool | None = True,
) -> TraceConfig | None:
    """Install (or clear, with ``False``/``None``) the tracing config.

    Returns the previous config so callers can restore it.
    """
    global _CONFIG
    previous = _CONFIG
    if config is True:
        config = TraceConfig()
    elif config is False:
        config = None
    _CONFIG = config
    return previous


@contextlib.contextmanager
def trace_scope(config: TraceConfig | bool = True) -> Iterator[None]:
    """Scope tracing on (or to a specific config) for a ``with`` block."""
    previous = enable_tracing(config)
    try:
        yield
    finally:
        enable_tracing(previous if previous is not None else False)


def trace_status() -> dict:
    """Small JSON-able summary for ``/status``-style endpoints."""
    if _CONFIG is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "sample_rate": _CONFIG.sample_rate,
        "profile_ops": _CONFIG.profile_ops,
    }


# ----------------------------------------------------------------------
# Deterministic id generation
# ----------------------------------------------------------------------
_ID_SEED: int | None = None
_ID_COUNTER = 0


def seed_trace_ids(seed: int) -> None:
    """Pin the id stream (tests, replays, forked workers)."""
    global _ID_SEED, _ID_COUNTER
    _ID_SEED = int(seed)
    _ID_COUNTER = 0


def _next_id(nbytes: int) -> str:
    global _ID_SEED, _ID_COUNTER
    if _ID_SEED is None:
        # Default seed: stable within a process, distinct across them.
        _ID_SEED = os.getpid()
    while True:
        _ID_COUNTER += 1
        digest = hashlib.blake2b(
            f"{_ID_SEED}:{_ID_COUNTER}".encode(), digest_size=nbytes
        ).hexdigest()
        if set(digest) != {"0"}:  # all-zero ids are invalid per W3C
            return digest


def new_trace_id() -> str:
    return _next_id(_TRACE_ID_BYTES)


def new_span_id() -> str:
    return _next_id(_SPAN_ID_BYTES)


def _sampled(trace_id: str, rate: float) -> bool:
    """Deterministic per-trace sampling decision from the id itself."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return int(trace_id[:8], 16) / float(0xFFFFFFFF) < rate


# ----------------------------------------------------------------------
# Current context + span buffering (fork workers)
# ----------------------------------------------------------------------
_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)

#: Non-None in forked workers: spans land here instead of the inherited
#: JSONL sink (whose fd is shared with the parent) and ship home with
#: the worker's reply, where the parent emits them.
_SPAN_BUFFER: list[dict] | None = None


def current_context() -> TraceContext | None:
    """The innermost active span's context (follows contextvars)."""
    return _CURRENT.get()


def begin_worker_spans(seed: int) -> None:
    """Enter fork-worker mode: buffer spans locally, re-seed the ids.

    Must run first thing in a forked worker — the child inherits the
    parent's id counter (ids would collide) and the parent's open span
    context (worker spans would mis-parent).
    """
    global _SPAN_BUFFER
    _SPAN_BUFFER = []
    seed_trace_ids(seed)
    _CURRENT.set(None)


def drain_spans() -> list[dict] | None:
    """Take the worker's buffered spans (None outside worker mode)."""
    global _SPAN_BUFFER
    if _SPAN_BUFFER is None:
        return None
    spans, _SPAN_BUFFER = _SPAN_BUFFER, []
    return spans or None


def end_worker_spans() -> None:
    """Leave fork-worker mode, dropping any buffered spans.

    Real workers never call this — they exit with the process — but a
    test that entered worker mode in-process must restore direct span
    emission for everything that runs after it.
    """
    global _SPAN_BUFFER
    _SPAN_BUFFER = None


def discard_spans() -> None:
    """Drop the worker's buffered spans (failed/rejected task)."""
    if _SPAN_BUFFER is not None:
        _SPAN_BUFFER.clear()


def emit_spans(spans: list[dict] | None) -> None:
    """Parent-side: emit spans drained from a worker's reply."""
    if not spans:
        return
    for record in spans:
        data = dict(record)
        name = data.pop("name")
        emit_event("span", name, **data)


def _record(name: str, ctx: TraceContext, parent_span_id: str | None,
            links: tuple[TraceContext, ...], start_ts: float,
            duration: float, attrs: dict) -> None:
    data: dict = {
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_span_id": parent_span_id,
        "start_ts": start_ts,
        "duration_seconds": duration,
    }
    if links:
        data["links"] = [[link.trace_id, link.span_id] for link in links]
    if attrs:
        data["attrs"] = attrs
    if _SPAN_BUFFER is not None:
        _SPAN_BUFFER.append({"name": name, **data})
        return
    emit_event("span", name, **data)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared no-op span: the entire cost of tracing-disabled code."""

    __slots__ = ()
    ctx = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()

_PARENT_FROM_CONTEXT = object()  # trace_span's "use the current context"


class TraceSpan:
    """One live span; use as a context manager (``with trace_span(...)``)."""

    __slots__ = ("name", "ctx", "parent_span_id", "links", "attrs",
                 "recorded", "start_ts", "_start_perf", "_token")

    def __init__(self, name: str, ctx: TraceContext,
                 parent_span_id: str | None,
                 links: tuple[TraceContext, ...],
                 recorded: bool, attrs: dict) -> None:
        self.name = name
        self.ctx = ctx
        self.parent_span_id = parent_span_id
        self.links = links
        self.recorded = recorded
        self.attrs = attrs
        self.start_ts = 0.0
        self._start_perf = 0.0
        self._token: contextvars.Token | None = None

    def set(self, **attrs) -> "TraceSpan":
        """Attach attributes (JSON-serialisable) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "TraceSpan":
        self.start_ts = time.time()
        self._start_perf = time.perf_counter()
        self._token = _CURRENT.set(self.ctx)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_perf
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if self.recorded:
            if exc_type is not None and "status" not in self.attrs:
                self.attrs["status"] = "error"
                self.attrs["error"] = exc_type.__name__
            _record(self.name, self.ctx, self.parent_span_id, self.links,
                    self.start_ts, duration, self.attrs)
        return False

    def __repr__(self) -> str:
        return (f"TraceSpan({self.name!r}, trace={self.ctx.trace_id[:8]}, "
                f"span={self.ctx.span_id})")


def trace_span(name: str, parent=_PARENT_FROM_CONTEXT,
               links: tuple[TraceContext, ...] = (), **attrs):
    """Open a span (context manager). The one-liner of the trace API.

    ``parent`` defaults to the current context (so nested ``with``
    blocks build the tree automatically); pass an explicit
    :class:`TraceContext` to parent across a thread/process boundary, or
    ``None`` to force a fresh root. A root span makes the sampling
    decision (or, when it ``links`` other spans, records iff any linked
    trace is sampled); children inherit it. When tracing is disabled
    this returns a shared no-op object — one global read, no allocation.
    """
    config = _CONFIG
    if config is None:
        return NULL_SPAN
    if parent is _PARENT_FROM_CONTEXT:
        parent = _CURRENT.get()
    links = tuple(links)
    if parent is not None:
        trace_id = parent.trace_id
        parent_span_id = parent.span_id
        sampled = parent.sampled
    else:
        trace_id = new_trace_id()
        parent_span_id = None
        if links:
            sampled = any(link.sampled for link in links)
        else:
            sampled = _sampled(trace_id, config.sample_rate)
    ctx = TraceContext(trace_id, new_span_id(), sampled)
    return TraceSpan(name, ctx, parent_span_id, links, sampled, dict(attrs))


def record_span(name: str, parent: TraceContext | None, start_ts: float,
                duration_seconds: float, **attrs) -> TraceContext | None:
    """Record a span after the fact, from explicit timestamps.

    Used where the interval is only known in retrospect — e.g. the
    serving queue wait, measured by stamps taken on two different
    threads. No-op (returns ``None``) when tracing is disabled, the
    parent is missing, or the parent's trace is unsampled.
    """
    if _CONFIG is None or parent is None or not parent.sampled:
        return None
    ctx = TraceContext(parent.trace_id, new_span_id(), True)
    _record(name, ctx, parent.span_id, (), float(start_ts),
            float(duration_seconds), dict(attrs))
    return ctx


# ----------------------------------------------------------------------
# Timeline reconstruction CLI: python -m repro.obs.trace
# ----------------------------------------------------------------------
def trace_spans(events: list[dict]) -> list[dict]:
    """The trace spans in an event stream (kind=span with a trace_id)."""
    return [e for e in events
            if e.get("kind") == "span" and "trace_id" in e.get("data", {})]


def group_traces(spans: list[dict]) -> dict[str, list[dict]]:
    """trace_id → spans, each list sorted by start timestamp."""
    traces: dict[str, list[dict]] = {}
    for event in spans:
        traces.setdefault(event["data"]["trace_id"], []).append(event)
    for group in traces.values():
        group.sort(key=lambda e: e["data"]["start_ts"])
    return traces


def _span_index(group: list[dict]) -> dict[str, dict]:
    return {e["data"]["span_id"]: e for e in group}


def _children(group: list[dict]) -> dict[str | None, list[dict]]:
    ids = {e["data"]["span_id"] for e in group}
    children: dict[str | None, list[dict]] = {}
    for event in group:
        parent = event["data"].get("parent_span_id")
        if parent not in ids:
            parent = None  # orphaned parents render as roots
        children.setdefault(parent, []).append(event)
    return children


def _linked_into(traces: dict[str, list[dict]], trace_id: str) -> dict[str, list[dict]]:
    """span_id (in ``trace_id``) → spans of *other* traces linking to it."""
    linked: dict[str, list[dict]] = {}
    for other_id, group in traces.items():
        if other_id == trace_id:
            continue
        for event in group:
            for link in event["data"].get("links", ()):
                if link[0] == trace_id:
                    linked.setdefault(link[1], []).append(event)
    return linked


def _fmt_attrs(attrs: dict) -> str:
    parts = []
    for key, value in attrs.items():
        if key == "ops":
            ops = ", ".join(
                f"{op}×{int(stat['calls'])}"
                for op, stat in list(value.items())[:4]
            )
            parts.append(f"ops=[{ops}]")
        else:
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts) if parts else ""


def render_trace(traces: dict[str, list[dict]], trace_id: str) -> str:
    """One trace as an indented timeline, linked spans inlined."""
    group = traces[trace_id]
    t0 = min(e["data"]["start_ts"] for e in group)
    children = _children(group)
    linked = _linked_into(traces, trace_id)
    lines = [f"trace {trace_id}  ({len(group)} spans)"]

    def offset_ms(event: dict) -> float:
        return (event["data"]["start_ts"] - t0) * 1e3

    def render(event: dict, depth: int, marker: str = "") -> None:
        data = event["data"]
        label = marker + event["name"]
        lines.append(
            f"  {'  ' * depth}{label:<{max(2, 34 - 2 * depth)}} "
            f"+{offset_ms(event):9.3f}ms  {data['duration_seconds'] * 1e3:9.3f}ms"
            f"{_fmt_attrs(data.get('attrs', {}))}"
        )
        for child in children.get(data["span_id"], ()):
            render(child, depth + 1)
        for link_event in linked.get(data["span_id"], ()):
            render_linked(link_event, depth + 1)

    def render_linked(event: dict, depth: int) -> None:
        """A span from another trace that links one of ours — rendered
        in place with its own subtree (the batch serving this request)."""
        other = traces[event["data"]["trace_id"]]
        other_children = _children(other)
        data = event["data"]
        lines.append(
            f"  {'  ' * depth}↳ {event['name']:<{max(2, 32 - 2 * depth)}} "
            f"+{offset_ms(event):9.3f}ms  {data['duration_seconds'] * 1e3:9.3f}ms"
            f"{_fmt_attrs(data.get('attrs', {}))}"
        )
        for child in other_children.get(data["span_id"], ()):
            render_in_other(child, depth + 1, other_children)

    def render_in_other(event: dict, depth: int, other_children) -> None:
        data = event["data"]
        lines.append(
            f"  {'  ' * depth}{event['name']:<{max(2, 34 - 2 * depth)}} "
            f"+{offset_ms(event):9.3f}ms  {data['duration_seconds'] * 1e3:9.3f}ms"
            f"{_fmt_attrs(data.get('attrs', {}))}"
        )
        for child in other_children.get(data["span_id"], ()):
            render_in_other(child, depth + 1, other_children)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)


def _trace_summary(trace_id: str, group: list[dict]) -> str:
    roots = [e for e in group if e["data"].get("parent_span_id") is None]
    root = roots[0] if roots else group[0]
    return (f"{trace_id}  {root['name']:<20} "
            f"{root['data']['duration_seconds'] * 1e3:9.3f}ms  "
            f"{len(group)} spans")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Reconstruct per-request timelines from a JSONL "
                    "event stream.",
    )
    parser.add_argument("path", type=Path, help="a *.events.jsonl file")
    parser.add_argument("--trace", default=None,
                        help="render only this trace id")
    parser.add_argument("--list", action="store_true",
                        help="one summary line per trace")
    args = parser.parse_args(argv)

    from repro.obs.events import read_events

    try:
        events = read_events(args.path)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 1
    traces = group_traces(trace_spans(events))
    if not traces:
        print(f"no trace spans in {args.path}", file=sys.stderr)
        return 1

    if args.list:
        for trace_id, group in traces.items():
            print(_trace_summary(trace_id, group))
        return 0

    if args.trace is not None:
        if args.trace not in traces:
            print(f"trace {args.trace} not found", file=sys.stderr)
            return 1
        print(render_trace(traces, args.trace))
        return 0

    # Default: render request traces (http.* roots) if any, else all
    # traces that are not pure link targets of another rendered trace.
    request_ids = [
        tid for tid, group in traces.items()
        if any(e["data"].get("parent_span_id") is None
               and e["name"].startswith("http.") for e in group)
    ]
    shown = request_ids or list(traces)
    linked_away: set[str] = set()
    if request_ids:
        for tid in request_ids:
            for sid in _linked_into(traces, tid):
                for event in _linked_into(traces, tid)[sid]:
                    linked_away.add(event["data"]["trace_id"])
    for tid in shown:
        if tid in linked_away and tid not in request_ids:
            continue
        print(render_trace(traces, tid))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

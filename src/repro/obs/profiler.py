"""Op-level profiler for the tensor/backend substrate.

``with profile() as prof:`` instruments every primitive registered in
:mod:`repro.backend.registry` — which is exactly the set of tensor ops,
including the fused hot-path kernels — and reports per-op call counts,
wall time and bytes produced for everything dispatched inside the block.

Zero steady-state cost by construction
--------------------------------------
The ops are ordinary module-level functions that layers call directly
(the registry is a dispatch *seam*, not a dispatch *path*), so there is
no always-on hook to pay for. Instead, :func:`profile` swaps the op
functions for timing wrappers at entry and restores the originals at
exit, in two places:

* the backend registry itself (:func:`repro.backend.registry.override`),
  so registry-routed callers and introspection see the wrappers;
* every ``repro.*`` module global bound to an op function — this covers
  ``repro.tensor.ops`` (through which all ``Tensor`` operator overloads
  dispatch), the ``repro.tensor`` package re-exports, and any
  ``from repro.tensor import linear``-style binding in the layers.

Counting semantics: each wrapper invocation is one *dispatched op*. Ops
that internally dispatch another registered op (``softmax`` routing its
last-axis case to ``row_softmax``) count both, because both genuinely
ran. Backward closures execute raw numpy and are deliberately invisible
— the profiler measures the op surface, not its gradient arithmetic.
"""

from __future__ import annotations

import contextlib
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.backend import registry as _registry

#: Ops that are fused multi-op kernels; their share of total dispatches
#: is the fused-op coverage ratio reported by :meth:`OpProfile.fused_coverage`.
FUSED_OPS = frozenset(
    {"linear", "conv1x1", "row_softmax", "pairwise_scores", "gated_fusion",
     "joint_rmse", "edge_aggregate", "sdp_attention"}
)


@dataclass(slots=True)
class OpStat:
    """Aggregate statistics for one op inside a profiled block."""

    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0  # total nbytes of the arrays the op produced


@dataclass(slots=True)
class OpProfile:
    """Result object yielded by :func:`profile`; fills in as ops run."""

    stats: dict[str, OpStat] = field(default_factory=dict)

    @property
    def total_calls(self) -> int:
        return sum(stat.calls for stat in self.stats.values())

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.stats.values())

    @property
    def total_bytes(self) -> int:
        return sum(stat.bytes for stat in self.stats.values())

    def fused_coverage(self) -> float:
        """Fraction of dispatched ops that were fused kernels (0 if none ran)."""
        total = self.total_calls
        if not total:
            return 0.0
        fused = sum(stat.calls for name, stat in self.stats.items()
                    if name in FUSED_OPS)
        return fused / total

    def to_dict(self) -> dict:
        """JSON-serialisable form (embedded in run reports)."""
        return {
            "ops": {
                name: {"calls": s.calls, "seconds": s.seconds, "bytes": s.bytes}
                for name, s in sorted(self.stats.items())
            },
            "total_calls": self.total_calls,
            "total_seconds": self.total_seconds,
            "total_bytes": self.total_bytes,
            "fused_coverage": self.fused_coverage(),
        }

    def table(self, limit: int | None = None) -> str:
        """Fixed-width text table, most expensive ops first."""
        rows = sorted(self.stats.items(), key=lambda kv: kv[1].seconds,
                      reverse=True)
        if limit is not None:
            rows = rows[:limit]
        lines = [f"{'op':<18} {'calls':>8} {'seconds':>10} {'MB':>9} {'fused':>6}"]
        for name, stat in rows:
            lines.append(
                f"{name:<18} {stat.calls:>8} {stat.seconds:>10.4f} "
                f"{stat.bytes / 1e6:>9.2f} {'yes' if name in FUSED_OPS else '':>6}"
            )
        lines.append(
            f"{'total':<18} {self.total_calls:>8} {self.total_seconds:>10.4f} "
            f"{self.total_bytes / 1e6:>9.2f} "
            f"{self.fused_coverage() * 100:>5.1f}%"
        )
        return "\n".join(lines)


def _make_wrapper(name: str, fn: Callable, profile_: OpProfile) -> Callable:
    stat = profile_.stats.setdefault(name, OpStat())
    perf_counter = time.perf_counter

    def wrapper(*args, **kwargs):
        start = perf_counter()
        out = fn(*args, **kwargs)
        stat.seconds += perf_counter() - start
        stat.calls += 1
        data = getattr(out, "data", None)
        if data is not None:
            stat.bytes += data.nbytes
        return out

    wrapper.__name__ = fn.__name__
    wrapper.__qualname__ = fn.__qualname__
    wrapper.__wrapped__ = fn
    return wrapper


_ACTIVE = False


@contextlib.contextmanager
def profile() -> Iterator[OpProfile]:
    """Instrument every registered op for the duration of the block.

    Not reentrant — nesting profiles would double-count every dispatch —
    and not thread-safe (it swaps module globals, like everything else
    in this single-threaded substrate).
    """
    global _ACTIVE
    if _ACTIVE:
        raise RuntimeError("profile() does not nest")

    prof = OpProfile()
    originals = {name: _registry.get_op(name) for name in _registry.list_ops()}
    by_id = {id(fn): name for name, fn in originals.items()}
    wrappers = {name: _make_wrapper(name, fn, prof)
                for name, fn in originals.items()}

    # Swap in the wrappers: registry seam first, then every repro module
    # global that holds one of the original function objects.
    rebound: list[tuple[object, str, Callable]] = []
    for name, wrapper in wrappers.items():
        _registry.override(name, wrapper)
    for mod_name, module in list(sys.modules.items()):
        if module is None or not (mod_name == "repro" or mod_name.startswith("repro.")):
            continue
        for attr, value in list(vars(module).items()):
            op_name = by_id.get(id(value))
            if op_name is not None:
                setattr(module, attr, wrappers[op_name])
                rebound.append((module, attr, originals[op_name]))

    _ACTIVE = True
    try:
        yield prof
    finally:
        _ACTIVE = False
        for name, fn in originals.items():
            _registry.override(name, fn)
        for module, attr, fn in rebound:
            setattr(module, attr, fn)
        # Drop ops that never ran so reports list only what executed.
        for name in [n for n, s in prof.stats.items() if not s.calls]:
            del prof.stats[name]

"""End-of-run reports: the ``RunReport`` artifact and its CLI renderer.

A :class:`RunReport` is the durable summary of one training run —
per-epoch records, the final metrics snapshot, and whatever extra
payload the caller attaches (an op profile, pool statistics). The run
recorder persists it as ``<run_id>.report.json`` next to the JSONL
event stream, in the same directory checkpoints go.

Render one from the command line::

    PYTHONPATH=src python -m repro.obs.report runs/           # newest report
    PYTHONPATH=src python -m repro.obs.report runs/run-1.report.json
    PYTHONPATH=src python -m repro.obs.report runs/run-1.events.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path


@dataclass(slots=True)
class EpochRecord:
    """One row of the training table (losses in normalised space)."""

    epoch: int
    train_loss: float
    val_loss: float
    grad_norm: float | None = None
    samples_per_sec: float | None = None
    learning_rate: float | None = None
    seconds: float | None = None


@dataclass(slots=True)
class RunReport:
    """Summary of one run: config, per-epoch records, metrics, extras."""

    run_id: str
    created: float = field(default_factory=time.time)
    config: dict = field(default_factory=dict)
    epochs: list[EpochRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def best_epoch(self) -> int:
        """Index of the lowest validation loss (-1 when no epochs ran)."""
        if not self.epochs:
            return -1
        return min(range(len(self.epochs)), key=lambda i: self.epochs[i].val_loss)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["schema"] = 1
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        data = dict(data)
        data.pop("schema", None)
        data["epochs"] = [EpochRecord(**row) for row in data.get("epochs", [])]
        return cls(**data)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: float | None, spec: str = ".5f") -> str:
    return "-" if value is None else format(value, spec)


def render_report(report: RunReport) -> str:
    """Human-readable summary: header, epoch table, metric highlights."""
    lines = [
        f"run      {report.run_id}",
        f"created  {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(report.created))}",
    ]
    if report.config:
        interesting = {k: v for k, v in report.config.items() if v is not None}
        lines.append("config   " + ", ".join(f"{k}={v}" for k, v in interesting.items()))

    if report.epochs:
        best = report.best_epoch
        lines.append("")
        lines.append(f"{'epoch':>5} {'train':>10} {'val':>10} {'grad norm':>10} "
                     f"{'samples/s':>10} {'lr':>9} {'seconds':>8}")
        for row in report.epochs:
            marker = " *" if row.epoch == best else ""
            lines.append(
                f"{row.epoch:>5} {row.train_loss:>10.5f} {row.val_loss:>10.5f} "
                f"{_fmt(row.grad_norm, '.4f'):>10} "
                f"{_fmt(row.samples_per_sec, '.1f'):>10} "
                f"{_fmt(row.learning_rate, '.4g'):>9} "
                f"{_fmt(row.seconds, '.2f'):>8}{marker}"
            )
        lines.append(f"best epoch: {best} "
                     f"(val {report.epochs[best].val_loss:.5f})")

    if report.metrics:
        lines.append("")
        lines.append("metrics:")
        for name, data in sorted(report.metrics.items()):
            if data["kind"] == "histogram":
                mean = data["sum"] / data["count"] if data["count"] else 0.0
                lines.append(f"  {name:<40} count={data['count']} "
                             f"mean={mean:.6g} max={data['max']}")
            else:
                lines.append(f"  {name:<40} {data['value']:.6g}")

    ops = report.extra.get("op_profile")
    if ops:
        lines.append("")
        lines.append(f"op profile: {ops['total_calls']} dispatches, "
                     f"{ops['total_seconds']:.4f}s, "
                     f"fused coverage {ops['fused_coverage'] * 100:.1f}%")

    transport = report.extra.get("transport")
    if transport:
        phases = transport.get("phase_seconds", {})
        phase_text = ", ".join(f"{k}={v:.3f}s" for k, v in phases.items())
        state = " (degraded to serial)" if transport.get("degraded") else ""
        lines.append("")
        lines.append(
            f"transport: {transport.get('transport', '?')} "
            f"x{transport.get('workers', '?')} workers{state}, "
            f"reduce/compute overlap "
            f"{transport.get('overlap_ratio', 0.0) * 100:.1f}%"
        )
        if phase_text:
            lines.append(f"  phases: {phase_text}")
        fallbacks = {
            name: data["value"]
            for name, data in report.metrics.items()
            if name in ("parallel.transport_fallback", "parallel.fallback")
            and data.get("value")
        }
        if fallbacks:
            lines.append("  fallbacks: "
                         + ", ".join(f"{k}={v:g}" for k, v in fallbacks.items()))
    return "\n".join(lines)


def summarize_events(events: list[dict]) -> str:
    """Compact summary of a raw event stream (no report file needed)."""
    kinds: dict[str, int] = {}
    for event in events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    lines = [f"{len(events)} events: "
             + ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))]
    epoch_events = [e for e in events if e["kind"] == "epoch"]
    if epoch_events:
        lines.append(f"{'epoch':>5} {'train':>10} {'val':>10}")
        for event in epoch_events:
            data = event["data"]
            lines.append(f"{data.get('epoch', '?'):>5} "
                         f"{data.get('train_loss', float('nan')):>10.5f} "
                         f"{data.get('val_loss', float('nan')):>10.5f}")
    phase_events = [e for e in events if e["name"] == "parallel.epoch_phases"]
    if phase_events:
        ratios = [e["data"].get("overlap_ratio", 0.0) for e in phase_events]
        lines.append(
            f"parallel: {len(phase_events)} epochs on "
            f"{phase_events[-1]['data'].get('transport', '?')} transport, "
            f"reduce/compute overlap mean "
            f"{sum(ratios) / len(ratios) * 100:.1f}%"
        )
    fallback_events = [
        e for e in events
        if e["name"] in ("parallel.fallback", "parallel.transport_fallback")
    ]
    for event in fallback_events:
        lines.append(f"fallback: {event['name']} "
                     f"({event['data'].get('reason', '?')})")
    drift_events = [e for e in events if e["name"] == "quality.drift"]
    for event in drift_events:
        lines.append(
            f"drift: ratio {event['data'].get('ratio', float('nan')):.3f} "
            f"crossed threshold "
            f"{event['data'].get('threshold', float('nan')):.3f}"
        )
    return "\n".join(lines)


def _resolve_target(path: Path) -> Path:
    """Directories resolve to their newest ``*.report.json``."""
    if path.is_dir():
        reports = sorted(path.glob("*.report.json"),
                         key=lambda p: p.stat().st_mtime)
        if not reports:
            raise FileNotFoundError(f"no *.report.json files under {path}")
        return reports[-1]
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a training run report or event stream.",
    )
    parser.add_argument("path", type=Path,
                        help="a *.report.json, *.events.jsonl, or a run directory")
    parser.add_argument("--json", action="store_true",
                        help="dump the raw report JSON instead of the table")
    args = parser.parse_args(argv)

    try:
        target = _resolve_target(args.path)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1

    if target.suffix == ".jsonl":
        from repro.obs.events import read_events

        print(summarize_events(read_events(target)))
        return 0

    report = RunReport.load(target)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_report(report))
    return 0


"""Entry point for ``python -m repro.obs.report``."""

import sys

from repro.obs.report import main

sys.exit(main())

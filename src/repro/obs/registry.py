"""Metrics registry: counters, gauges, histograms and timers.

The registry is the accumulation side of the observability layer
(:mod:`repro.obs`): instrumented code asks a :class:`Registry` for a
named metric once (usually at construction time) and then records into
it on the hot path. Three properties shape the design:

* **near-zero overhead when disabled** — every recording method
  (``inc``, ``set``, ``observe``) is gated on a single attribute read of
  the owning registry's ``enabled`` flag, so uninstrumented runs pay one
  predictable branch per call site and allocate nothing;
* **process-safety under fork** — metrics are plain per-process Python
  state, no locks or shared memory. Forked gradient workers accumulate
  into their (copy-on-write) registry locally and ship a
  :meth:`Registry.drain` snapshot back with each result; the parent
  folds it in with :meth:`Registry.merge`, so worker-merged counters
  equal their serial-run values exactly;
* **fixed histogram layouts** — bucket bounds are immutable per metric,
  which is what makes merge well-defined (bucket-wise addition) and the
  Prometheus exposition (:mod:`repro.obs.prometheus`) a direct dump.

Merge semantics: counters and histograms add; gauges take the incoming
value (last write wins), matching their "most recent observation" role.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import time
from typing import Iterator

#: Default histogram layout for durations in seconds: a 1-2.5-5 ladder
#: from 100 microseconds to 10 seconds, covering everything from a single
#: fused op to a full training epoch.
TIME_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default layout for unitless values: powers of ten around 1.
VALUE_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)


class Counter:
    """Monotonically increasing sum. ``inc`` is a no-op when disabled."""

    __slots__ = ("name", "value", "_registry")
    kind = "counter"

    def __init__(self, name: str, registry: "Registry") -> None:
        self.name = name
        self.value = 0.0
        self._registry = registry

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            if amount < 0:
                raise ValueError(f"counter {self.name!r} cannot decrease")
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-observed value (worker utilisation, pool occupancy, LR)."""

    __slots__ = ("name", "value", "_registry")
    kind = "gauge"

    def __init__(self, name: str, registry: "Registry") -> None:
        self.name = name
        self.value = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket (``+Inf``) catches everything beyond the last edge. The
    layout is frozen at construction so two histograms of the same
    metric always merge bucket-for-bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max",
                 "_registry")
    kind = "histogram"

    def __init__(self, name: str, registry: "Registry",
                 bounds: tuple[float, ...] = VALUE_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._registry = registry

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @contextlib.contextmanager
    def time(self) -> Iterator[None]:
        """Observe the monotonic duration of the ``with`` block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            # inf/-inf are not valid JSON: empty histograms export None.
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.6g})")


class Registry:
    """A namespace of metrics with get-or-create accessors.

    Metrics are keyed by name; asking twice returns the same object, and
    asking for an existing name with a different metric kind raises.
    New registries start ``enabled=False`` — instrumentation can be laid
    down everywhere and costs one branch per call site until a run
    recorder (or a test) switches it on.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- accessors ------------------------------------------------------
    def _get_or_create(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, self))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, self))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = VALUE_BUCKETS) -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, self, bounds))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a histogram")
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already exists with bounds {metric.bounds}"
            )
        return metric

    def timer(self, name: str) -> Histogram:
        """A histogram of seconds with the duration bucket layout."""
        return self.histogram(name, bounds=TIME_BUCKETS)

    def metrics(self) -> dict[str, Counter | Gauge | Histogram]:
        """Name → metric mapping (live objects, insertion-ordered)."""
        return dict(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- fork-safe accumulation -----------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-data view of every metric (JSON-serialisable)."""
        return {name: metric.snapshot() for name, metric in self._metrics.items()}

    def reset(self) -> None:
        """Zero every metric in place (objects stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def drain(self) -> dict[str, dict]:
        """Snapshot then reset: the delta a forked worker ships home."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` payload into this registry.

        Counters and histograms add; gauges take the incoming value.
        Metrics absent here are created, so a parent can merge a worker's
        registry wholesale. Merging ignores the ``enabled`` flag — the
        values were already paid for in the process that recorded them.
        """
        for name, data in snapshot.items():
            kind = data["kind"]
            if kind == "counter":
                self.counter(name).value += data["value"]
            elif kind == "gauge":
                self.gauge(name).value = data["value"]
            elif kind == "histogram":
                hist = self.histogram(name, bounds=tuple(data["bounds"]))
                for i, n in enumerate(data["bucket_counts"]):
                    hist.bucket_counts[i] += n
                hist.count += data["count"]
                hist.sum += data["sum"]
                if data["min"] is not None and data["min"] < hist.min:
                    hist.min = data["min"]
                if data["max"] is not None and data["max"] > hist.max:
                    hist.max = data["max"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Registry({len(self._metrics)} metrics, {state})"


# ----------------------------------------------------------------------
# Process-global default registry
# ----------------------------------------------------------------------
_DEFAULT = Registry(enabled=False)


def default_registry() -> Registry:
    """The process-wide registry instrumented library code records into."""
    return _DEFAULT


def metrics_enabled() -> bool:
    return _DEFAULT.enabled


def enable_metrics(enabled: bool = True) -> bool:
    """Switch the default registry on/off; returns the previous state."""
    previous = _DEFAULT.enabled
    _DEFAULT.enabled = enabled
    return previous


@contextlib.contextmanager
def metrics_scope(enabled: bool = True) -> Iterator[Registry]:
    """Scope the default registry's enabled flag to a ``with`` block."""
    previous = enable_metrics(enabled)
    try:
        yield _DEFAULT
    finally:
        enable_metrics(previous)

"""Op registry: the dispatch seam between layers and implementations.

Every primitive the tensor engine exposes registers itself here under a
stable name (``"add"``, ``"matmul"``, ``"linear"``, ...). Layers above
keep calling the python functions directly — the registry costs nothing
on the hot path — but the table gives the substrate an explicit,
inspectable op surface:

* an alternative backend (a C extension, a GPU array library) overrides
  individual ops with :func:`override` instead of monkeypatching
  modules;
* tooling enumerates exactly which primitives a model exercises
  (:func:`list_ops`), which is how the fused-kernel coverage tests know
  the registry and the public op module agree.
"""

from __future__ import annotations

from typing import Callable

_OPS: dict[str, Callable] = {}


def register(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as the implementation of op ``name``."""

    def decorator(fn: Callable) -> Callable:
        if name in _OPS:
            raise ValueError(f"op {name!r} registered twice")
        _OPS[name] = fn
        return fn

    return decorator


def override(name: str, fn: Callable) -> Callable:
    """Replace op ``name``'s implementation; returns the previous one."""
    if name not in _OPS:
        raise KeyError(f"cannot override unknown op {name!r}")
    previous = _OPS[name]
    _OPS[name] = fn
    return previous


def get_op(name: str) -> Callable:
    """Look up the current implementation of op ``name``."""
    try:
        return _OPS[name]
    except KeyError:
        raise KeyError(f"unknown op {name!r}; known: {sorted(_OPS)}") from None


def has_op(name: str) -> bool:
    return name in _OPS


def list_ops() -> list[str]:
    """Sorted names of every registered primitive."""
    return sorted(_OPS)

"""The compute backend: dtype policy, allocation, op dispatch, buffers.

This package is the seam between the numerical substrate and everything
built on it. Layers above (``repro.tensor``, ``repro.nn``, ...) obtain
dtypes and arrays from here instead of hardcoding ``float64``, primitive
ops register themselves in :mod:`repro.backend.registry`, and the
forward-only serving path draws scratch arrays from
:mod:`repro.backend.pool`.

Policy summary:

* default dtype is ``float64`` — gradient checks and training stay in
  double precision, bit-for-bit identical to the pre-backend substrate;
* inference opts into ``float32`` via ``repro.inference_mode`` (or a
  :func:`dtype_scope`), halving memory traffic on the hot path;
* allocation goes through :func:`asarray` / :func:`zeros` /
  :func:`ones` / :func:`empty` so an alternative array backend is a
  one-package swap.
"""

from repro.backend.backend import (
    SUPPORTED_DTYPES,
    asarray,
    default_dtype,
    dtype_scope,
    empty,
    ones,
    resolve_dtype,
    set_default_dtype,
    zeros,
)
from repro.backend.pool import BufferPool, active_pool, buffer_scope
from repro.backend.registry import get_op, has_op, list_ops, override, register

__all__ = [
    "SUPPORTED_DTYPES",
    "asarray",
    "default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "resolve_dtype",
    "zeros",
    "ones",
    "empty",
    "BufferPool",
    "active_pool",
    "buffer_scope",
    "register",
    "override",
    "get_op",
    "has_op",
    "list_ops",
]

"""Scratch-buffer pool for the forward-only fast path.

Online serving calls the model once per time slot with identically
shaped inputs, so every intermediate array of slot ``t`` has an exact
shape/dtype twin in slot ``t+1``. The pool exploits that: fused ops ask
:meth:`BufferPool.take` for their output buffer instead of allocating,
and the caller releases everything back in one stroke when the
prediction is finished.

Safety model — buffers handed out stay **in use** until
:meth:`BufferPool.release_all`, so two ops inside one prediction can
never alias each other's output. Reuse only happens *across* pool
scopes (i.e. across prediction calls), which is exactly when the
previous slot's intermediates are dead. The pool must therefore only be
active while gradients are off: a recorded graph keeps intermediate
arrays alive past the scope's end.

Returned buffers are uninitialised (``np.empty`` semantics): takers must
fully overwrite them, which the fused ops do by construction (``out=``
targets of ``np.matmul`` / ``np.multiply``).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.backend import backend


class BufferPool:
    """Shape/dtype-keyed free lists of reusable scratch arrays.

    Reuse statistics are first-class: ``takes`` (total requests),
    ``hits`` (served from a free list), ``misses`` (fresh allocations)
    and ``peak_outstanding`` (high-water mark of simultaneously held
    buffers) make pool efficiency inspectable — ``repr(pool)`` or
    :meth:`stats` — without attaching a profiler.
    """

    __slots__ = ("_free", "_in_use", "hits", "misses", "peak_outstanding")

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._in_use: list[np.ndarray] = []
        self.hits = 0
        self.misses = 0
        self.peak_outstanding = 0

    def take(self, shape: tuple[int, ...], dtype=None) -> np.ndarray:
        """A scratch array of ``shape``/``dtype`` with undefined contents."""
        dtype = backend.resolve_dtype(dtype)
        key = (tuple(shape), dtype)
        free = self._free.get(key)
        if free:
            self.hits += 1
            buffer = free.pop()
        else:
            self.misses += 1
            buffer = np.empty(shape, dtype=dtype)
        self._in_use.append(buffer)
        if len(self._in_use) > self.peak_outstanding:
            self.peak_outstanding = len(self._in_use)
        return buffer

    def take_like(self, array: np.ndarray) -> np.ndarray:
        """A scratch array matching ``array``'s shape and dtype."""
        return self.take(array.shape, array.dtype)

    def release_all(self) -> None:
        """Return every outstanding buffer to the free lists."""
        for buffer in self._in_use:
            self._free.setdefault((buffer.shape, buffer.dtype), []).append(buffer)
        self._in_use.clear()

    def clear(self) -> None:
        """Drop all buffers (frees the memory; outstanding takes unaffected)."""
        self._free.clear()
        self._in_use.clear()

    @property
    def outstanding(self) -> int:
        return len(self._in_use)

    @property
    def takes(self) -> int:
        """Total buffer requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of takes served without allocating (0 when unused)."""
        takes = self.takes
        return self.hits / takes if takes else 0.0

    def stats(self) -> dict[str, int | float]:
        """Reuse statistics as a plain dict (run-report friendly)."""
        return {
            "takes": self.takes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "outstanding": self.outstanding,
            "peak_outstanding": self.peak_outstanding,
        }

    def __repr__(self) -> str:
        return (
            f"BufferPool(takes={self.takes}, hits={self.hits}, "
            f"misses={self.misses}, outstanding={self.outstanding}, "
            f"peak_outstanding={self.peak_outstanding})"
        )


_ACTIVE_POOL: BufferPool | None = None


def active_pool() -> BufferPool | None:
    """The pool fused ops should draw from, or None outside a scope."""
    return _ACTIVE_POOL


@contextlib.contextmanager
def buffer_scope(pool: BufferPool | None = None) -> Iterator[BufferPool]:
    """Activate ``pool`` (or a throwaway one) for the ``with`` block.

    On exit every buffer taken inside the block is released for reuse by
    the next scope over the same pool instance. Scopes nest: the inner
    scope's pool shadows the outer one.
    """
    global _ACTIVE_POOL
    previous = _ACTIVE_POOL
    _ACTIVE_POOL = pool if pool is not None else BufferPool()
    try:
        yield _ACTIVE_POOL
    finally:
        _ACTIVE_POOL.release_all()
        _ACTIVE_POOL = previous

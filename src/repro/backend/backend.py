"""Dtype policy and array allocation for the compute substrate.

The backend owns two things every layer above it used to hardcode:

* the **default dtype** — ``float64`` globally (gradient checks compare
  against finite differences at 1e-6 tolerances and need the headroom),
  switchable to ``float32`` for inference where memory bandwidth, not
  precision, is the bottleneck;
* the **allocators** — every array the substrate materialises
  (:func:`asarray`, :func:`zeros`, :func:`ones`, :func:`empty`) goes
  through here, so a dtype change (or, later, an alternative array
  library) is a one-module swap instead of a repo-wide grep.

The policy is a thread-global stack: :func:`set_default_dtype` installs a
new default, :func:`dtype_scope` scopes one to a ``with`` block. Training
code that *must* run in double precision (gradient accumulation, the
finite-difference checks) pins it explicitly with
``dtype_scope(np.float64)`` rather than trusting the ambient default.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

#: Dtypes the substrate supports. float16 is deliberately absent: numpy
#: computes float16 by round-tripping through float32, so it is slower
#: *and* less precise — there is no hardware half-precision to exploit.
SUPPORTED_DTYPES = (np.float32, np.float64)

_DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)

#: Canonicalised once — ``resolve_dtype`` sits on the per-op hot path
#: (every tensor allocation and pool take), so the membership check must
#: not rebuild the supported list per call.
_SUPPORTED_RESOLVED = frozenset(np.dtype(d) for d in SUPPORTED_DTYPES)


def resolve_dtype(dtype: "str | np.dtype | type | None") -> np.dtype:
    """Canonicalise ``dtype`` (name, numpy type or dtype) to ``np.dtype``.

    ``None`` resolves to the current default, so callers can thread an
    optional dtype straight through without branching.
    """
    if dtype is None:
        return _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_RESOLVED:
        raise ValueError(
            f"unsupported dtype {resolved}; supported: "
            f"{[np.dtype(d).name for d in SUPPORTED_DTYPES]}"
        )
    return resolved


def default_dtype() -> np.dtype:
    """The dtype new tensors and parameters are allocated with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: "str | np.dtype | type") -> np.dtype:
    """Install a new global default dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def dtype_scope(dtype: "str | np.dtype | type") -> Iterator[np.dtype]:
    """Scope the default dtype to a ``with`` block (exception-safe)."""
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)


# ----------------------------------------------------------------------
# Allocators
# ----------------------------------------------------------------------
def asarray(value, dtype: "str | np.dtype | type | None" = None) -> np.ndarray:
    """Coerce ``value`` to an array of the backend (or given) dtype.

    This is the single place raw python ints/floats/sequences acquire a
    dtype — binary ops route their non-tensor operand through here so a
    ``float32`` graph is never silently upcast by a python scalar.
    """
    return np.asarray(value, dtype=resolve_dtype(dtype))


def zeros(shape, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def ones(shape, dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=resolve_dtype(dtype))


def empty(shape, dtype=None) -> np.ndarray:
    return np.empty(shape, dtype=resolve_dtype(dtype))

"""Shared-memory arenas for the data-parallel gradient transport.

The worker pool's shm transport (``core/parallel.py``) moves parameters
and gradients between the parent and its forked workers through
persistent ``multiprocessing.shared_memory`` segments instead of pickled
pipe messages. This module owns the byte-level contract of those
segments:

* :class:`ParamLayout` — the flat layout of a parameter list: one
  8-byte-aligned ``(offset, shape, dtype)`` block per parameter, in
  parameter order. The same layout describes both the parameter arena
  (parent publishes, workers map read-only views) and the gradient
  payload of each worker arena (workers accumulate, parent reduces) —
  it is the shared-memory mirror of the per-tensor ``_grad_buffer``
  layout the serial loop already uses.
* :class:`GradHeaderLayout` — the small header in front of each
  worker's gradient payload: the shard's summed loss (float64) and one
  "has gradient" flag byte per parameter, so ``None`` gradients (a
  parameter untouched by the shard) reduce exactly as they do on the
  pipe transport instead of being conflated with zeros.
* :class:`SharedArena` — a thin owner of one ``SharedMemory`` segment
  with crash-safe teardown: :meth:`SharedArena.destroy` unlinks the
  ``/dev/shm`` name *first* (so a teardown interrupted half-way never
  leaks the segment) and tolerates numpy views that still hold buffer
  exports (the OS frees the pages when the last mapping dies).

Only the parent process creates or destroys arenas. Forked workers
inherit the parent's ``SharedArena`` objects copy-on-write — the
``MAP_SHARED`` mapping itself is shared, which is what makes worker
writes visible to the parent — and simply exit without cleanup; the
multiprocessing fork bootstrap leaves interpreter teardown to the
parent, so workers never race the parent's unlink.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    _shared_memory = None

__all__ = [
    "GradHeaderLayout",
    "ParamLayout",
    "SharedArena",
    "shm_available",
]

#: Every parameter block starts on an 8-byte boundary, so float64 views
#: are always aligned regardless of the dtypes that precede them.
_ALIGN = 8


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable here."""
    return _shared_memory is not None


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


class ParamLayout:
    """Flat byte layout of an ordered list of arrays.

    Built once from the parent's parameter arrays; both sides of the
    transport derive their numpy views from the same layout object
    (inherited through the fork), so offsets can never disagree.
    """

    __slots__ = ("fields", "total_bytes")

    def __init__(self, arrays: "list[np.ndarray]") -> None:
        offset = 0
        fields: list[tuple[int, tuple[int, ...], np.dtype]] = []
        for data in arrays:
            offset = _align(offset)
            fields.append((offset, data.shape, data.dtype))
            offset += data.nbytes
        self.fields = fields
        self.total_bytes = max(offset, _ALIGN)

    def __len__(self) -> int:
        return len(self.fields)

    def views(
        self, buf, base_offset: int = 0, writeable: bool = True
    ) -> "list[np.ndarray]":
        """Numpy views over ``buf``, one per field, sharing its memory.

        ``writeable=False`` marks the views read-only — the worker-side
        discipline for the parameter arena, which only the parent may
        write.
        """
        views = []
        for offset, shape, dtype in self.fields:
            count = int(math.prod(shape)) if shape else 1
            view = np.frombuffer(
                buf, dtype=dtype, count=count, offset=base_offset + offset
            ).reshape(shape)
            if not writeable:
                view.flags.writeable = False
            views.append(view)
        return views


class GradHeaderLayout:
    """Header preceding a worker arena's gradient payload.

    ``[loss_sum: float64][has_grad: uint8 * num_params][pad to 8]``
    """

    __slots__ = ("num_params", "header_bytes")

    def __init__(self, num_params: int) -> None:
        self.num_params = num_params
        self.header_bytes = _align(8 + num_params)

    def loss_view(self, buf) -> np.ndarray:
        return np.frombuffer(buf, dtype=np.float64, count=1, offset=0)

    def flags_view(self, buf) -> np.ndarray:
        return np.frombuffer(buf, dtype=np.uint8, count=self.num_params, offset=8)


class SharedArena:
    """One shared-memory segment, owned (created and destroyed) by the parent."""

    __slots__ = ("_shm", "name", "nbytes")

    def __init__(self, nbytes: int) -> None:
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._shm = _shared_memory.SharedMemory(create=True, size=nbytes)
        self.name = self._shm.name
        self.nbytes = nbytes

    @property
    def buf(self):
        return self._shm.buf

    def destroy(self) -> None:
        """Unlink and unmap; idempotent, safe with live numpy views.

        Unlink comes first: once the name is gone the segment cannot
        leak, even if the close below trips over a still-exported numpy
        view (the kernel frees the pages when the final mapping drops).
        """
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        try:
            self._shm.close()
        except BufferError:
            # A numpy view still exports the buffer. Hand the mapping's
            # lifetime to the views: without this the SharedMemory
            # destructor retries the close at GC time and raises the
            # same BufferError as an unraisable warning.
            self._shm._mmap = None

    def __repr__(self) -> str:
        return f"SharedArena(name={self.name!r}, nbytes={self.nbytes})"

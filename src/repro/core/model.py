"""STGNN-DJD: the paper's full model (Secs. IV-VI) plus its ablations.

Pipeline per prediction time ``t``:

1. **Graph generation** — flow convolution turns the short/long flow
   windows into dynamic node features ``T`` (Eqs. 1-9); the FCG and PCG
   are built from ``T`` (Defs. 2-3).
2. **Dependency learning** — ``FlowGNN`` (flow aggregator, 2 layers) and
   ``PatternGNN`` (multi-head attention, 3 layers, 4 heads) produce
   per-graph station embeddings, concatenated per Eq. 19.
3. **Prediction** — a linear head maps each station embedding to
   ``(x_hat, y_hat)`` (Eq. 20), in normalised space.

The Sec. VII-F ablations are configuration switches: ``use_flow_conv``
(No FC: node features become free learnable parameters), ``use_fcg`` and
``use_pcg`` (drop one graph branch). The Figs. 5-9 studies map to
``fcg_aggregator``, ``pcg_aggregator``, ``num_heads``, ``fcg_layers``
and ``pcg_layers``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.gnn import FlowGNN, PatternGNN
from repro.data.dataset import BikeShareDataset, FlowSample
from repro.graphs import (
    VALID_GRAPH_MODES,
    FlowConvolution,
    FlowConvolutionOutput,
    GraphSparsityConfig,
    PatternCorrelationGraph,
    build_fcg,
)
from repro import backend
from repro.nn import Dropout, Linear, Module, Parameter, init
from repro.tensor import Tensor, concat, inference_mode, is_grad_enabled


@dataclass(frozen=True, slots=True)
class STGNNDJDConfig:
    """Hyperparameters; defaults follow the paper's Sec. VII-C settings."""

    num_stations: int
    short_window: int = 96  # k
    long_days: int = 7  # d
    fcg_layers: int = 2
    pcg_layers: int = 3
    num_heads: int = 4  # m
    dropout: float = 0.2
    flow_scale: float = 1.0  # input scaling (max training flow count)
    use_flow_conv: bool = True  # False = "No FC" ablation
    use_fcg: bool = True  # False = "No FCG" ablation
    use_pcg: bool = True  # False = "No PCG" ablation
    fcg_aggregator: str = "flow"  # Fig. 5: flow | mean | max
    pcg_aggregator: str = "attention"  # Fig. 6: attention | mean | max
    # Sec. IX extension: predict slots t .. t+horizon-1 jointly. The
    # paper sketches exactly this ("replacing the model output {O^t, I^t}
    # as {O^t, ..., O^{t+k}, I^t, ..., I^{t+k}}"); horizon=1 is the
    # paper's single-step setting.
    horizon: int = 1
    # Graph representation at paper scale: "auto" keeps dense edges while
    # num_stations <= graph_top_k (every small-city test/bench is
    # bit-for-bit unchanged) and switches to top-k sparse edge lists
    # beyond; "dense"/"sparse" force a representation. graph_block_rows
    # bounds the gather kernels' transient memory (see repro.graphs.sparse).
    graph_mode: str = "auto"
    graph_top_k: int = 64
    graph_block_rows: int = 256

    def __post_init__(self) -> None:
        if self.num_stations < 2:
            raise ValueError("need at least 2 stations")
        if not self.use_fcg and not self.use_pcg:
            raise ValueError("at least one of FCG/PCG must be enabled")
        if self.flow_scale <= 0:
            raise ValueError("flow_scale must be positive")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.graph_mode not in VALID_GRAPH_MODES:
            raise ValueError(
                f"unknown graph_mode {self.graph_mode!r}; choose from {VALID_GRAPH_MODES}"
            )
        if self.graph_top_k < 1:
            raise ValueError("graph_top_k must be >= 1")
        if self.graph_block_rows < 1:
            raise ValueError("graph_block_rows must be >= 1")

    @property
    def graph_sparsity(self) -> GraphSparsityConfig:
        """The sparsity policy the graph builders receive."""
        return GraphSparsityConfig(
            mode=self.graph_mode,
            top_k=self.graph_top_k,
            block_rows=self.graph_block_rows,
        )

    def with_overrides(self, **kwargs) -> "STGNNDJDConfig":
        """A copy with the given fields replaced (for ablation sweeps)."""
        return replace(self, **kwargs)


class STGNNDJD(Module):
    """The full spatial-temporal graph neural network."""

    def __init__(self, config: STGNNDJDConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        n = config.num_stations

        if config.use_flow_conv:
            self.flow_conv = FlowConvolution(
                n, config.short_window, config.long_days, rng
            )
        else:
            # "No FC" ablation: node features are free parameters; the
            # fused temporal flows (needed for the FCG mask/weights) fall
            # back to the mean of the short-term window at forward time.
            self.free_features = Parameter(
                init.xavier_uniform((n, n), rng), name="free_features"
            )

        self.feature_dropout = Dropout(config.dropout, rng=rng)
        self.graph_sparsity = config.graph_sparsity
        if config.use_pcg:
            self.pattern_gnn = PatternGNN(
                n,
                config.pcg_layers,
                config.num_heads,
                rng,
                aggregator=config.pcg_aggregator,
                dropout=config.dropout,
                sparsity=self.graph_sparsity,
            )
        if config.use_fcg:
            self.flow_gnn = FlowGNN(
                n,
                config.fcg_layers,
                rng,
                aggregator=config.fcg_aggregator,
                dropout=config.dropout,
            )

        embedding_width = n * (int(config.use_fcg) + int(config.use_pcg))
        # Eq. 20: W11 maps the station embedding to (demand, supply) —
        # per future slot when horizon > 1 (Sec. IX extension).
        self.predictor = Linear(embedding_width, 2 * config.horizon, rng=rng)

        # Forward-only staging buffers for the scaled flow-window stacks,
        # reused across prediction slots (shapes are fixed per config).
        self._staging: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls, dataset: BikeShareDataset, seed: int = 0, **overrides
    ) -> "STGNNDJD":
        """Build a model matching a dataset's dimensions and windows."""
        config = STGNNDJDConfig(
            num_stations=dataset.num_stations,
            short_window=dataset.config.short_window,
            long_days=dataset.config.long_days,
            flow_scale=dataset.flow_scale,
            **overrides,
        )
        return cls(config, np.random.default_rng(seed))

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _scaled_input(self, key: str, window: np.ndarray, scale: float) -> Tensor:
        """Scaled flow stack as a Tensor, staged in a reusable buffer.

        Under the recorded-graph path every call allocates (the graph may
        outlive the next call); on the forward-only path the scaled stack
        is written into a per-key preallocated buffer instead of
        re-materialising four window-sized arrays per slot.
        """
        if is_grad_enabled():
            return Tensor(window * scale)
        dtype = backend.default_dtype()
        buffer = self._staging.get(key)
        if buffer is None or buffer.shape != window.shape or buffer.dtype != dtype:
            buffer = np.empty(window.shape, dtype=dtype)
            self._staging[key] = buffer
        np.multiply(window, scale, out=buffer)
        return Tensor._from_data(buffer)

    def _node_features(self, sample: FlowSample) -> FlowConvolutionOutput:
        """Stage 1: dynamic node features from the sample's flow windows."""
        scale = 1.0 / self.config.flow_scale
        if self.config.use_flow_conv:
            return self.flow_conv(
                self._scaled_input("short_inflow", sample.short_inflow, scale),
                self._scaled_input("short_outflow", sample.short_outflow, scale),
                self._scaled_input("long_inflow", sample.long_inflow, scale),
                self._scaled_input("long_outflow", sample.long_outflow, scale),
            )
        # No-FC ablation: learnable features, data-derived flow matrices.
        return FlowConvolutionOutput(
            node_features=self.free_features,
            temporal_inflow=Tensor(sample.short_inflow.mean(axis=0) * scale),
            temporal_outflow=Tensor(sample.short_outflow.mean(axis=0) * scale),
        )

    def embed(self, sample: FlowSample) -> Tensor:
        """Stations' joint spatial-temporal embedding ``F`` (Eq. 19)."""
        flow_output = self._node_features(sample)
        features = self.feature_dropout(flow_output.node_features)
        flow_output = FlowConvolutionOutput(
            node_features=features,
            temporal_inflow=flow_output.temporal_inflow,
            temporal_outflow=flow_output.temporal_outflow,
        )
        parts = []
        if self.config.use_fcg:
            parts.append(self.flow_gnn(build_fcg(flow_output, self.graph_sparsity)))
        if self.config.use_pcg:
            # The PCG's edges (Eqs. 11-12) are the PatternGNN's first-
            # layer attention, recomputed inside the GNN (Sec. V-C
            # "extends Equations 11 and 12 to a multi-layer network"),
            # so the graph object here carries only node features.
            pcg = PatternCorrelationGraph(node_features=features, attention=None)
            parts.append(self.pattern_gnn(pcg))
        return parts[0] if len(parts) == 1 else concat(parts, axis=1)

    def forward(self, sample: FlowSample) -> tuple[Tensor, Tensor]:
        """Predict normalised ``(demand, supply)``.

        Shapes are ``(n,)`` for the paper's single-step setting and
        ``(n, horizon)`` when the multi-step extension is enabled.
        """
        embedding = self.embed(sample)
        output = self.predictor(embedding)  # (n, 2 * horizon)
        if self.config.horizon == 1:
            return output[:, 0], output[:, 1]
        h = self.config.horizon
        return output[:, :h], output[:, h:]

    # ------------------------------------------------------------------
    # Case-study introspection (Sec. VIII)
    # ------------------------------------------------------------------
    def dependency_matrix(self, sample: FlowSample) -> np.ndarray:
        """Generator-level PCG attention scores ``alpha`` at time ``t``.

        ``alpha[i, j]`` is the learned influence of station ``j`` on
        station ``i`` — the quantity plotted in Figs. 11-12. It is the
        PatternGNN's first-layer attention over the generator's node
        features, averaged over heads. Requires the attention PCG branch.
        """
        layers = self.layer_attention(sample)
        heads = layers[0]
        return np.mean(heads, axis=0)

    def layer_attention(self, sample: FlowSample) -> list[list[np.ndarray]]:
        """Per-layer, per-head PCG attention matrices at time ``t``."""
        if not self.config.use_pcg or self.config.pcg_aggregator != "attention":
            raise RuntimeError("layer attention requires the attention-based PCG branch")
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                flow_output = self._node_features(sample)
                pcg = PatternCorrelationGraph(
                    node_features=flow_output.node_features, attention=None
                )
                layers = self.pattern_gnn.attention_matrices(pcg)
                return [[head.data.copy() for head in layer] for layer in layers]
        finally:
            self.train(was_training)

"""The paper's contribution: STGNN-DJD model, aggregators, GNNs, trainer."""

from repro.core.aggregators import (
    FlowAggregator,
    MaxAggregator,
    MeanAggregator,
    make_fcg_aggregator,
)
from repro.core.gnn import FlowGNN, PatternGNN
from repro.core.model import STGNNDJD, STGNNDJDConfig
from repro.core.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.core.persistence import (
    SCHEMA_VERSION,
    SNAPSHOT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointSchemaError,
    TrainingSnapshot,
    checkpoint_schema_version,
    load_config,
    load_state,
    load_stgnn,
    load_training_snapshot,
    save_checkpoint,
    save_training_snapshot,
    training_fingerprint,
)
from repro.core.tuning import (
    CandidateResult,
    SearchResult,
    expand_grid,
    select_config,
)

__all__ = [
    "FlowAggregator",
    "MeanAggregator",
    "MaxAggregator",
    "make_fcg_aggregator",
    "FlowGNN",
    "PatternGNN",
    "STGNNDJD",
    "STGNNDJDConfig",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "save_checkpoint",
    "load_state",
    "load_config",
    "load_stgnn",
    "SCHEMA_VERSION",
    "SNAPSHOT_VERSION",
    "CheckpointError",
    "CheckpointSchemaError",
    "CheckpointCorruptError",
    "checkpoint_schema_version",
    "TrainingSnapshot",
    "save_training_snapshot",
    "load_training_snapshot",
    "training_fingerprint",
    "select_config",
    "expand_grid",
    "SearchResult",
    "CandidateResult",
]

"""Neighborhood aggregators for the two spatial-temporal graphs (Sec. V).

The paper argues that generic GNN aggregators (mean/max pooling, as in
GraphSAGE) ignore what bike-share data actually says about dependency,
and proposes:

* a **flow-based aggregator** for the FCG — a weighted sum where the
  weights are the flow shares of Eq. 10 (more flow between two stations
  means more influence), Eq. 14;
* an **attention-based aggregator** for the PCG — data-driven multi-head
  attention with no distance prior, Eqs. 15-18 (implemented inside
  :class:`repro.core.gnn.PatternGNN` because attention is recomputed per
  layer).

Mean and max aggregators are implemented too: they are the comparison
points of the paper's aggregator study (Figs. 5-6).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Module
from repro.tensor import Tensor, ops

VALID_FCG_AGGREGATORS = ("flow", "mean", "max")
VALID_PCG_AGGREGATORS = ("attention", "mean", "max")


class FlowAggregator(Module):
    """Weighted-sum pooling by flow share (Eq. 14).

    ``Aggr_i = sum_u w[i, u] F[u]`` where ``w`` are the FCG edge weights
    (zero outside the adjacency mask), i.e. a single sparse-like matmul.
    """

    def forward(self, features: Tensor, weights: Tensor, mask: np.ndarray) -> Tensor:
        return weights @ features


class MeanAggregator(Module):
    """Element-wise mean over ``{i} ∪ N(i)`` (GraphSAGE-mean)."""

    def forward(self, features: Tensor, weights: Tensor, mask: np.ndarray) -> Tensor:
        mask = np.asarray(mask, dtype=features.data.dtype)
        degrees = mask.sum(axis=1, keepdims=True)
        degrees[degrees == 0] = 1.0  # isolated node keeps a zero vector
        mean_weights = Tensor(mask / degrees, dtype=features.data.dtype)
        return mean_weights @ features


class MaxAggregator(Module):
    """FC-then-elementwise-max pooling (GraphSAGE-pool).

    Each neighbor embedding passes through a shared fully connected
    layer with ReLU, then the node takes the element-wise max over its
    masked neighborhood — the paper's "Max Aggregator" baseline.
    """

    def __init__(self, features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.transform = Linear(features, features, rng=rng)

    def forward(self, features: Tensor, weights: Tensor, mask: np.ndarray) -> Tensor:
        transformed = self.transform(features).relu()  # (n, f)
        n = transformed.shape[0]
        dtype = features.data.dtype
        # Broadcast to (n, n, f): entry [i, j] is neighbor j's embedding,
        # pushed to -inf where j is not adjacent to i so max ignores it.
        mask = np.asarray(mask, dtype=bool)
        neighbor_matrix = transformed.reshape((1, n, -1)) * Tensor(
            np.ones((n, 1, 1)), dtype=dtype
        )
        big_negative = Tensor(np.where(mask[:, :, None], 0.0, -1e30), dtype=dtype)
        return ops.max(neighbor_matrix + big_negative, axis=1)


def make_fcg_aggregator(
    kind: str, features: int, rng: np.random.Generator
) -> Module:
    """Factory for the FCG aggregator (paper default: ``"flow"``)."""
    if kind == "flow":
        return FlowAggregator()
    if kind == "mean":
        return MeanAggregator()
    if kind == "max":
        return MaxAggregator(features, rng)
    raise ValueError(
        f"unknown FCG aggregator {kind!r}; choose from {VALID_FCG_AGGREGATORS}"
    )

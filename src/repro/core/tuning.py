"""Hyperparameter selection on the validation split (paper Sec. VII-C).

"We set the hyperparameters based on the performance of the validation
dataset" — this module is that procedure, made explicit and reusable:
train a model per candidate configuration, score each on validation
loss, return the winner. It is how the benchmark harness's operating
point was chosen (see ``benchmarks/_harness.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence


from repro.core.model import STGNNDJD
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.dataset import BikeShareDataset
from repro.utils import get_logger

logger = get_logger("tuning")


@dataclass(frozen=True, slots=True)
class CandidateResult:
    """One evaluated configuration."""

    overrides: tuple[tuple[str, object], ...]
    val_loss: float
    epochs_trained: int

    @property
    def as_dict(self) -> dict:
        return dict(self.overrides)


@dataclass(slots=True)
class SearchResult:
    """Outcome of a grid search: winner plus the full leaderboard."""

    best: CandidateResult
    leaderboard: list[CandidateResult] = field(default_factory=list)

    def best_overrides(self) -> dict:
        return self.best.as_dict


def expand_grid(grid: Mapping[str, Sequence]) -> list[dict]:
    """Cartesian product of a ``{field: [values...]}`` grid."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[key] for key in keys))
    ]


def select_config(
    dataset: BikeShareDataset,
    grid: Mapping[str, Sequence],
    training: TrainingConfig | None = None,
    seed: int = 0,
    verbose: bool = False,
) -> SearchResult:
    """Grid-search STGNN-DJD configuration fields on validation loss.

    ``grid`` maps :class:`~repro.core.STGNNDJDConfig` field names to
    candidate values, e.g. ``{"fcg_layers": [1, 2], "num_heads": [2, 4]}``.
    Each candidate trains with the same protocol and seed; the model
    with the lowest best-epoch validation loss wins. The test split is
    never touched.
    """
    training = training or TrainingConfig(epochs=10, patience=4, seed=seed)
    candidates = expand_grid(grid)
    results: list[CandidateResult] = []
    for overrides in candidates:
        model = STGNNDJD.from_dataset(dataset, seed=seed, **overrides)
        trainer = Trainer(model, dataset, training)
        history = trainer.fit()
        result = CandidateResult(
            overrides=tuple(sorted(overrides.items())),
            val_loss=float(min(history.val_loss)),
            epochs_trained=len(history.val_loss),
        )
        results.append(result)
        if verbose:
            logger.info("candidate %s -> val %.4f", overrides, result.val_loss)
    results.sort(key=lambda r: r.val_loss)
    return SearchResult(best=results[0], leaderboard=results)

"""Data-parallel gradient workers for the training loop.

A :class:`GradientWorkerPool` is a persistent pool of fork-based worker
processes that splits a training batch into contiguous shards, computes
per-sample loss + gradients in each worker, and reduces the results in
the parent in a fixed order. It exists because the model is a
per-time-step graph program: a "batch" is N independent single-sample
forward/backward passes whose gradients are averaged (see
``core/trainer.py``), which is embarrassingly parallel across samples.

Transports
----------
The pool has two wire formats, selected by ``transport``:

``shm`` (the default wherever ``multiprocessing.shared_memory`` works)
    Parameters and gradients move through persistent shared-memory
    arenas (``core/shm_arena.py``); the duplex pipe carries only small
    control messages. One *parameter arena* holds the flat
    ``ParamLayout`` image of the model: the parent publishes the
    current parameter values into it once per sync point (one
    ``np.copyto`` per batch, after the optimizer step), and every
    worker's model parameters are zero-copy read-only views into it.
    Each worker additionally owns one *gradient arena* — a small
    header (shard loss + per-parameter has-grad flags) followed by the
    same flat layout — and its parameters' persistent ``_grad_buffer``
    accumulation targets are views into that arena, so the worker's
    backward passes write gradients **directly into shared memory**
    and the parent's reduction is a straight numpy sum over mapped
    views. Nothing gradient- or parameter-sized is ever pickled.

``pipe`` (legacy, and the fallback when shared memory is unavailable)
    The original transport: the parent pickles the parameter arrays to
    every worker with each task and workers pickle their gradient sums
    back. Kept exercised by tests and the CI bench smoke
    (``--transport=pipe``) as the shm path's behavioral reference.

Scheduling is **epoch-granular** on the shm path: the trainer announces
the epoch's full batch schedule once (:meth:`GradientWorkerPool.begin_epoch`),
each worker walks its shard of every batch locally, and the per-batch
exchange shrinks to a ``("go", k, scale)`` control message out and a
tiny acknowledgement back. The parent reduces worker *i*'s completed
arena while workers *i+1..K* are still computing — reduction overlaps
compute instead of serialising behind the slowest worker — but always
folds results in worker index order, which is what keeps the float64
sums deterministic. Direct ``accumulate_gradients`` calls without a
schedule (tests, ad-hoc batches) fall back to a self-contained
``("task", batch, scale)`` message with identical semantics.

Determinism / serial equivalence
--------------------------------
Shards are contiguous and ordered, reduction order is fixed, and every
worker performs the same per-sample arithmetic as the serial loop —
on both transports: the shm arenas change where the bytes live, not a
single floating-point operation. The only difference from serial
training is the association order of the gradient sums (per-shard
partial sums instead of one running sum), so for a deterministic model
(``dropout == 0``) the training losses of ``workers=0`` and
``workers=K`` runs agree to within float64 summation reordering —
empirically < 1e-9 relative, which the parity tests assert, and the two
transports agree **bitwise** with each other. Models that draw
training-time randomness (``dropout > 0``) remain seeded-deterministic
for a *fixed* worker count, but are not sample-for-sample identical to
serial runs: each forked worker advances its own copy of the model's
RNG.

Resilience
----------
A worker that **dies mid-batch** (its pipe hits EOF — possibly leaving
a half-written gradient arena), **hangs** past ``reply_timeout``,
replies with a **poisoned result** (non-finite loss or gradients), or
raises, does not take training down. The parent never trusts an arena
without its owner's acknowledgement: it recomputes the lost shard
*itself*, reproducing the worker's exact arithmetic — gradients summed
into fresh buffers, then folded in at the dead worker's reduction
slot — so the recovered batch is **bitwise identical** to the batch an
uninjured pool would have produced (for deterministic models). Dead or
hung workers are respawned against the *same* arenas (and re-sent the
active epoch schedule); if the respawn itself fails, the pool marks
itself inactive and the trainer falls back to the serial loop for the
rest of the run. The chaos suite (``tests/faults/test_parallel_chaos.py``)
drives every one of these paths with injected faults — including the
shm-specific seams ``parallel.shm.publish``,
``parallel.worker{i}.shm.attach`` and ``parallel.worker{i}.shm.commit``
— and asserts the parity.

Arena lifecycle: only the parent creates or unlinks shared-memory
segments. :meth:`GradientWorkerPool.close` drops the parent's views and
destroys every arena unlink-first (crash-safe, idempotent); workers
exit without cleanup, so a chaos-killed worker can never leak or
corrupt a segment. The fallback ladder is ``shm → pipe → serial``:
arena creation failure degrades to the pipe transport, fork
unavailability degrades to the serial loop (:meth:`GradientWorkerPool.create`
returns ``None``), and both degradations are logged and counted.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.shm_arena import (
    GradHeaderLayout,
    ParamLayout,
    SharedArena,
    shm_available,
)
from repro.faults import fault_point, fault_transform
from repro.obs import emit_event
from repro.obs.registry import default_registry
from repro.obs.trace import (
    NULL_SPAN,
    TraceContext,
    begin_worker_spans,
    current_context,
    discard_spans,
    drain_spans,
    emit_spans,
    trace_span,
)
from repro.utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trainer import Trainer

logger = get_logger("parallel")

_OK = "ok"
_ERROR = "error"

SHM = "shm"
PIPE = "pipe"
TRANSPORTS = ("auto", SHM, PIPE)


def fork_available() -> bool:
    """Whether fork-based worker processes can be used on this platform."""
    return "fork" in mp.get_all_start_methods()


def _trace_ctx_tuple() -> tuple | None:
    """The current trace context as a plain picklable tuple, or ``None``.

    Unsampled contexts collapse to ``None`` at the source: the worker
    would open a non-recording span anyway, so there is nothing worth
    shipping across the pipe for them.
    """
    ctx = current_context()
    if ctx is None or not ctx.sampled:
        return None
    return (ctx.trace_id, ctx.span_id, ctx.sampled)


class _ShmWorkerContext:
    """Arena handles a worker inherits through the fork.

    Views are built inside the child (after the fork) so the attach
    step has its own fault seam; the arenas themselves are the parent's
    objects, shared MAP_SHARED.
    """

    __slots__ = ("param_arena", "grad_arena", "param_layout", "header")

    def __init__(self, param_arena, grad_arena, param_layout, header) -> None:
        self.param_arena = param_arena
        self.grad_arena = grad_arena
        self.param_layout = param_layout
        self.header = header


def _worker_main(conn, trainer: "Trainer", params: list, index: int,
                 num_workers: int, shm: _ShmWorkerContext | None) -> None:
    """Worker loop: receive control messages until ``None``.

    Runs in the forked child. ``trainer`` and ``params`` are inherited
    copy-on-write. On the shm transport the worker rebinds every
    parameter's ``data`` to a read-only view of the parameter arena
    (tracking the parent's optimizer steps with zero copies) and
    attaches its gradient arena views as the parameters' persistent
    grad buffers, so backward passes accumulate straight into shared
    memory. On the pipe transport parameter values arrive with every
    task, exactly as the original per-batch protocol shipped them.

    Messages: ``("epoch", schedule[, trace_ctx])`` stores the epoch's
    batch list (plus the parent's trace context, parenting every
    scheduled shard span); ``("go", k, scale)`` computes this worker's
    shard of batch ``k``; ``("task", batch, scale[, trace_ctx])`` is a
    schedule-free shm batch; ``("ptask", datas, shard, scale[,
    trace_ctx])`` is a legacy pipe task. Trailing trace elements are
    optional — workers unpack by length, so old-shape messages (tests,
    chaos transforms) keep working.

    Metrics are fork-merged: the worker's (inherited) default registry
    is reset once at startup so pre-fork parent values are not double
    counted, then each reply carries the registry delta accumulated
    while processing the shard. The parent folds deltas in during the
    reduce, making worker-merged counters equal their serial values.

    Fault seams (armed plans are inherited through the fork, each worker
    counts its own hits): ``parallel.worker{index}.task`` per task,
    ``parallel.worker{index}.sample`` per sample, the
    ``parallel.worker{index}.reply`` transform over the reply payload,
    and on the shm path ``parallel.worker{index}.shm.attach`` at view
    construction plus ``parallel.worker{index}.shm.commit`` between the
    arena write and the acknowledgement.
    """
    task_site = f"parallel.worker{index}.task"
    sample_site = f"parallel.worker{index}.sample"
    reply_site = f"parallel.worker{index}.reply"
    registry = default_registry()
    registry.reset()
    # Fork-worker trace mode: fresh id stream (the inherited counter
    # would collide with the parent's), spans buffered locally and
    # shipped home with each reply instead of written to the shared fd.
    begin_worker_spans((os.getpid() << 8) | index)
    grad_views = flags = loss_out = None
    if shm is not None:
        fault_point(f"parallel.worker{index}.shm.attach")
        param_views = shm.param_layout.views(
            shm.param_arena.buf, writeable=False
        )
        grad_views = shm.param_layout.views(
            shm.grad_arena.buf, base_offset=shm.header.header_bytes
        )
        flags = shm.header.flags_view(shm.grad_arena.buf)
        loss_out = shm.header.loss_view(shm.grad_arena.buf)
        for param, view, grad_view in zip(params, param_views, grad_views):
            param.data = view
            param.attach_grad_buffer(grad_view)
    schedule: list | None = None
    epoch_ctx: tuple | None = None
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            if msg[0] == "epoch":
                schedule = msg[1]
                epoch_ctx = msg[2] if len(msg) > 2 else None
                continue
            try:
                if msg[0] == "go":
                    k, scale = msg[1], msg[2]
                    ctx = epoch_ctx
                    shard = np.array_split(schedule[k], num_workers)[index]
                elif msg[0] == "task":
                    batch, scale = msg[1], msg[2]
                    ctx = msg[3] if len(msg) > 3 else None
                    shard = np.array_split(np.asarray(batch), num_workers)[index]
                else:  # "ptask"
                    datas, shard, scale = msg[1], msg[2], msg[3]
                    ctx = msg[4] if len(msg) > 4 else None
                    for param, data in zip(params, datas):
                        param.data = data
                fault_point(task_site)
                busy_start = time.perf_counter()
                for param in params:
                    param.grad = None
                upstream = np.asarray(scale)
                loss_sum = 0.0
                worker_span = (
                    trace_span("parallel.worker", parent=TraceContext(*ctx),
                               worker=index, samples=int(len(shard)))
                    if ctx is not None else NULL_SPAN
                )
                with worker_span:
                    for t in shard:
                        fault_point(sample_site)
                        loss = trainer._sample_loss(int(t))
                        loss.backward(upstream)
                        loss_sum += loss.item()
                delta = None
                if registry.enabled:
                    registry.counter("parallel.worker_busy_seconds").inc(
                        time.perf_counter() - busy_start
                    )
                    registry.counter("parallel.worker_tasks").inc()
                    delta = registry.drain()
                payload = fault_transform(
                    reply_site, (loss_sum, [p.grad for p in params], delta)
                )
                spans = drain_spans()
                if shm is not None:
                    loss_sum, grads, delta = payload
                    for i, (param, grad) in enumerate(zip(params, grads)):
                        flags[i] = 0 if grad is None else 1
                        # Accumulation already landed in the arena via
                        # the attached buffer; only a transformed
                        # (poisoned) reply needs an explicit write.
                        if grad is not None and grad is not param.grad:
                            np.copyto(grad_views[i], grad)
                    loss_out[0] = loss_sum
                    fault_point(f"parallel.worker{index}.shm.commit")
                    conn.send((_OK, delta, spans))
                else:
                    conn.send((_OK, payload, spans))
            except Exception as exc:  # surface worker errors in the parent
                # A failed task's spans never ship: the parent recovers
                # the shard itself and its recovery span replaces them —
                # emitting both would double-count the work.
                discard_spans()
                conn.send((_ERROR, f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        conn.close()


class GradientWorkerPool:
    """Persistent fork-based pool of per-sample gradient workers."""

    def __init__(
        self,
        trainer: "Trainer",
        num_workers: int,
        reply_timeout: float | None = None,
        transport: str = "auto",
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if reply_timeout is not None and reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be positive, got {reply_timeout}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if not fork_available():
            raise RuntimeError("fork start method is not available on this platform")
        self._trainer = trainer
        self._params = list(trainer.optimizer.parameters)
        self.num_workers = num_workers
        self.reply_timeout = reply_timeout
        self._closed = False
        self._degraded = False
        #: Cumulative parent-side seconds per transport phase (always on;
        #: a handful of ``perf_counter`` reads per batch). ``serialize``
        #: is parameter publish + control-message send, ``compute_wait``
        #: is time blocked on worker replies, ``reduce`` is the gradient
        #: summation + metrics merge.
        self.phase_seconds = {"serialize": 0.0, "compute_wait": 0.0, "reduce": 0.0}
        self._epoch_phase_base = dict(self.phase_seconds)

        # Epoch-granularity schedule state (shm transport).
        self._schedule: list[np.ndarray] | None = None
        self._cursor = 0
        self._has_schedule = [False] * num_workers
        self._epoch_ctx: tuple | None = None

        # Arenas (shm transport only; _build_arenas may fall back).
        self._param_arena: SharedArena | None = None
        self._grad_arenas: list[SharedArena] = []
        self._publish_views: list[np.ndarray] | None = None
        self._worker_grad_views: list[list[np.ndarray]] = []
        self._worker_flags: list[np.ndarray] = []
        self._worker_loss: list[np.ndarray] = []

        self.transport = self._resolve_transport(transport)

        # Touch lazily-built dataset state *before* forking so workers
        # share it copy-on-write instead of each rebuilding it.
        trainer.dataset.demand_normalizer
        trainer.dataset.supply_normalizer

        self._ctx = mp.get_context("fork")
        self._conns: list = [None] * num_workers
        self._procs: list = [None] * num_workers
        try:
            for index in range(num_workers):
                self._spawn_worker(index)
        except BaseException:
            self._destroy_arenas()
            raise

    # ------------------------------------------------------------------
    # Transport resolution + arenas
    # ------------------------------------------------------------------
    def _resolve_transport(self, requested: str) -> str:
        """Pick shm where possible; degrade to pipe loudly otherwise."""
        if requested == PIPE:
            return PIPE
        if not shm_available():
            if requested == SHM:
                logger.warning(
                    "transport='shm' requested but multiprocessing.shared_memory "
                    "is unavailable; using the pipe transport"
                )
            self._record_transport_fallback("shm_unavailable", requested)
            return PIPE
        try:
            self._build_arenas()
            return SHM
        except OSError as exc:  # /dev/shm full or unmapped
            logger.warning(
                "shared-memory arena creation failed (%s); "
                "using the pipe transport", exc,
            )
            self._record_transport_fallback(f"arena_creation_failed: {exc}",
                                            requested)
            return PIPE

    def _build_arenas(self) -> None:
        """Create the parameter arena + one gradient arena per worker."""
        datas = [param.data for param in self._params]
        self._param_layout = ParamLayout(datas)
        self._grad_header = GradHeaderLayout(len(datas))
        grad_bytes = self._grad_header.header_bytes + self._param_layout.total_bytes
        created: list[SharedArena] = []
        try:
            param_arena = SharedArena(self._param_layout.total_bytes)
            created.append(param_arena)
            grad_arenas = []
            for _ in range(self.num_workers):
                arena = SharedArena(grad_bytes)
                created.append(arena)
                grad_arenas.append(arena)
        except OSError:
            for arena in created:
                arena.destroy()
            raise
        self._param_arena = param_arena
        self._grad_arenas = grad_arenas
        self._publish_views = self._param_layout.views(param_arena.buf)
        self._worker_grad_views = [
            self._param_layout.views(
                arena.buf, base_offset=self._grad_header.header_bytes
            )
            for arena in grad_arenas
        ]
        self._worker_flags = [
            self._grad_header.flags_view(arena.buf) for arena in grad_arenas
        ]
        self._worker_loss = [
            self._grad_header.loss_view(arena.buf) for arena in grad_arenas
        ]
        registry = default_registry()
        registry.gauge("parallel.shm.param_arena_bytes").set(
            self._param_layout.total_bytes
        )
        registry.gauge("parallel.shm.grad_arena_bytes").set(grad_bytes)
        registry.gauge("parallel.shm.arena_bytes_total").set(
            self._param_layout.total_bytes + grad_bytes * self.num_workers
        )

    @property
    def shm_segment_names(self) -> list[str]:
        """``/dev/shm`` names of the live arenas (empty on pipe transport)."""
        names = []
        if self._param_arena is not None:
            names.append(self._param_arena.name)
        names.extend(arena.name for arena in self._grad_arenas)
        return names

    def _spawn_worker(self, index: int) -> None:
        """(Re)fork worker ``index``; replaces any previous pipe/process.

        A respawned worker attaches to the *same* arenas (they are
        inherited through the fresh fork) and, if an epoch schedule is
        active, receives it again so the next ``go`` finds it in place.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        shm_ctx = None
        if self.transport == SHM:
            shm_ctx = _ShmWorkerContext(
                self._param_arena, self._grad_arenas[index],
                self._param_layout, self._grad_header,
            )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._trainer, self._params, index,
                  self.num_workers, shm_ctx),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[index] = parent_conn
        self._procs[index] = proc
        self._has_schedule[index] = False
        if self._schedule is not None:
            try:
                parent_conn.send(("epoch", self._schedule, self._epoch_ctx))
                self._has_schedule[index] = True
            except (BrokenPipeError, OSError):  # caught again at next send
                pass

    @classmethod
    def create(
        cls,
        trainer: "Trainer",
        num_workers: int,
        reply_timeout: float | None = None,
        transport: str = "auto",
    ) -> "GradientWorkerPool | None":
        """Build a pool, or return ``None`` (serial fallback) if unsupported."""
        if num_workers < 1:
            return None
        if not fork_available():
            logger.warning(
                "workers=%d requested but the fork start method is unavailable; "
                "training serially",
                num_workers,
            )
            cls._record_fallback("fork_unavailable", num_workers)
            return None
        try:
            return cls(trainer, num_workers, reply_timeout=reply_timeout,
                       transport=transport)
        except OSError as exc:  # fork/pipe failure (resource limits)
            logger.warning("worker pool creation failed (%s); training serially", exc)
            cls._record_fallback(f"pool_creation_failed: {exc}", num_workers)
            return None

    @staticmethod
    def _record_fallback(reason: str, num_workers: int) -> None:
        """Count + emit a serial-fallback event so it is visible in runs."""
        default_registry().counter("parallel.fallback").inc()
        emit_event("event", "parallel.fallback",
                   reason=reason, requested_workers=num_workers)

    @staticmethod
    def _record_transport_fallback(reason: str, requested: str) -> None:
        """Count + emit an shm→pipe degradation so it is visible in runs."""
        default_registry().counter("parallel.transport_fallback").inc()
        emit_event("event", "parallel.transport_fallback",
                   reason=reason, requested_transport=requested)

    # ------------------------------------------------------------------
    # Epoch-granularity scheduling (shm transport)
    # ------------------------------------------------------------------
    def begin_epoch(self, batches: Sequence[np.ndarray]) -> None:
        """Broadcast the epoch's batch schedule to every worker.

        After this, each ``accumulate_gradients`` call whose batch is
        the next schedule entry costs one ``("go", k, scale)`` control
        message per worker — the workers derive their shards locally.
        No-op on the pipe transport (which ships shards per batch) and
        on closed pools.
        """
        if self._closed or self.transport != SHM:
            return
        self._schedule = [np.ascontiguousarray(batch) for batch in batches]
        self._cursor = 0
        self._epoch_phase_base = dict(self.phase_seconds)
        # Publish the caller's trace context with the schedule: every
        # scheduled shard span this epoch parents under it, so one
        # ``("epoch", ...)`` message traces the whole epoch's fan-out.
        self._epoch_ctx = _trace_ctx_tuple()
        msg = ("epoch", self._schedule, self._epoch_ctx)
        for index, conn in enumerate(self._conns):
            if conn is None:
                continue
            try:
                conn.send(msg)
                self._has_schedule[index] = True
            except (BrokenPipeError, OSError):  # handled at the next send
                self._has_schedule[index] = False

    def end_epoch(self) -> None:
        """Close the epoch's schedule; emit the phase/overlap telemetry."""
        if self._schedule is None:
            return
        self._schedule = None
        self._epoch_ctx = None
        self._has_schedule = [False] * self.num_workers
        registry = default_registry()
        if registry.enabled:
            phases = {
                key: self.phase_seconds[key] - self._epoch_phase_base.get(key, 0.0)
                for key in self.phase_seconds
            }
            window = phases["compute_wait"] + phases["reduce"]
            # Fraction of the post-publish window the parent spent
            # reducing already-complete arenas — work overlapped with
            # the remaining workers' compute by construction.
            overlap = phases["reduce"] / window if window > 0 else 0.0
            registry.gauge("parallel.reduce_overlap_ratio").set(overlap)
            emit_event("event", "parallel.epoch_phases",
                       transport=self.transport,
                       overlap_ratio=overlap, **phases)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the pool can take another batch (open and not degraded)."""
        return not self._closed and not self._degraded

    def accumulate_gradients(self, batch: Sequence[int], scale: float) -> float:
        """Compute and reduce gradients for ``batch``; return the loss sum.

        Each sample's upstream gradient is ``scale`` (the trainer passes
        ``1/len(batch)``, matching the serial loop's gradient averaging).
        Gradients are accumulated into the parameters' ``.grad`` buffers
        in worker index order — the caller must have zeroed them.

        Worker failures (death, hang, poisoned or errored replies) are
        recovered in-line: the lost shard is recomputed in the parent at
        the failed worker's reduction slot, so the batch result is the
        same as an uninjured pool's (see the module docstring).
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        batch = np.asarray(batch)
        shards = np.array_split(batch, self.num_workers)
        registry = default_registry()
        failed_send: set[int] = set()
        serialize_start = time.perf_counter()
        if self.transport == SHM:
            # Sync point: publish the post-step parameters once; every
            # worker's parameter views read them zero-copy.
            fault_point("parallel.shm.publish")
            for view, param in zip(self._publish_views, self._params):
                np.copyto(view, param.data)
            if (
                self._schedule is not None
                and self._cursor < len(self._schedule)
                and np.array_equal(self._schedule[self._cursor], batch)
            ):
                msg = ("go", self._cursor, scale)
                self._cursor += 1
            else:  # schedule-free call (tests, ad-hoc batches)
                msg = ("task", batch, scale, _trace_ctx_tuple())
            for index, conn in enumerate(self._conns):
                if conn is None:  # lost in a previous batch, respawn failed
                    failed_send.add(index)
                    continue
                try:
                    if msg[0] == "go" and not self._has_schedule[index]:
                        conn.send(("epoch", self._schedule, self._epoch_ctx))
                        self._has_schedule[index] = True
                    conn.send(msg)
                except (BrokenPipeError, OSError):
                    failed_send.add(index)
        else:
            datas = [param.data for param in self._params]
            ctx = _trace_ctx_tuple()
            for index, (conn, shard) in enumerate(zip(self._conns, shards)):
                if conn is None:
                    failed_send.add(index)
                    continue
                try:
                    conn.send(("ptask", datas, shard, scale, ctx))
                except (BrokenPipeError, OSError):
                    failed_send.add(index)
        serialize_seconds = time.perf_counter() - serialize_start

        total = 0.0
        wait_seconds = 0.0
        reduce_seconds = 0.0
        for index, shard in enumerate(shards):
            if index in failed_send:
                if self._conns[index] is not None:
                    self._worker_failed(index, "pipe closed at send", respawn=True)
                payload = None
            else:
                wait_start = time.perf_counter()
                payload = self._receive(index)
                wait_seconds += time.perf_counter() - wait_start
            if payload is None:
                total += self._recover_shard(shard, scale)
                continue
            reduce_start = time.perf_counter()
            loss_sum, grads, metrics_delta = payload
            total += loss_sum
            for param, grad in zip(self._params, grads):
                if grad is not None:
                    param._accumulate(grad)
            if metrics_delta:
                registry.merge(metrics_delta)
            reduce_seconds += time.perf_counter() - reduce_start
        self.phase_seconds["serialize"] += serialize_seconds
        self.phase_seconds["compute_wait"] += wait_seconds
        self.phase_seconds["reduce"] += reduce_seconds
        if registry.enabled:
            registry.timer("parallel.serialize_seconds").observe(serialize_seconds)
            registry.timer("parallel.wait_seconds").observe(wait_seconds)
            registry.timer("parallel.reduce_seconds").observe(reduce_seconds)
            registry.counter("parallel.batches").inc()
        return total

    # ------------------------------------------------------------------
    # Failure classification + recovery
    # ------------------------------------------------------------------
    def _receive(self, index: int):
        """Worker ``index``'s result payload, or ``None`` after a failure.

        Always ``(loss_sum, grads, metrics_delta)``: on the pipe
        transport the whole payload arrives in the reply, on the shm
        transport the reply is a bare acknowledgement and loss/flags/
        gradients are read from the worker's arena views — but only
        *after* the acknowledgement, so a half-written arena from a
        crashed worker is never reduced.

        Classifies the four injected-failure modes: a hung worker (no
        reply within ``reply_timeout``), a dead worker (EOF/reset on the
        pipe), a worker-side exception (clean ``_ERROR`` reply), and a
        poisoned result (non-finite loss or gradients). Hung and dead
        workers are respawned; erroring and poisoning workers stay — the
        pipe is still in sync and the next batch may well succeed.
        """
        conn = self._conns[index]
        try:
            if self.reply_timeout is not None and not conn.poll(self.reply_timeout):
                self._worker_failed(
                    index, f"no reply within {self.reply_timeout}s", respawn=True
                )
                return None
            msg = conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            self._worker_failed(
                index, f"died mid-batch ({exc or 'EOF'})", respawn=True
            )
            return None
        status, body = msg[0], msg[1]
        spans = msg[2] if len(msg) > 2 else None
        if status != _OK:
            self._worker_failed(index, f"raised: {body}", respawn=False)
            return None
        if self.transport == SHM:
            flags = self._worker_flags[index]
            grads = [
                view if flags[i] else None
                for i, view in enumerate(self._worker_grad_views[index])
            ]
            payload = (float(self._worker_loss[index][0]), grads, body)
        else:
            payload = body
        loss_sum, grads, _ = payload
        if not np.isfinite(loss_sum) or any(
            grad is not None and not np.isfinite(grad).all() for grad in grads
        ):
            self._worker_failed(
                index, "poisoned result (non-finite loss or gradients)",
                respawn=False,
            )
            return None
        # Worker spans join the parent's stream only for results that
        # are actually reduced: a rejected reply's shard is recomputed
        # under a parent-side recovery span instead, so each unit of
        # work appears in the trace exactly once.
        emit_spans(spans)
        return payload

    def _worker_failed(self, index: int, reason: str, respawn: bool) -> None:
        """Log/count a worker failure; respawn or degrade to serial."""
        logger.warning(
            "gradient worker %d failed (%s); recovering its shard serially",
            index, reason,
        )
        default_registry().counter("parallel.worker_failures").inc()
        emit_event("event", "parallel.worker_failure",
                   worker=index, reason=reason)
        if not respawn:
            return
        proc, conn = self._procs[index], self._conns[index]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        if conn is not None:
            conn.close()
        try:
            self._spawn_worker(index)
            default_registry().counter("parallel.worker_respawns").inc()
        except OSError as exc:
            # Cannot rebuild the pool: finish this batch via recovery,
            # then hand the rest of the run to the serial loop.
            self._conns[index] = None
            self._procs[index] = None
            self._degraded = True
            logger.warning(
                "worker %d respawn failed (%s); pool degraded, "
                "falling back to serial training", index, exc,
            )
            self._record_fallback(f"respawn_failed: {exc}", self.num_workers)

    def _recover_shard(self, shard: np.ndarray, scale: float) -> float:
        """Recompute a lost shard in the parent, worker-bitwise.

        Reproduces the worker protocol exactly: gradients accumulate
        into fresh per-shard buffers (not the live ``.grad`` running
        sums), then fold in at this worker's slot in the reduction
        order. Same arithmetic, same association order — the recovered
        batch matches an uninjured pool's bit for bit. The dead
        worker's arena contents (possibly half-written) are never read.
        """
        params = self._params
        saved = [param.grad for param in params]
        saved_buffers = [param._grad_buffer for param in params]
        for param in params:
            # Detach the persistent grad buffer too: ``.grad`` IS that
            # buffer after a normal accumulation, and the shard backward
            # below would otherwise write straight over the stashed sums.
            param.grad = None
            param._grad_buffer = None
        upstream = np.asarray(scale)
        loss_sum = 0.0
        try:
            with trace_span("parallel.recover", samples=int(len(shard))):
                for t in shard:
                    loss = self._trainer._sample_loss(int(t))
                    loss.backward(upstream)
                    loss_sum += loss.item()
            shard_grads = [param.grad for param in params]
        finally:
            for param, grad, buffer in zip(params, saved, saved_buffers):
                param.grad = grad
                param._grad_buffer = buffer
        for param, grad in zip(params, shard_grads):
            if grad is not None:
                param._accumulate(grad)
        default_registry().counter("parallel.shards_recovered").inc()
        return loss_sum

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def transport_summary(self) -> dict:
        """JSON-able transport-health summary for run reports.

        Mirrors the per-epoch ``parallel.epoch_phases`` event but over
        the pool's whole lifetime, so the report CLI can show transport,
        phase split and reduce/compute overlap without grepping the
        JSONL stream.
        """
        phases = dict(self.phase_seconds)
        window = phases["compute_wait"] + phases["reduce"]
        overlap = phases["reduce"] / window if window > 0 else 0.0
        return {
            "transport": self.transport,
            "workers": self.num_workers,
            "degraded": self._degraded,
            "phase_seconds": {k: round(v, 6) for k, v in phases.items()},
            "overlap_ratio": round(overlap, 6),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and destroy the arenas; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc is not None and proc.is_alive():  # pragma: no cover - hung worker safety net
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._destroy_arenas()

    def _destroy_arenas(self) -> None:
        """Drop the parent's views, then unlink every segment; idempotent."""
        self._publish_views = None
        self._worker_grad_views = []
        self._worker_flags = []
        self._worker_loss = []
        arenas = list(self._grad_arenas)
        if self._param_arena is not None:
            arenas.append(self._param_arena)
        self._param_arena = None
        self._grad_arenas = []
        for arena in arenas:
            arena.destroy()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("degraded" if self._degraded else "open")
        return (
            f"GradientWorkerPool(workers={self.num_workers}, "
            f"transport={self.transport}, {state})"
        )

"""Data-parallel gradient workers for the training loop.

A :class:`GradientWorkerPool` is a persistent pool of fork-based worker
processes that splits a training batch into contiguous shards, computes
per-sample loss + gradients in each worker, and reduces the results in
the parent in a fixed order. It exists because the model is a
per-time-step graph program: a "batch" is N independent single-sample
forward/backward passes whose gradients are averaged (see
``core/trainer.py``), which is embarrassingly parallel across samples.

Protocol (one round trip per batch)
-----------------------------------
1. The parent sends every worker the current parameter arrays, its shard
   of prediction times (a contiguous slice of the batch, in batch
   order), and the 1/batch gradient scale.
2. Each worker loads the parameters into its (forked, copy-on-write)
   model, runs forward + backward per sample, and replies with its
   summed loss and per-parameter gradient sums.
3. The parent accumulates worker results **in worker index order** into
   the parameters' persistent gradient buffers, then the trainer clips
   and steps exactly as in serial mode.

Determinism / serial equivalence
--------------------------------
Shards are contiguous and ordered, reduction order is fixed, and every
worker performs the same per-sample arithmetic as the serial loop. The
only difference from serial training is the association order of the
floating-point gradient sums (per-shard partial sums instead of one
running sum), so for a deterministic model (``dropout == 0``) the
training losses of ``workers=0`` and ``workers=K`` runs agree to within
float64 summation reordering — empirically < 1e-9 relative, which the
parity tests assert. Models that draw training-time randomness
(``dropout > 0``) remain seeded-deterministic for a *fixed* worker
count, but are not sample-for-sample identical to serial runs: each
forked worker advances its own copy of the model's RNG.

Resilience
----------
A worker that **dies mid-batch** (its pipe hits EOF), **hangs** past
``reply_timeout``, replies with a **poisoned result** (non-finite loss
or gradients), or raises, does not take training down. The parent
recomputes the lost shard *itself*, reproducing the worker's exact
arithmetic — gradients summed into fresh buffers, then folded in at the
dead worker's reduction slot — so the recovered batch is **bitwise
identical** to the batch an uninjured pool would have produced (for
deterministic models). Dead or hung workers are respawned; if the
respawn itself fails, the pool marks itself inactive and the trainer
falls back to the serial loop for the rest of the run. The chaos suite
(``tests/faults/test_parallel_chaos.py``) drives every one of these
paths with injected faults and asserts the parity.

Fork is required (copy-on-write sharing of the model, dataset and
windows); on platforms without it :meth:`GradientWorkerPool.create`
returns ``None`` and the trainer falls back to the serial loop.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults import fault_point, fault_transform
from repro.obs import emit_event
from repro.obs.registry import default_registry
from repro.utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trainer import Trainer

logger = get_logger("parallel")

_OK = "ok"
_ERROR = "error"


def fork_available() -> bool:
    """Whether fork-based worker processes can be used on this platform."""
    return "fork" in mp.get_all_start_methods()


def _worker_main(conn, trainer: "Trainer", params: list, index: int) -> None:
    """Worker loop: receive (params, shard, scale) tasks until ``None``.

    Runs in the forked child. ``trainer`` and ``params`` are inherited
    copy-on-write; parameter *values* arrive with every task so the
    worker tracks the parent's optimizer steps.

    Metrics are fork-merged: the worker's (inherited) default registry
    is reset once at startup so pre-fork parent values are not double
    counted, then each reply carries the registry delta accumulated
    while processing the shard. The parent folds deltas in during the
    reduce, making worker-merged counters equal their serial values.

    Fault seams (armed plans are inherited through the fork, each worker
    counts its own hits): ``parallel.worker{index}.task`` per task,
    ``parallel.worker{index}.sample`` per sample, and the
    ``parallel.worker{index}.reply`` transform over the reply payload.
    """
    task_site = f"parallel.worker{index}.task"
    sample_site = f"parallel.worker{index}.sample"
    reply_site = f"parallel.worker{index}.reply"
    registry = default_registry()
    registry.reset()
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            datas, shard, scale = task
            try:
                fault_point(task_site)
                busy_start = time.perf_counter()
                for param, data in zip(params, datas):
                    param.data = data
                    param.grad = None
                upstream = np.asarray(scale)
                loss_sum = 0.0
                for t in shard:
                    fault_point(sample_site)
                    loss = trainer._sample_loss(int(t))
                    loss.backward(upstream)
                    loss_sum += loss.item()
                delta = None
                if registry.enabled:
                    registry.counter("parallel.worker_busy_seconds").inc(
                        time.perf_counter() - busy_start
                    )
                    registry.counter("parallel.worker_tasks").inc()
                    delta = registry.drain()
                payload = fault_transform(
                    reply_site, (loss_sum, [p.grad for p in params], delta)
                )
                conn.send((_OK, payload))
            except Exception as exc:  # surface worker errors in the parent
                conn.send((_ERROR, f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        conn.close()


class GradientWorkerPool:
    """Persistent fork-based pool of per-sample gradient workers."""

    def __init__(
        self,
        trainer: "Trainer",
        num_workers: int,
        reply_timeout: float | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if reply_timeout is not None and reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be positive, got {reply_timeout}")
        if not fork_available():
            raise RuntimeError("fork start method is not available on this platform")
        self._trainer = trainer
        self._params = list(trainer.optimizer.parameters)
        self.num_workers = num_workers
        self.reply_timeout = reply_timeout
        self._closed = False
        self._degraded = False

        # Touch lazily-built dataset state *before* forking so workers
        # share it copy-on-write instead of each rebuilding it.
        trainer.dataset.demand_normalizer
        trainer.dataset.supply_normalizer

        self._ctx = mp.get_context("fork")
        self._conns: list = [None] * num_workers
        self._procs: list = [None] * num_workers
        for index in range(num_workers):
            self._spawn_worker(index)

    def _spawn_worker(self, index: int) -> None:
        """(Re)fork worker ``index``; replaces any previous pipe/process."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._trainer, self._params, index),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[index] = parent_conn
        self._procs[index] = proc

    @classmethod
    def create(
        cls,
        trainer: "Trainer",
        num_workers: int,
        reply_timeout: float | None = None,
    ) -> "GradientWorkerPool | None":
        """Build a pool, or return ``None`` (serial fallback) if unsupported."""
        if num_workers < 1:
            return None
        if not fork_available():
            logger.warning(
                "workers=%d requested but the fork start method is unavailable; "
                "training serially",
                num_workers,
            )
            cls._record_fallback("fork_unavailable", num_workers)
            return None
        try:
            return cls(trainer, num_workers, reply_timeout=reply_timeout)
        except OSError as exc:  # fork/pipe failure (resource limits)
            logger.warning("worker pool creation failed (%s); training serially", exc)
            cls._record_fallback(f"pool_creation_failed: {exc}", num_workers)
            return None

    @staticmethod
    def _record_fallback(reason: str, num_workers: int) -> None:
        """Count + emit a serial-fallback event so it is visible in runs."""
        default_registry().counter("parallel.fallback").inc()
        emit_event("event", "parallel.fallback",
                   reason=reason, requested_workers=num_workers)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the pool can take another batch (open and not degraded)."""
        return not self._closed and not self._degraded

    def accumulate_gradients(self, batch: Sequence[int], scale: float) -> float:
        """Compute and reduce gradients for ``batch``; return the loss sum.

        Each sample's upstream gradient is ``scale`` (the trainer passes
        ``1/len(batch)``, matching the serial loop's gradient averaging).
        Gradients are accumulated into the parameters' ``.grad`` buffers
        in worker index order — the caller must have zeroed them.

        Worker failures (death, hang, poisoned or errored replies) are
        recovered in-line: the lost shard is recomputed in the parent at
        the failed worker's reduction slot, so the batch result is the
        same as an uninjured pool's (see the module docstring).
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        shards = np.array_split(np.asarray(batch), self.num_workers)
        datas = [param.data for param in self._params]
        failed_send: set[int] = set()
        for index, (conn, shard) in enumerate(zip(self._conns, shards)):
            if conn is None:  # lost in a previous batch, respawn failed
                failed_send.add(index)
                continue
            try:
                conn.send((datas, shard, scale))
            except (BrokenPipeError, OSError):
                failed_send.add(index)
        registry = default_registry()
        reduce_start = time.perf_counter()
        total = 0.0
        for index, shard in enumerate(shards):
            if index in failed_send:
                if self._conns[index] is not None:
                    self._worker_failed(index, "pipe closed at send", respawn=True)
                payload = None
            else:
                payload = self._receive(index)
            if payload is None:
                total += self._recover_shard(shard, scale)
                continue
            loss_sum, grads, metrics_delta = payload
            total += loss_sum
            for param, grad in zip(self._params, grads):
                if grad is not None:
                    param._accumulate(grad)
            if metrics_delta:
                registry.merge(metrics_delta)
        if registry.enabled:
            registry.timer("parallel.reduce_seconds").observe(
                time.perf_counter() - reduce_start
            )
            registry.counter("parallel.batches").inc()
        return total

    # ------------------------------------------------------------------
    # Failure classification + recovery
    # ------------------------------------------------------------------
    def _receive(self, index: int):
        """Worker ``index``'s reply payload, or ``None`` after a failure.

        Classifies the four injected-failure modes: a hung worker (no
        reply within ``reply_timeout``), a dead worker (EOF/reset on the
        pipe), a worker-side exception (clean ``_ERROR`` reply), and a
        poisoned result (non-finite loss or gradients). Hung and dead
        workers are respawned; erroring and poisoning workers stay — the
        pipe is still in sync and the next batch may well succeed.
        """
        conn = self._conns[index]
        try:
            if self.reply_timeout is not None and not conn.poll(self.reply_timeout):
                self._worker_failed(
                    index, f"no reply within {self.reply_timeout}s", respawn=True
                )
                return None
            status, payload = conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            self._worker_failed(
                index, f"died mid-batch ({exc or 'EOF'})", respawn=True
            )
            return None
        if status != _OK:
            self._worker_failed(index, f"raised: {payload}", respawn=False)
            return None
        loss_sum, grads, _ = payload
        if not np.isfinite(loss_sum) or any(
            grad is not None and not np.isfinite(grad).all() for grad in grads
        ):
            self._worker_failed(
                index, "poisoned result (non-finite loss or gradients)",
                respawn=False,
            )
            return None
        return payload

    def _worker_failed(self, index: int, reason: str, respawn: bool) -> None:
        """Log/count a worker failure; respawn or degrade to serial."""
        logger.warning(
            "gradient worker %d failed (%s); recovering its shard serially",
            index, reason,
        )
        default_registry().counter("parallel.worker_failures").inc()
        emit_event("event", "parallel.worker_failure",
                   worker=index, reason=reason)
        if not respawn:
            return
        proc, conn = self._procs[index], self._conns[index]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        if conn is not None:
            conn.close()
        try:
            self._spawn_worker(index)
            default_registry().counter("parallel.worker_respawns").inc()
        except OSError as exc:
            # Cannot rebuild the pool: finish this batch via recovery,
            # then hand the rest of the run to the serial loop.
            self._conns[index] = None
            self._procs[index] = None
            self._degraded = True
            logger.warning(
                "worker %d respawn failed (%s); pool degraded, "
                "falling back to serial training", index, exc,
            )
            self._record_fallback(f"respawn_failed: {exc}", self.num_workers)

    def _recover_shard(self, shard: np.ndarray, scale: float) -> float:
        """Recompute a lost shard in the parent, worker-bitwise.

        Reproduces the worker protocol exactly: gradients accumulate
        into fresh per-shard buffers (not the live ``.grad`` running
        sums), then fold in at this worker's slot in the reduction
        order. Same arithmetic, same association order — the recovered
        batch matches an uninjured pool's bit for bit.
        """
        params = self._params
        saved = [param.grad for param in params]
        saved_buffers = [param._grad_buffer for param in params]
        for param in params:
            # Detach the persistent grad buffer too: ``.grad`` IS that
            # buffer after a normal accumulation, and the shard backward
            # below would otherwise write straight over the stashed sums.
            param.grad = None
            param._grad_buffer = None
        upstream = np.asarray(scale)
        loss_sum = 0.0
        try:
            for t in shard:
                loss = self._trainer._sample_loss(int(t))
                loss.backward(upstream)
                loss_sum += loss.item()
            shard_grads = [param.grad for param in params]
        finally:
            for param, grad, buffer in zip(params, saved, saved_buffers):
                param.grad = grad
                param._grad_buffer = buffer
        for param, grad in zip(params, shard_grads):
            if grad is not None:
                param._accumulate(grad)
        default_registry().counter("parallel.shards_recovered").inc()
        return loss_sum

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc is not None and proc.is_alive():  # pragma: no cover - hung worker safety net
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("degraded" if self._degraded else "open")
        return f"GradientWorkerPool(workers={self.num_workers}, {state})"

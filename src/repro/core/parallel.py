"""Data-parallel gradient workers for the training loop.

A :class:`GradientWorkerPool` is a persistent pool of fork-based worker
processes that splits a training batch into contiguous shards, computes
per-sample loss + gradients in each worker, and reduces the results in
the parent in a fixed order. It exists because the model is a
per-time-step graph program: a "batch" is N independent single-sample
forward/backward passes whose gradients are averaged (see
``core/trainer.py``), which is embarrassingly parallel across samples.

Protocol (one round trip per batch)
-----------------------------------
1. The parent sends every worker the current parameter arrays, its shard
   of prediction times (a contiguous slice of the batch, in batch
   order), and the 1/batch gradient scale.
2. Each worker loads the parameters into its (forked, copy-on-write)
   model, runs forward + backward per sample, and replies with its
   summed loss and per-parameter gradient sums.
3. The parent accumulates worker results **in worker index order** into
   the parameters' persistent gradient buffers, then the trainer clips
   and steps exactly as in serial mode.

Determinism / serial equivalence
--------------------------------
Shards are contiguous and ordered, reduction order is fixed, and every
worker performs the same per-sample arithmetic as the serial loop. The
only difference from serial training is the association order of the
floating-point gradient sums (per-shard partial sums instead of one
running sum), so for a deterministic model (``dropout == 0``) the
training losses of ``workers=0`` and ``workers=K`` runs agree to within
float64 summation reordering — empirically < 1e-9 relative, which the
parity tests assert. Models that draw training-time randomness
(``dropout > 0``) remain seeded-deterministic for a *fixed* worker
count, but are not sample-for-sample identical to serial runs: each
forked worker advances its own copy of the model's RNG.

Fork is required (copy-on-write sharing of the model, dataset and
windows); on platforms without it :meth:`GradientWorkerPool.create`
returns ``None`` and the trainer falls back to the serial loop.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs import emit_event
from repro.obs.registry import default_registry
from repro.utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trainer import Trainer

logger = get_logger("parallel")

_OK = "ok"
_ERROR = "error"


def fork_available() -> bool:
    """Whether fork-based worker processes can be used on this platform."""
    return "fork" in mp.get_all_start_methods()


def _worker_main(conn, trainer: "Trainer", params: list) -> None:
    """Worker loop: receive (params, shard, scale) tasks until ``None``.

    Runs in the forked child. ``trainer`` and ``params`` are inherited
    copy-on-write; parameter *values* arrive with every task so the
    worker tracks the parent's optimizer steps.

    Metrics are fork-merged: the worker's (inherited) default registry
    is reset once at startup so pre-fork parent values are not double
    counted, then each reply carries the registry delta accumulated
    while processing the shard. The parent folds deltas in during the
    reduce, making worker-merged counters equal their serial values.
    """
    registry = default_registry()
    registry.reset()
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            datas, shard, scale = task
            try:
                busy_start = time.perf_counter()
                for param, data in zip(params, datas):
                    param.data = data
                    param.grad = None
                upstream = np.asarray(scale)
                loss_sum = 0.0
                for t in shard:
                    loss = trainer._sample_loss(int(t))
                    loss.backward(upstream)
                    loss_sum += loss.item()
                delta = None
                if registry.enabled:
                    registry.counter("parallel.worker_busy_seconds").inc(
                        time.perf_counter() - busy_start
                    )
                    registry.counter("parallel.worker_tasks").inc()
                    delta = registry.drain()
                conn.send((_OK, (loss_sum, [p.grad for p in params], delta)))
            except Exception as exc:  # surface worker errors in the parent
                conn.send((_ERROR, f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        conn.close()


class GradientWorkerPool:
    """Persistent fork-based pool of per-sample gradient workers."""

    def __init__(self, trainer: "Trainer", num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if not fork_available():
            raise RuntimeError("fork start method is not available on this platform")
        self._params = list(trainer.optimizer.parameters)
        self.num_workers = num_workers
        self._closed = False

        # Touch lazily-built dataset state *before* forking so workers
        # share it copy-on-write instead of each rebuilding it.
        trainer.dataset.demand_normalizer
        trainer.dataset.supply_normalizer

        ctx = mp.get_context("fork")
        self._conns = []
        self._procs = []
        for _ in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, trainer, self._params),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @classmethod
    def create(cls, trainer: "Trainer", num_workers: int) -> "GradientWorkerPool | None":
        """Build a pool, or return ``None`` (serial fallback) if unsupported."""
        if num_workers < 1:
            return None
        if not fork_available():
            logger.warning(
                "workers=%d requested but the fork start method is unavailable; "
                "training serially",
                num_workers,
            )
            cls._record_fallback("fork_unavailable", num_workers)
            return None
        try:
            return cls(trainer, num_workers)
        except OSError as exc:  # fork/pipe failure (resource limits)
            logger.warning("worker pool creation failed (%s); training serially", exc)
            cls._record_fallback(f"pool_creation_failed: {exc}", num_workers)
            return None

    @staticmethod
    def _record_fallback(reason: str, num_workers: int) -> None:
        """Count + emit a serial-fallback event so it is visible in runs."""
        default_registry().counter("parallel.fallback").inc()
        emit_event("event", "parallel.fallback",
                   reason=reason, requested_workers=num_workers)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def accumulate_gradients(self, batch: Sequence[int], scale: float) -> float:
        """Compute and reduce gradients for ``batch``; return the loss sum.

        Each sample's upstream gradient is ``scale`` (the trainer passes
        ``1/len(batch)``, matching the serial loop's gradient averaging).
        Gradients are accumulated into the parameters' ``.grad`` buffers
        in worker index order — the caller must have zeroed them.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        shards = np.array_split(np.asarray(batch), self.num_workers)
        datas = [param.data for param in self._params]
        for conn, shard in zip(self._conns, shards):
            conn.send((datas, shard, scale))
        registry = default_registry()
        reduce_start = time.perf_counter()
        total = 0.0
        for conn in self._conns:
            status, payload = conn.recv()
            if status != _OK:
                raise RuntimeError(f"gradient worker failed: {payload}")
            loss_sum, grads, metrics_delta = payload
            total += loss_sum
            for param, grad in zip(self._params, grads):
                if grad is not None:
                    param._accumulate(grad)
            if metrics_delta:
                registry.merge(metrics_delta)
        if registry.enabled:
            registry.timer("parallel.reduce_seconds").observe(
                time.perf_counter() - reduce_start
            )
            registry.counter("parallel.batches").inc()
        return total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker safety net
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"GradientWorkerPool(workers={self.num_workers}, {state})"

"""Training loop for STGNN-DJD and the deep baselines.

Follows the paper's Sec. VII-C protocol: Adam, learning rate 0.01,
batch size 32, the joint demand-supply loss of Eq. 21 on Min-Max
normalised targets, early stopping on the validation split, and
denormalisation before metric computation.

Batches are processed by gradient accumulation — the model is a
per-time-step graph program, so a "batch" is 32 prediction times whose
per-sample gradients are averaged before one optimizer step. This is
mathematically identical to batched training and keeps the autograd
graphs small.

Because the samples of a batch are independent, the gradient work is
data-parallel: with ``TrainingConfig.workers > 0`` a persistent
fork-based :class:`~repro.core.parallel.GradientWorkerPool` computes the
per-sample gradients in worker processes and the parent reduces them in
a fixed order before ``clip_grad_norm`` + ``step()`` (see
``core/parallel.py`` for the serial-equivalence guarantee). ``workers=0``
keeps the seed's serial loop.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro import backend
from repro.core.model import STGNNDJD
from repro.core.parallel import GradientWorkerPool
from repro.core.persistence import (
    CheckpointSchemaError,
    TrainingSnapshot,
    load_training_snapshot,
    save_training_snapshot,
    training_fingerprint,
)
from repro.data.dataset import BikeShareDataset
from repro.faults import fault_point
from repro.nn import joint_demand_supply_loss, mse_loss
from repro.obs import ObservabilityConfig, RunRecorder, span
from repro.obs.registry import default_registry
from repro.obs.trace import trace_span
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, inference_mode
from repro.utils import get_logger

logger = get_logger("trainer")


@dataclass(frozen=True, slots=True)
class TrainingConfig:
    """Training hyperparameters (paper defaults, Sec. VII-C)."""

    epochs: int = 30
    learning_rate: float = 0.01
    batch_size: int = 32
    grad_clip: float = 5.0
    patience: int = 5  # early-stopping patience, in epochs
    max_batches_per_epoch: int | None = None  # subsample big epochs
    seed: int = 0
    verbose: bool = False
    # Gradient workers per batch: 0 = serial loop, N >= 1 = a persistent
    # fork-based pool of N processes (falls back to serial when fork is
    # unavailable). See core/parallel.py for the determinism guarantee.
    workers: int = 0
    # Gradient transport for the worker pool: "shm" moves parameters and
    # gradients through persistent shared-memory arenas with an
    # epoch-granularity schedule, "pipe" is the legacy per-batch pickle
    # protocol, and "auto" (default) picks shm where available with a
    # graceful fallback to pipe. Ignored when workers == 0.
    transport: str = "auto"
    # "joint" = the paper's Eq. 21 loss; "independent" = plain MSE on
    # demand + MSE on supply (the design-choice ablation in DESIGN.md).
    loss: str = "joint"
    # Observability: None keeps telemetry fully off; an
    # ObservabilityConfig makes fit() record a JSONL event stream and a
    # RunReport under its out_dir (see repro.obs).
    metrics: ObservabilityConfig | None = None
    # Crash resilience. snapshot_path arms epoch-boundary training
    # snapshots (atomic writes): an interrupted fit() rerun with the
    # same config auto-resumes from the last completed epoch and — for
    # deterministic models (dropout == 0) — bitwise-continues the
    # uninterrupted run. resume=False ignores an existing snapshot and
    # retrains from scratch. worker_reply_timeout_seconds bounds how
    # long the parent waits for a gradient worker before declaring it
    # hung and recovering its shard (None = wait forever).
    snapshot_path: str | None = None
    resume: bool = True
    worker_reply_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.loss not in ("joint", "independent"):
            raise ValueError(f"loss must be 'joint' or 'independent', got {self.loss!r}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'pipe', got {self.transport!r}"
            )
        if (self.worker_reply_timeout_seconds is not None
                and self.worker_reply_timeout_seconds <= 0):
            raise ValueError("worker_reply_timeout_seconds must be positive")


@dataclass(slots=True)
class TrainingHistory:
    """Per-epoch losses and the early-stopping outcome."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False


class Trainer:
    """Fits a model on a dataset with the paper's protocol.

    Works for any model exposing ``forward(sample) -> (demand, supply)``
    in normalised space — STGNN-DJD, its ablations, and the deep graph
    baselines all share this interface.
    """

    def __init__(
        self,
        model: STGNNDJD,
        dataset: BikeShareDataset,
        config: TrainingConfig | None = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainingConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)
        self._best_state: dict[str, np.ndarray] | None = None
        # Scratch arrays recycled across predict() calls (see backend.pool).
        self._pool = backend.BufferPool()
        # Normalised target tensors are constants per prediction time;
        # memoise them so epoch k+1 reuses epoch k's allocations.
        self._target_cache: dict[tuple, tuple[Tensor, Tensor]] = {}
        # Telemetry handles (no-ops until the registry is enabled by a
        # RunRecorder or repro.obs.enable_metrics()).
        obs_registry = default_registry()
        self._obs = obs_registry
        self._samples_counter = obs_registry.counter("trainer.samples")
        self._predict_timer = obs_registry.timer("serving.predict_seconds")
        # Stats of the most recent _run_epoch, for the run recorder.
        self._epoch_stats: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Target normalisation
    # ------------------------------------------------------------------
    @property
    def _horizon(self) -> int:
        """Multi-step horizon of the model (1 for all paper baselines)."""
        config = getattr(self.model, "config", None)
        return getattr(config, "horizon", 1)

    def _normalised_targets(self, t: int) -> tuple[Tensor, Tensor]:
        key = (t, backend.default_dtype())
        cached = self._target_cache.get(key)
        if cached is not None:
            return cached
        h = self._horizon
        if h == 1:
            demand = self.dataset.demand_normalizer.transform(self.dataset.demand[t])
            supply = self.dataset.supply_normalizer.transform(self.dataset.supply[t])
        else:
            # (n, h): columns are slots t .. t+h-1 (Sec. IX extension).
            demand = self.dataset.demand_normalizer.transform(
                self.dataset.demand[t : t + h].T
            )
            supply = self.dataset.supply_normalizer.transform(
                self.dataset.supply[t : t + h].T
            )
        targets = (Tensor(demand), Tensor(supply))
        self._target_cache[key] = targets
        return targets

    def _sample_loss(self, t: int):
        self._samples_counter.inc()
        sample = self.dataset.sample(t)
        demand_pred, supply_pred = self.model(sample)
        demand_true, supply_true = self._normalised_targets(t)
        if self.config.loss == "independent":
            return mse_loss(demand_pred, demand_true) + mse_loss(supply_pred, supply_true)
        return joint_demand_supply_loss(demand_pred, demand_true, supply_pred, supply_true)

    def _usable(self, indices: np.ndarray) -> np.ndarray:
        """Drop indices whose multi-step target would run off the data."""
        h = self._horizon
        if h == 1:
            return indices
        return indices[indices <= self.dataset.num_slots - h]

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, epochs: int | None = None) -> TrainingHistory:
        """Train with early stopping; restores the best validation state.

        Training is pinned to ``float64`` regardless of any ambient
        backend dtype scope: gradient accumulation and the early-stopping
        loss comparisons need double precision, and the gradcheck suite
        validates exactly this configuration.
        """
        with backend.dtype_scope(np.float64):
            return self._fit(epochs)

    def _fit(self, epochs: int | None) -> TrainingHistory:
        epochs = epochs or self.config.epochs
        train_idx, val_idx, _ = self.dataset.split_indices()
        train_idx, val_idx = self._usable(train_idx), self._usable(val_idx)
        history = TrainingHistory()
        best_val = float("inf")
        bad_epochs = 0
        start_epoch = 0
        if (self.config.snapshot_path is not None and self.config.resume
                and os.path.exists(self.config.snapshot_path)):
            start_epoch, best_val, bad_epochs = self._restore_snapshot(
                self.config.snapshot_path, history
            )

        # The recorder enables the metrics registry *before* the worker
        # pool forks, so workers inherit the enabled flag copy-on-write
        # and start accumulating their local counters immediately.
        recorder = None
        if self.config.metrics is not None:
            run_config = dataclasses.asdict(self.config)
            run_config["model"] = type(self.model).__name__
            recorder = RunRecorder(self.config.metrics, run_config=run_config)

        pool = GradientWorkerPool.create(
            self, self.config.workers,
            reply_timeout=self.config.worker_reply_timeout_seconds,
            transport=self.config.transport,
        )
        created_pool = pool
        try:
            with trace_span("trainer.fit", epochs=epochs,
                            workers=self.config.workers):
                for epoch in range(start_epoch, epochs):
                    fault_point("trainer.epoch")
                    if pool is not None and not pool.active:
                        # The pool degraded mid-run (a worker died and could
                        # not be respawned); finish the fit serially.
                        pool.close()
                        pool = None
                    with span("epoch", epoch=epoch), \
                            trace_span("trainer.epoch", epoch=epoch):
                        epoch_loss = self._run_epoch(train_idx, pool)
                        val_loss = self.validation_loss(val_idx)
                    history.train_loss.append(epoch_loss)
                    history.val_loss.append(val_loss)
                    if recorder is not None:
                        stats = self._epoch_stats
                        recorder.record_epoch(
                            epoch,
                            epoch_loss,
                            val_loss,
                            grad_norm=stats.get("grad_norm"),
                            samples_per_sec=stats.get("samples_per_sec"),
                            learning_rate=self.optimizer.lr,
                            seconds=stats.get("seconds"),
                        )
                    if self.config.verbose:
                        logger.info(
                            "epoch %d: train=%.4f val=%.4f", epoch, epoch_loss, val_loss
                        )
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        history.best_epoch = epoch
                        self._best_state = self.model.state_dict()
                        bad_epochs = 0
                    else:
                        bad_epochs += 1
                        if bad_epochs >= self.config.patience:
                            history.stopped_early = True
                            break
                    if self.config.snapshot_path is not None:
                        self._save_snapshot(
                            self.config.snapshot_path, epoch, history,
                            best_val, bad_epochs,
                        )
        finally:
            if pool is not None:
                pool.close()
            if recorder is not None:
                recorder.attach("buffer_pool", self._pool.stats())
                recorder.attach(
                    "history",
                    {"best_epoch": history.best_epoch,
                     "stopped_early": history.stopped_early},
                )
                if created_pool is not None:
                    # Transport health: visible in the report CLI without
                    # grepping the JSONL stream.
                    recorder.attach("transport", created_pool.transport_summary())
                recorder.finish()

        if self._best_state is not None:
            self.model.load_state_dict(self._best_state)
        return history

    def _run_epoch(
        self, train_idx: np.ndarray, pool: GradientWorkerPool | None = None
    ) -> float:
        self.model.train()
        order = self._rng.permutation(train_idx)
        batch_size = self.config.batch_size
        batches = [
            order[start : start + batch_size]
            for start in range(0, len(order), batch_size)
        ]
        if self.config.max_batches_per_epoch is not None:
            batches = batches[: self.config.max_batches_per_epoch]

        start = time.perf_counter()
        total, count = 0.0, 0
        norm_sum, samples = 0.0, 0
        # Announce the epoch's batch schedule up front: on the shm
        # transport workers then walk their shard of every batch locally
        # and the per-batch exchange is a tiny control message.
        epoch_pool = pool
        if epoch_pool is not None and epoch_pool.active:
            epoch_pool.begin_epoch(batches)
        try:
            for k, batch in enumerate(batches):
                with trace_span("trainer.batch", batch=k, size=len(batch)):
                    fault_point("trainer.batch")
                    self.optimizer.zero_grad()
                    if pool is not None and not pool.active:
                        pool = None  # degraded mid-epoch: finish serially
                    if pool is not None:
                        batch_loss = pool.accumulate_gradients(batch, 1.0 / len(batch))
                    else:
                        batch_loss = 0.0
                        for t in batch:
                            loss = self._sample_loss(int(t))
                            # Average gradients over the batch: scale each sample's
                            # upstream gradient by 1/batch instead of rescaling later.
                            loss.backward(np.asarray(1.0 / len(batch)))
                            batch_loss += loss.item()
                    norm_sum += clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
                    self.optimizer.step()
                    total += batch_loss / len(batch)
                    count += 1
                    samples += len(batch)
        finally:
            if epoch_pool is not None:
                epoch_pool.end_epoch()
        elapsed = time.perf_counter() - start
        self._epoch_stats = {
            "seconds": elapsed,
            "samples_per_sec": samples / elapsed if elapsed > 0 else 0.0,
            "grad_norm": norm_sum / count if count else float("nan"),
        }
        return total / count if count else float("nan")

    # ------------------------------------------------------------------
    # Crash resilience: epoch-boundary snapshots + bitwise resume
    # ------------------------------------------------------------------
    def capture_snapshot(
        self,
        epoch: int = -1,
        history: TrainingHistory | None = None,
        best_val: float = float("inf"),
        bad_epochs: int = 0,
    ) -> TrainingSnapshot:
        """The trainer's full optimization state as a snapshot object.

        Captures parameters, Adam moments and step count, the shuffling
        RNG and the early-stopping bookkeeping. The fit loop uses it at
        epoch boundaries; the continual-learning loop calls it directly
        after each incremental retrain (``epoch=-1`` marks a snapshot
        not tied to a specific fit epoch) and hands the result to the
        next cycle's :meth:`warm_start`.
        """
        history = history if history is not None else TrainingHistory()
        adam = self.optimizer
        return TrainingSnapshot(
            epoch=epoch,
            model_state=self.model.state_dict(),
            adam_step_count=adam._step_count,
            adam_m={f"{i:04d}": m for i, m in enumerate(adam._m)},
            adam_v={f"{i:04d}": v for i, v in enumerate(adam._v)},
            rng_state=self._rng.bit_generator.state,
            train_loss=list(history.train_loss),
            val_loss=list(history.val_loss),
            best_epoch=history.best_epoch,
            best_val=best_val,
            bad_epochs=bad_epochs,
            best_state=self._best_state,
            fingerprint=training_fingerprint(self.model),
        )

    def warm_start(self, snapshot: TrainingSnapshot) -> None:
        """Adopt a snapshot's optimization state without its fit progress.

        Loads model parameters, Adam moments/step count and the
        shuffling RNG, but none of the epoch counter, loss history or
        early-stopping bookkeeping — the next :meth:`fit` starts at
        epoch 0 of whatever (possibly different) dataset window this
        trainer holds while optimizing from exactly where the snapshot
        left off. This is the continual loop's incremental-retrain
        entry point; crash-resume of an interrupted fit should keep
        using ``snapshot_path``/``resume`` instead.
        """
        expected = training_fingerprint(self.model)
        if snapshot.fingerprint != expected:
            raise CheckpointSchemaError(
                f"training snapshot was written for {snapshot.fingerprint!r}, "
                f"not {expected!r}; refusing to warm-start"
            )
        adam = self.optimizer
        if len(snapshot.adam_m) != len(adam.parameters):
            raise CheckpointSchemaError(
                f"training snapshot carries {len(snapshot.adam_m)} optimizer "
                f"moments for {len(adam.parameters)} parameters"
            )
        self.model.load_state_dict(snapshot.model_state)
        adam._step_count = snapshot.adam_step_count
        for i in range(len(adam.parameters)):
            adam._m[i][...] = snapshot.adam_m[f"{i:04d}"]
            adam._v[i][...] = snapshot.adam_v[f"{i:04d}"]
        self._rng.bit_generator.state = snapshot.rng_state
        self._best_state = None
        self._target_cache.clear()

    def _save_snapshot(
        self,
        path: str,
        epoch: int,
        history: TrainingHistory,
        best_val: float,
        bad_epochs: int,
    ) -> None:
        """Persist the fit loop's full state after a completed epoch.

        Captures everything the loop reads going forward — parameters,
        Adam moments and step count, the shuffling RNG, per-epoch
        history, and the early-stopping bookkeeping — so a resumed run
        re-enters at ``epoch + 1`` indistinguishable from one that never
        stopped. The write is atomic (tmp + rename), so a crash *during*
        snapshotting leaves the previous snapshot intact.
        """
        snapshot = self.capture_snapshot(
            epoch=epoch, history=history, best_val=best_val, bad_epochs=bad_epochs
        )
        save_training_snapshot(path, snapshot)

    def _restore_snapshot(
        self, path: str, history: TrainingHistory
    ) -> tuple[int, float, int]:
        """Load a snapshot into the live trainer; returns
        ``(start_epoch, best_val, bad_epochs)`` for the fit loop."""
        snapshot = load_training_snapshot(path)
        expected = training_fingerprint(self.model)
        if snapshot.fingerprint != expected:
            raise CheckpointSchemaError(
                f"training snapshot {path} was written for "
                f"{snapshot.fingerprint!r}, not {expected!r}; refusing to resume"
            )
        self.model.load_state_dict(snapshot.model_state)
        adam = self.optimizer
        if len(snapshot.adam_m) != len(adam.parameters):
            raise CheckpointSchemaError(
                f"training snapshot {path} carries {len(snapshot.adam_m)} "
                f"optimizer moments for {len(adam.parameters)} parameters"
            )
        adam._step_count = snapshot.adam_step_count
        for i in range(len(adam.parameters)):
            adam._m[i][...] = snapshot.adam_m[f"{i:04d}"]
            adam._v[i][...] = snapshot.adam_v[f"{i:04d}"]
        self._rng.bit_generator.state = snapshot.rng_state
        history.train_loss = list(snapshot.train_loss)
        history.val_loss = list(snapshot.val_loss)
        history.best_epoch = snapshot.best_epoch
        self._best_state = snapshot.best_state
        logger.info(
            "resumed training from %s at epoch %d", path, snapshot.epoch + 1
        )
        return snapshot.epoch + 1, snapshot.best_val, snapshot.bad_epochs

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def validation_loss(self, indices: np.ndarray) -> float:
        """Mean per-sample loss over ``indices`` without gradients.

        Like :meth:`predict`, runs on the forward-only fast path with
        intermediates drawn from the trainer's buffer pool, so an epoch
        of validation recycles one sample's worth of scratch arrays.
        """
        self.model.eval()
        total = 0.0
        with inference_mode():
            for t in indices:
                # Scope per sample: buffers release on exit, so sample
                # t+1 reuses sample t's intermediates instead of piling
                # the whole epoch's arrays into the pool.
                with backend.buffer_scope(self._pool):
                    total += self._sample_loss(int(t)).item()
        self.model.train()
        return total / len(indices) if len(indices) else float("nan")

    def predict(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Denormalised (demand, supply) prediction for time ``t``.

        Shapes are ``(n,)`` for single-step models and ``(n, horizon)``
        for multi-step ones (column ``j`` predicts slot ``t + j``).

        Runs on the forward-only fast path: no graph is recorded, and
        intermediate arrays come from a buffer pool recycled across
        calls — the denormalised outputs are fresh arrays, safe to keep.

        With metrics enabled, each call lands in the
        ``serving.predict_seconds`` latency histogram and the buffer
        pool's reuse statistics are mirrored to ``pool.*`` gauges.
        """
        self.model.eval()
        start = time.perf_counter()
        with inference_mode(), backend.buffer_scope(self._pool):
            demand_pred, supply_pred = self.model(self.dataset.sample(t))
            demand = self.dataset.demand_normalizer.inverse_transform(demand_pred.data)
            supply = self.dataset.supply_normalizer.inverse_transform(supply_pred.data)
        if self._obs.enabled:
            self._predict_timer.observe(time.perf_counter() - start)
            self._obs.gauge("pool.takes").set(self._pool.takes)
            self._obs.gauge("pool.hits").set(self._pool.hits)
            self._obs.gauge("pool.peak_outstanding").set(self._pool.peak_outstanding)
        self.model.train()
        return demand, supply

    def quality_baseline(self, indices: np.ndarray | None = None):
        """Training-time forecast-quality baseline for drift monitoring.

        Runs :meth:`predict` over the validation split (or ``indices``)
        and scores next-slot demand/supply against the raw observed
        flows with the paper's :mod:`repro.eval.metrics` — the same
        functions the serving-side :class:`~repro.obs.quality.QualityMonitor`
        applies to reconciled live forecasts, so the two numbers are
        directly comparable. Embed the result in a checkpoint via
        :func:`repro.core.persistence.save_checkpoint` and the serving
        stack picks it up as its drift reference.
        """
        from repro.eval import metrics as paper_metrics
        from repro.obs.quality import QualityBaseline

        if indices is None:
            _, indices, _ = self.dataset.split_indices()
        indices = self._usable(np.asarray(indices))
        if len(indices) == 0:
            raise ValueError("quality_baseline needs at least one sample")
        true_d, pred_d, true_s, pred_s = [], [], [], []
        for t in indices:
            t = int(t)
            demand, supply = self.predict(t)
            if demand.ndim == 2:  # multi-step: score the h=0 column
                demand, supply = demand[:, 0], supply[:, 0]
            pred_d.append(demand)
            pred_s.append(supply)
            true_d.append(self.dataset.demand[t])
            true_s.append(self.dataset.supply[t])
        td, pd = np.stack(true_d), np.stack(pred_d)
        ts, ps = np.stack(true_s), np.stack(pred_s)
        return QualityBaseline(
            rmse=float(paper_metrics.rmse(td, pd, ts, ps)),
            mae=float(paper_metrics.mae(td, pd, ts, ps)),
            samples=int(len(indices)),
        )

"""Multi-layer GNNs over the FCG and PCG (paper Sec. V, Algorithm 1).

Both networks follow Algorithm 1: initialise ``F^0 = T``, then for
``k = 1..K`` update every node by aggregating its (masked or dense)
neighborhood and transforming with layer weights ``W^k``:

    F^k_i = sigma(W^k · Aggr({F^{k-1}_i} ∪ {F^{k-1}_j : j ∈ N(i)})).

``FlowGNN`` runs the flow-based aggregator (or the mean/max ablations)
on the flow-convoluted graph; ``PatternGNN`` runs the multi-head
attention aggregator (Eqs. 15-18) on the dense pattern correlation
graph, recomputing attention from each layer's own input.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregators import (
    VALID_PCG_AGGREGATORS,
    MaxAggregator,
    MeanAggregator,
    make_fcg_aggregator,
)
from repro.graphs import (
    FlowConvolutedGraph,
    GraphSparsityConfig,
    PatternCorrelationGraph,
    SparseFlowConvolutedGraph,
)
from repro.nn import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    PairwiseAdditiveAttention,
    Parameter,
    init,
)
from repro.tensor import Tensor, concat, is_grad_enabled, ops


class FlowGNN(Module):
    """K-layer GNN on the flow-convoluted graph (Sec. V-B).

    Each layer pools with the configured aggregator (default: the
    flow-based aggregator of Eq. 14, whose weights come from the graph)
    and updates per Eq. 13, ``F^k_i = sigma(W^k · Aggr({F_i} ∪ {F_j}))``.
    Following GraphSAGE — the framework Eq. 13 is built on (the paper's
    ref. [47]) — the node's own embedding enters the update by
    concatenation with the neighborhood pool: ``W^k`` maps
    ``[F_i || pooled_i]`` to the new embedding. The explicit self path
    keeps deep stacks trainable: with pooled-only updates, the flow
    weights ``w_ii`` can be arbitrarily small and a station's identity
    washes out after two layers.
    """

    def __init__(
        self,
        features: int,
        num_layers: int,
        rng: np.random.Generator,
        aggregator: str = "flow",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.features = features
        self.num_layers = num_layers
        self.aggregator_kind = aggregator
        self.aggregators = ModuleList(
            [make_fcg_aggregator(aggregator, features, rng) for _ in range(num_layers)]
        )
        self.transforms = ModuleList(
            [Linear(2 * features, features, rng=rng) for _ in range(num_layers)]
        )
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self, graph: "FlowConvolutedGraph | SparseFlowConvolutedGraph"
    ) -> Tensor:
        if isinstance(graph, SparseFlowConvolutedGraph):
            return self._forward_sparse(graph)
        # Fused path only in eval mode: in train mode the in-loop dropout
        # must still fire even under no_grad (e.g. MC-style sampling).
        if not is_grad_enabled() and not self.training and self.aggregator_kind == "flow":
            return Tensor._from_data(
                self._forward_inference(graph.node_features.data, graph.weights.data)
            )
        embedding = graph.node_features
        for aggregator, transform in zip(self.aggregators, self.transforms):
            pooled = aggregator(embedding, graph.weights, graph.mask)
            embedding = transform(concat([embedding, pooled], axis=1)).relu()
            embedding = self.dropout(embedding)
        return embedding

    def _forward_sparse(self, graph: SparseFlowConvolutedGraph) -> Tensor:
        """Sparse twin of the dense layer loop: blocked gather pooling.

        Runs recorded and no-grad alike through the op layer (every op
        has a forward-only fast path), so ``inference_mode()`` fusion,
        the buffer pool and the obs profiler all see the kernel. At full
        coverage (``k == n``) ``edge_aggregate`` degenerates to the
        dense gemm and results are bitwise identical to the dense path.
        """
        edges = graph.edges
        embedding = graph.node_features
        if self.aggregator_kind == "max":
            # GraphSAGE-pool builds an (n, n, f) neighbor cube — an
            # ablation-study aggregator with no blocked kernel; densify
            # the kept adjacency and reuse the dense module.
            mask = edges.to_dense_mask()
            for aggregator, transform in zip(self.aggregators, self.transforms):
                pooled = aggregator(embedding, None, mask)
                embedding = transform(concat([embedding, pooled], axis=1)).relu()
                embedding = self.dropout(embedding)
            return embedding
        if self.aggregator_kind == "flow":
            weights = edges.weights
        else:  # mean over the kept neighborhood (same recipe as dense)
            mask = edges.valid.astype(embedding.data.dtype)
            degrees = mask.sum(axis=1, keepdims=True)
            degrees[degrees == 0] = 1.0
            weights = Tensor(mask / degrees, dtype=embedding.data.dtype)
        for transform in self.transforms:
            pooled = ops.edge_aggregate(
                weights,
                embedding,
                edges.indices,
                block_rows=edges.block_rows,
                full_coverage=edges.full_coverage,
            )
            embedding = transform(concat([embedding, pooled], axis=1)).relu()
            embedding = self.dropout(embedding)
        return embedding

    def _forward_inference(self, embedding: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Fused no-grad forward for the flow aggregator (serving path).

        Same expressions as the recorded ops — flow pooling is a single
        matmul, the GraphSAGE update one fused affine + ReLU — so float64
        results are bitwise identical; dropout is identity in eval mode.
        """
        for transform in self.transforms:
            pooled = weights @ embedding
            stacked = np.concatenate([embedding, pooled], axis=1)
            out = stacked @ transform.weight.data + transform.bias.data
            embedding = out * (out > 0)
        return embedding


class _AttentionLayer(Module):
    """One multi-head attention layer of the PatternGNN (Eq. 18).

    Per head ``u``: attention ``alpha^{(k,u)}`` from the layer input
    (Eqs. 15-16), value projection ``phi_u``, output
    ``ELU(alpha^{(k,u)} @ (F @ phi_u) + F @ rho_u)``; heads are
    concatenated and mixed with ``W10``.

    The ``F @ rho_u`` self term implements the ``{F^{k-1}_i} ∪ ...``
    part of the aggregation contract (Eq. 13): the node's own embedding
    enters the update alongside the attention pool. Without it, the
    additive attention's row softmax makes every station aggregate a
    near-identical mixture at initialization (the source half of
    Eq. 11's score is constant within a row), so stacked layers collapse
    station identity and the branch barely trains — observed directly at
    this reproduction's scale (PCG-only RMSE 3.2 -> with the self term it
    becomes competitive).
    """

    def __init__(self, features: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if num_heads < 1:
            raise ValueError(f"num_heads must be >= 1, got {num_heads}")
        self.features = features
        self.num_heads = num_heads
        self.attentions = ModuleList(
            [PairwiseAdditiveAttention(features, rng) for _ in range(num_heads)]
        )
        self.values = ModuleList(
            [Linear(features, features, bias=False, rng=rng) for _ in range(num_heads)]
        )
        # The attention pool starts faint (value projections scaled down)
        # and fades in as phi_u learns: before the attention has learned
        # which stations share patterns, alpha is near-uniform and the
        # pooled term only injects noise into the informative self path.
        for value in self.values:
            value.weight.data *= 0.1
        self.selves = ModuleList(
            [Linear(features, features, bias=False, rng=rng) for _ in range(num_heads)]
        )
        self.mix = Parameter(
            init.xavier_uniform((num_heads * features, features), rng), name="W10"
        )

    def forward(
        self, features: Tensor, sparsity: GraphSparsityConfig | None = None
    ) -> Tensor:
        if sparsity is not None and sparsity.use_sparse(features.shape[0]):
            return self._forward_sparse(features, sparsity)
        if not is_grad_enabled():
            return Tensor._from_data(self._forward_inference(features.data))
        head_outputs = []
        for attention, value, self_proj in zip(self.attentions, self.values, self.selves):
            alpha = attention(features)  # (n, n), rows sum to 1
            pooled = alpha @ value(features) + self_proj(features)
            head_outputs.append(pooled.elu())
        return concat(head_outputs, axis=1) @ self.mix

    def _forward_sparse(
        self, features: Tensor, sparsity: GraphSparsityConfig
    ) -> Tensor:
        """Top-k attention heads: (n, k) scores + shared-column pooling.

        Column selection is exact (the additive score is monotone in the
        destination term, see ``sparse_forward``); only the softmax
        support shrinks to k columns. Runs recorded and no-grad alike
        through the op layer so fusion, pooling and the profiler see the
        kernels; at full coverage results are bitwise dense.
        """
        n = features.shape[0]
        k = sparsity.row_k(n)
        full = k >= n
        head_outputs = []
        for attention, value, self_proj in zip(self.attentions, self.values, self.selves):
            alpha, columns = attention.sparse_forward(features, k)  # (n, k)
            pooled = ops.edge_aggregate(
                alpha,
                value(features),
                columns,
                block_rows=sparsity.block_rows,
                full_coverage=full,
            ) + self_proj(features)
            head_outputs.append(pooled.elu())
        return concat(head_outputs, axis=1) @ self.mix

    def _forward_inference(self, features: np.ndarray) -> np.ndarray:
        """Whole-layer fused forward for the no-grad serving path.

        One python call per layer instead of ~8 recorded ops per head;
        each expression mirrors its op counterpart exactly, so float64
        results are bitwise identical to the recorded-graph forward.
        """
        heads = []
        for attention, value, self_proj in zip(self.attentions, self.values, self.selves):
            alpha = attention.weights_data(features)
            pooled = alpha @ (features @ value.weight.data) + (
                features @ self_proj.weight.data
            )
            heads.append(
                np.where(pooled > 0, pooled, np.exp(np.minimum(pooled, 0.0)) - 1.0)
            )
        return np.concatenate(heads, axis=1) @ self.mix.data

    def attention_matrices(self, features: Tensor) -> list[Tensor]:
        """Per-head attention weights for this layer's input (case study)."""
        return [attention(features) for attention in self.attentions]


class PatternGNN(Module):
    """K-layer GNN on the pattern correlation graph (Sec. V-C).

    The default aggregator is the data-driven multi-head attention; the
    ``mean``/``max`` options replace it for the Fig. 6 aggregator study
    (the PCG is dense, so their neighborhood is all stations).
    """

    def __init__(
        self,
        features: int,
        num_layers: int,
        num_heads: int,
        rng: np.random.Generator,
        aggregator: str = "attention",
        dropout: float = 0.0,
        sparsity: GraphSparsityConfig | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if aggregator not in VALID_PCG_AGGREGATORS:
            raise ValueError(
                f"unknown PCG aggregator {aggregator!r}; choose from {VALID_PCG_AGGREGATORS}"
            )
        self.features = features
        self.num_layers = num_layers
        self.aggregator_kind = aggregator
        # Sparse top-k attention applies only to the attention aggregator;
        # the mean/max study aggregators pool the PCG's conceptually dense
        # all-stations neighborhood and stay on the dense path.
        self.sparsity = sparsity
        self.dropout = Dropout(dropout, rng=rng)
        if aggregator == "attention":
            self.layers = ModuleList(
                [_AttentionLayer(features, num_heads, rng) for _ in range(num_layers)]
            )
        else:
            pool = MeanAggregator if aggregator == "mean" else MaxAggregator
            self.pools = ModuleList(
                [
                    pool(features, rng) if aggregator == "max" else pool()
                    for _ in range(num_layers)
                ]
            )
            # GraphSAGE-style update (see FlowGNN): W maps [self || pool].
            self.transforms = ModuleList(
                [Linear(2 * features, features, rng=rng) for _ in range(num_layers)]
            )

    def forward(self, graph: PatternCorrelationGraph) -> Tensor:
        embedding = graph.node_features
        if self.aggregator_kind == "attention":
            for layer in self.layers:
                embedding = self.dropout(layer(embedding, sparsity=self.sparsity))
            return embedding
        n = embedding.shape[0]
        dense_mask = np.ones((n, n), dtype=bool)
        dense_weights = Tensor(dense_mask / n, dtype=embedding.data.dtype)
        for pool, transform in zip(self.pools, self.transforms):
            pooled = pool(embedding, dense_weights, dense_mask)
            embedding = self.dropout(
                transform(concat([embedding, pooled], axis=1)).elu()
            )
        return embedding

    def attention_matrices(self, graph: PatternCorrelationGraph) -> list[list[Tensor]]:
        """Attention weights per layer (outer) and head (inner).

        Runs a forward pass, capturing each layer's attention over its
        actual input — the quantity visualised in Figs. 11-12. Always
        dense — this is O(n^2) case-study introspection, not a serving
        path, so it stays exact even on sparse-configured models.
        """
        if self.aggregator_kind != "attention":
            raise RuntimeError("attention matrices only exist for the attention aggregator")
        matrices: list[list[Tensor]] = []
        embedding = graph.node_features
        for layer in self.layers:
            matrices.append(layer.attention_matrices(embedding))
            embedding = layer(embedding)
        return matrices
